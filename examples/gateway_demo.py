#!/usr/bin/env python3
"""The weblint gateway: check a page without installing weblint.

Paper sections 4.5/5.3: gateways are "CGI forms where you provide the
HTML by entering a URL, pasting in the text, or through file upload", and
the warnings are embedded into a generated report page.  This example
exercises all three input paths and writes the report for the paper's
test.html to ``gateway_report.html``.

Run:  python examples/gateway_demo.py
"""

from __future__ import annotations

from pathlib import Path

from repro.gateway.forms import FormData, encode_form, parse_query_string
from repro.gateway.gateway import Gateway
from repro.www.client import UserAgent
from repro.www.virtualweb import VirtualWeb

TEST_HTML = """<HTML>
<HEAD>
<TITLE>example page
</HEAD>
<BODY BGCOLOR="fffff" TEXT=#00ff00>
<H1>My Example</H2>
Click <B><A HREF="a.html>here</B></A>
for more details.
</BODY>
</HTML>"""


def main() -> int:
    # A virtual web for the url= path (the LWP substitution).
    web = VirtualWeb()
    web.add_page("http://www.example.com/test.html", TEST_HTML)
    gateway = Gateway(agent=UserAgent(web))

    # 1. Pasted HTML, exactly as a CGI POST body would arrive.
    form_body = encode_form({"html": TEST_HTML})
    response = gateway.handle(parse_query_string(form_body))
    print(f"pasted HTML  -> status {response.status}, "
          f"{response.body.count('<li')} finding(s) embedded")

    # 2. By URL.
    by_url = gateway.handle(
        parse_query_string("url=http%3A%2F%2Fwww.example.com%2Ftest.html")
    )
    print(f"by URL       -> status {by_url.status}")

    # 3. File upload, pedantic configuration.
    form = FormData()
    form.add("upload", TEST_HTML)
    form.add("filename", "test.html")
    form.add("pedantic", "on")
    pedantic = gateway.handle(form)
    print(f"upload       -> status {pedantic.status} (pedantic: "
          f"{pedantic.body.count('<li')} findings)")

    out = Path(__file__).resolve().parent / "gateway_report.html"
    out.write_text(response.body)
    print(f"\nreport written to {out}")
    print("first lines of the generated page:")
    for line in response.body.splitlines()[:12]:
        print(f"  {line}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
