#!/usr/bin/env python3
"""Poacher: crawl a site, weblint every page, validate every link.

Paper section 4.5: "A robot can be used to invoke weblint on all
accessible pages on a site ... Poacher also performs basic link
validation."  Section 5.3: "The robot for Canon's public search engine
uses weblint to check all of Canon's public web pages."

This example builds a virtual web (the reproduction's stand-in for the
live network) hosting a 10-page site with a broken link, a moved page and
a robots.txt exclusion, then crawls it.

Run:  python examples/robot_crawl.py
"""

from __future__ import annotations

from repro.robot.poacher import Poacher
from repro.robot.traversal import TraversalPolicy
from repro.www.client import UserAgent
from repro.www.virtualweb import VirtualWeb
from repro.workload import ErrorSeeder, PageGenerator


def build_virtual_site() -> VirtualWeb:
    generator = PageGenerator(seed=1998)
    site = generator.site(10)

    # One page with broken markup (so weblint has work to do).
    seeder = ErrorSeeder(seed=1998)
    site["page4.html"] = seeder.seed_specific(
        site["page4.html"], ("overlap-anchor", "odd-quote")
    ).source

    # One page pointing at a vanished page and a moved page.
    site["page2.html"] = site["page2.html"].replace(
        "</body>",
        '<p><a href="vanished.html">an old bookmark</a> and '
        '<a href="moved.html">a relocated page</a>.</p>\n</body>',
    )

    web = VirtualWeb()
    web.add_site("http://demo.site/", site)
    for index in range(4):
        web.add_page(
            f"http://demo.site/images/figure{index}.gif",
            "GIF89a...",
            content_type="image/gif",
        )
    web.add_redirect("http://demo.site/moved.html", "/page1.html",
                     permanent=True)
    web.add_robots_txt(
        "http://demo.site/",
        "User-agent: *\nDisallow: /page7.html\n",
    )
    return web


def main() -> int:
    web = build_virtual_site()
    agent = UserAgent(web)
    poacher = Poacher(
        agent,
        policy=TraversalPolicy(max_pages=100, agent_name="poacher-repro/2.0"),
    )

    report = poacher.crawl("http://demo.site/index.html")

    for line in report.summary_lines():
        print(line)

    print("\nper-page weblint output")
    print("-" * 60)
    for page in report.pages:
        for diagnostic in page.diagnostics:
            print(f"{page.url}({diagnostic.line}): {diagnostic.text}")

    print(
        f"\nskipped by robots.txt: {report.urls_skipped_robots} URL(s); "
        f"requests issued: {agent.requests_made}"
    )
    return 1 if report.total_problems() else 0


if __name__ == "__main__":
    raise SystemExit(main())
