#!/usr/bin/env python3
"""Whole-site audit: the -R switch as a library (paper section 4.5).

Builds a small demonstration site on disk -- with a deliberate orphan
page, a broken link and an index-less directory -- then runs the site
checker and prints a QA report: per-page lint messages, broken local
links, orphan pages and missing index files.

Run:  python examples/site_audit.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.site.sitecheck import SiteChecker
from repro.workload import ErrorSeeder, GeneratorConfig, PageGenerator


def build_demo_site(root: Path) -> None:
    generator = PageGenerator(seed=2024)
    site = generator.site(6)

    # Break one page's markup so the per-page lint has something to say.
    seeder = ErrorSeeder(seed=2024)
    site["page2.html"] = seeder.seed_specific(
        site["page2.html"], ("mismatch-heading", "drop-alt")
    ).source

    # A broken relative link on page1.
    site["page1.html"] = site["page1.html"].replace(
        "</body>",
        '<p>See also <a href="does-not-exist.html">the missing page</a>.</p>\n'
        "</body>",
    )

    for name, body in site.items():
        (root / name).write_text(body)

    # The images the generated pages embed.
    (root / "images").mkdir()
    for index in range(4):
        (root / "images" / f"figure{index}.gif").write_text("GIF89a...")

    # An orphan: present on disk, linked from nowhere.
    no_images = GeneratorConfig(images=0)
    (root / "old-draft.html").write_text(
        PageGenerator(seed=7, config=no_images).page(
            link_targets=("index.html",)
        )
    )

    # A subdirectory holding pages but no index file.
    notes = root / "notes"
    notes.mkdir()
    (notes / "meeting.html").write_text(
        PageGenerator(seed=8, config=no_images).page(
            link_targets=("../index.html",)
        )
    )
    index_text = (root / "index.html").read_text().replace(
        "</ul>",
        '<li><a href="notes/meeting.html">meeting notes</a></li>\n</ul>',
    )
    (root / "index.html").write_text(index_text)


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        build_demo_site(root)

        report = SiteChecker().check_directory(root)

        print(f"site audit of {len(report.pages)} pages")
        print("=" * 60)
        for page in report.pages:
            diagnostics = report.page_diagnostics.get(page, [])
            status = "clean" if not diagnostics else f"{len(diagnostics)} message(s)"
            print(f"\n{page}: {status}")
            for diagnostic in diagnostics:
                print(f"  line {diagnostic.line}: {diagnostic.text}")
        if report.site_diagnostics:
            print("\nsite-level findings")
            print("-" * 60)
            for diagnostic in report.site_diagnostics:
                print(f"  {diagnostic.text}")

        print("\nsummary")
        print("-" * 60)
        for message_id in ("bad-link", "orphan-page", "directory-index"):
            print(f"  {message_id:18} {report.count(message_id)}")
        return 1 if report.count() else 0


if __name__ == "__main__":
    raise SystemExit(main())
