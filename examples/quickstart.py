#!/usr/bin/env python3
"""Quickstart: the paper's three-line embedding, in Python.

Paper section 5.4::

    use Weblint;
    $weblint = Weblint->new();
    $weblint->check_file($filename);

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import Options, ShortReporter, Weblint

# The exact broken page from paper section 4.2.
TEST_HTML = """<HTML>
<HEAD>
<TITLE>example page
</HEAD>
<BODY BGCOLOR="fffff" TEXT=#00ff00>
<H1>My Example</H2>
Click <B><A HREF="a.html>here</B></A>
for more details.
</BODY>
</HTML>"""


def main() -> int:
    # The three-line embedding:
    weblint = Weblint()
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "test.html"
        path.write_text(TEST_HTML)
        diagnostics = weblint.check_file(path)

    # Traditional lint output: file(line): message
    print("# default output format")
    for diagnostic in diagnostics:
        print(f"test.html({diagnostic.line}): {diagnostic.text}")

    # The -s short format from the paper's example.
    print("\n# weblint -s")
    short = Weblint(reporter=ShortReporter())
    short.report(short.check_string(TEST_HTML), stream=sys.stdout)

    # Everything is configurable: turn whole categories on or off.
    print("\n# errors only")
    options = Options.with_defaults()
    options.only("error")
    errors_only = Weblint(options=options, reporter=ShortReporter())
    errors_only.report(errors_only.check_string(TEST_HTML), stream=sys.stdout)

    return 1 if diagnostics else 0


if __name__ == "__main__":
    raise SystemExit(main())
