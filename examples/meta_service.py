#!/usr/bin/env python3
"""A meta checking service, W3C-validator style (paper section 3.6).

"Meta tools incorporate two or more of the categories described above,
usually merging the results into a single report."  This example stands
up the whole 1998 stack in-process:

1. a virtual web hosting a small site (one page broken, one link dead),
2. the meta checker combining weblint, strict SGML-style validation,
   link validation and the WebTechs page weight,
3. the weblint gateway served over a real TCP socket by the built-in
   HTTP server -- then fetched with a raw HTTP client, end to end.

Run:  python examples/meta_service.py
"""

from __future__ import annotations

from repro.gateway.forms import percent_encode
from repro.gateway.gateway import Gateway
from repro.meta import MetaChecker
from repro.www.client import UserAgent
from repro.www.server import HTTPServer, http_get
from repro.www.virtualweb import VirtualWeb

BROKEN_PAGE = """<HTML>
<HEAD>
<TITLE>quarterly report</TITLE>
</HEAD>
<BODY>
<H1>Results</H2>
<P>Up and to the right. See <A HREF="details.html">the details</A>
and <A HREF="vanished.html">last year's numbers</A>.
<IMG SRC="chart.gif">
</BODY>
</HTML>"""


def main() -> int:
    web = VirtualWeb()
    web.add_page("http://intranet/report.html", BROKEN_PAGE)
    web.add_page("http://intranet/details.html",
                 "<html><head><title>d</title></head>"
                 "<body><p>details</p></body></html>")
    agent = UserAgent(web)

    # --- the merged report -------------------------------------------------
    checker = MetaChecker(agent=agent)
    report = checker.check_url("http://intranet/report.html")
    for line in report.summary_lines():
        print(line)
    print(f"\ntotal problems across all tools: {report.total_problems()}")

    # --- the same thing as a web service over real TCP ----------------------
    gateway = Gateway(agent=agent)
    with HTTPServer(web, gateway=gateway) as server:
        url = (
            f"{server.base_url}/weblint"
            f"?url={percent_encode('http://intranet/report.html')}"
        )
        status, _headers, body = http_get(url)
    print(f"\ngateway over TCP: HTTP {status}, "
          f"{body.count('<li')} findings embedded in the report page")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
