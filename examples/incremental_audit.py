#!/usr/bin/env python3
"""Incremental site audit: re-crawl a site and pay only for the changes.

The paper's deployment reality (section 5.3): the Canon robot re-checked
"all of Canon's public web pages" on a schedule, and on any real
schedule almost nothing has changed since the last run.  This example
runs the scheduled-audit pattern three times against a virtual site with
persistent state (what ``poacher --state-dir`` wires up):

1. a *cold* crawl -- every body transferred, every page linted;
2. a *warm* crawl -- nothing changed: every page revalidates with a
   bodyless ``304 Not Modified`` and every lint result is a cache hit;
3. an *incremental* crawl after mutating one page -- exactly one full
   fetch and one engine run.

The report is byte-identical in all three runs (for the unchanged
pages); only the work changes.  See docs/caching.md for the mechanics.

Run:  python examples/incremental_audit.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core.cache import ResultCache
from repro.core.service import LintService
from repro.obs import use_registry
from repro.robot.poacher import Poacher
from repro.robot.traversal import TraversalPolicy
from repro.www.client import UserAgent
from repro.www.httpcache import HttpCache
from repro.www.virtualweb import VirtualWeb
from repro.workload import PageGenerator


def build_site(mutated: bool = False) -> VirtualWeb:
    """An 8-page generated site; ``mutated`` rewrites one page."""
    generator = PageGenerator(seed=1998)
    pages = generator.site(8)
    if mutated:
        pages["page3.html"] = pages["page3.html"].replace(
            "</body>",
            "<p>breaking news<img src=new.gif></p>\n</body>",
        )
    web = VirtualWeb()
    web.add_site("http://demo.site/", pages)
    return web


def audit(web: VirtualWeb, state: Path) -> dict:
    """One scheduled audit: load state, crawl, save state, report."""
    http_cache = HttpCache(state / "http")
    http_cache.load()
    agent = UserAgent(web, http_cache=http_cache)
    service = LintService(cache=ResultCache(state / "lint"))
    poacher = Poacher(
        agent, service=service, policy=TraversalPolicy(obey_robots_txt=False)
    )
    with use_registry() as registry:
        report = poacher.crawl("http://demo.site/index.html")
        http_cache.save()
        metrics = registry.snapshot()
    return {
        "pages": len(report.pages),
        "problems": report.total_problems(),
        "bytes": metrics.get("www.bytes_fetched", 0),
        "revalidated": metrics.get("www.conditional.revalidated", 0),
        "lint_hits": metrics.get("cache.lint.hits", 0),
        "lint_misses": metrics.get("cache.lint.misses", 0),
    }


def show(label: str, numbers: dict) -> None:
    print(
        f"{label:12} {numbers['pages']} pages, "
        f"{numbers['problems']} problems | "
        f"{numbers['bytes']:6d} bytes fetched, "
        f"{numbers['revalidated']} revalidated (304), "
        f"{numbers['lint_hits']} lint hits / "
        f"{numbers['lint_misses']} misses"
    )


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="weblint-audit-") as tmp:
        state = Path(tmp) / "state"

        cold = audit(build_site(), state)
        show("cold:", cold)

        warm = audit(build_site(), state)
        show("warm:", warm)

        incremental = audit(build_site(mutated=True), state)
        show("1 changed:", incremental)

        print()
        print(
            f"warm run: {warm['bytes']} bytes and "
            f"{warm['lint_misses']} engine runs "
            f"(cold paid {cold['bytes']} bytes, {cold['lint_misses']} runs)"
        )
        print(
            f"after one edit: {incremental['lint_misses']} page re-linted, "
            f"{incremental['revalidated']} still served as 304s"
        )
        assert warm["problems"] == cold["problems"]
        assert warm["bytes"] == 0 and warm["lint_misses"] == 0
        assert incremental["lint_misses"] == 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
