"""``weblint-daemon`` -- run the persistent lint service over HTTP.

The long-lived answer to the paper's CGI gateway: one process, a
pre-warmed worker pool, and three routes --

- ``POST /lint``: the JSON batch protocol (``weblint --daemon ADDR``
  is the bundled client),
- ``GET|POST /weblint``: the classic gateway form, served by warm
  per-options services instead of a service rebuilt per request,
- ``GET /metrics`` and ``GET /healthz``: OpenMetrics exposition and a
  liveness/queue snapshot for supervisors.

SIGTERM or SIGINT triggers a graceful drain: admission closes (new
requests get 503 + Retry-After), in-flight requests finish, the run is
recorded in the ``runs.jsonl`` ledger, and only then does the process
exit.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import signal
import sys
import threading
import time
from typing import Optional, Sequence

from repro.config.options import Options
from repro.daemon.daemon import LintDaemon
from repro.html.spec import available_specs
from repro.obs import (
    TelemetrySink,
    TimeSeries,
    record_run,
    use_event_log,
    use_registry,
    use_timeseries,
)


def _default_jobs() -> int:
    try:
        return int(os.environ.get("WEBLINT_JOBS", "0"))
    except ValueError:
        return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="weblint-daemon",
        description="persistent weblint service with a pre-warmed worker pool",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default %(default)s)"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default: an ephemeral port, printed at startup)",
    )
    parser.add_argument(
        "-j", "--jobs",
        type=int,
        default=_default_jobs(),
        metavar="N",
        help="pre-warmed worker processes (0 = one per CPU; default from "
        "WEBLINT_JOBS, else 0)",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        metavar="N",
        help="max in-flight requests before new ones get 429 "
        "(default %(default)s)",
    )
    parser.add_argument(
        "-x", "--extension",
        metavar="SPEC",
        help=f"HTML version / vendor extension ({', '.join(available_specs())})",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=os.environ.get("WEBLINT_CACHE_DIR") or None,
        help="persistent lint result cache shared by every request "
        "(default from WEBLINT_CACHE_DIR)",
    )
    parser.add_argument(
        "--state-dir",
        metavar="DIR",
        help="crash-safe lifecycle journal (DIR/daemon/) and the "
        "runs.jsonl ledger",
    )
    parser.add_argument(
        "--telemetry-dir",
        metavar="DIR",
        default=os.environ.get("WEBLINT_TELEMETRY_DIR") or None,
        help="stream events/metric snapshots to DIR while serving "
        "(default from WEBLINT_TELEMETRY_DIR)",
    )
    parser.add_argument(
        "--site-dir",
        metavar="DIR",
        help="serve DIR as http://localhost/ so gateway url= fields "
        "resolve locally",
    )
    parser.add_argument(
        "--gateway-path",
        default="/weblint",
        metavar="PATH",
        help="where the HTML gateway form answers (default %(default)s)",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="max wait for in-flight requests on shutdown "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        metavar="SECONDS",
        help="exit (with a graceful drain) after SECONDS; for smoke tests",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    out = sys.stdout

    stop = threading.Event()

    def _request_stop(signum, frame) -> None:  # pragma: no cover - signals
        stop.set()

    try:
        signal.signal(signal.SIGTERM, _request_stop)
        signal.signal(signal.SIGINT, _request_stop)
    except ValueError:  # not the main thread (tests drive stop directly)
        pass

    options = Options.with_defaults()
    if args.extension:
        options.spec_name = args.extension

    cache = None
    if args.cache_dir:
        from repro.core.cache import ResultCache

        cache = ResultCache(args.cache_dir)

    from repro.gateway.gateway import Gateway
    from repro.www.client import UserAgent
    from repro.www.server import HTTPServer
    from repro.www.virtualweb import VirtualWeb

    with use_registry() as registry, contextlib.ExitStack() as stack:
        started = time.perf_counter()
        started_unix = time.time()
        sink = None
        if args.telemetry_dir:
            sink = TelemetrySink(args.telemetry_dir)
            stack.enter_context(use_timeseries(TimeSeries()))
            stack.enter_context(use_event_log(sink.open_event_log()))

        try:
            daemon = LintDaemon(
                options=options,
                jobs=args.jobs,
                queue_limit=args.queue_limit,
                cache=cache,
                state_dir=args.state_dir,
            ).start()
        except (KeyError, ValueError) as exc:
            sys.stderr.write(f"weblint-daemon: {exc}\n")
            return 2

        web = VirtualWeb()
        agent = None
        if args.site_dir:
            web.add_site("http://localhost/", args.site_dir)
            agent = UserAgent(web)
        gateway = Gateway(agent=agent, service_provider=daemon.service_for)

        server = HTTPServer(
            web,
            host=args.host,
            port=args.port,
            gateway=gateway,
            gateway_path=args.gateway_path,
            daemon=daemon,
        ).start()
        out.write(
            f"weblint daemon listening on {server.base_url} "
            f"(lint at /lint, gateway at {args.gateway_path}, "
            f"{daemon.jobs if daemon.pool is not None else 1} warm "
            f"worker(s), queue limit {daemon.gate.limit})\n"
        )
        out.flush()

        try:
            deadline = (
                time.monotonic() + args.max_seconds
                if args.max_seconds is not None
                else None
            )
            while not stop.wait(0.2):
                if deadline is not None and time.monotonic() >= deadline:
                    break
        finally:
            # Graceful drain: close admission first, let in-flight
            # requests finish, then stop accepting connections at all.
            daemon.begin_drain()
            daemon.gate.wait_idle(args.drain_timeout)
            server.stop()
            daemon.shutdown(drain=True, timeout_s=1.0)
            wall_seconds = time.perf_counter() - started
            ledger_dir = args.state_dir or args.telemetry_dir
            if ledger_dir:
                record_run(
                    ledger_dir, registry.snapshot(), "weblint-daemon",
                    wall_seconds, clock=lambda: started_unix,
                )
            if sink is not None:
                sink.close(registry)
            out.write(
                f"weblint daemon stopped "
                f"({registry.value('daemon.requests')} requests served, "
                f"{registry.value('daemon.rejected')} rejected)\n"
            )
            out.flush()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
