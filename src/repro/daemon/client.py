"""The ``weblint --daemon ADDR`` client: lint through a running daemon.

Documents are read locally (the daemon never sees the filesystem),
shipped as one JSON batch to ``POST /lint``, and the daemon's results
come back as ordinary :class:`~repro.core.service.LintResult` objects
for the CLI's reporters.  Backpressure is honoured: a 429/503 answer
waits out the server's ``Retry-After`` (bounded) and retries before
giving up.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.core.service import LintResult
from repro.daemon.protocol import (
    ProtocolError,
    decode_batch_response,
    encode_batch_request,
)

#: Cap on how long one Retry-After wait may be; a daemon advertising a
#: silly value should not hang an interactive client.
MAX_RETRY_WAIT_S = 5.0


class DaemonClientError(Exception):
    """The daemon could not be reached or answered unusably."""


def base_url(address: str) -> str:
    """Normalise ``HOST:PORT``, ``:PORT`` or a full URL to a base URL."""
    address = address.strip().rstrip("/")
    if not address:
        raise DaemonClientError("empty daemon address")
    if address.startswith(("http://", "https://")):
        return address
    if address.startswith(":"):
        address = f"127.0.0.1{address}"
    return f"http://{address}"


def remote_check(
    address: str,
    documents: list[tuple[str, str]],
    options: Optional[dict[str, object]] = None,
    timeout_s: float = 30.0,
    max_attempts: int = 3,
    sleep=time.sleep,
) -> list[LintResult]:
    """Check ``[(name, text), ...]`` through the daemon at ``address``."""
    from repro.www.server import http_post

    url = f"{base_url(address)}/lint"
    body = encode_batch_request(documents, options)
    last_error = "no attempts made"
    for attempt in range(max_attempts):
        try:
            status, headers, payload = http_post(url, body, timeout=timeout_s)
        except (OSError, ValueError) as exc:
            raise DaemonClientError(
                f"cannot reach lint daemon at {url}: {exc}"
            ) from exc
        if status == 200:
            try:
                results = decode_batch_response(payload)
            except ProtocolError as exc:
                raise DaemonClientError(str(exc)) from exc
            if len(results) != len(documents):
                raise DaemonClientError(
                    f"daemon returned {len(results)} results "
                    f"for {len(documents)} documents"
                )
            return results
        if status in (429, 503) and attempt + 1 < max_attempts:
            try:
                retry_after = float(headers.get("retry-after", "1"))
            except ValueError:
                retry_after = 1.0
            sleep(max(0.0, min(retry_after, MAX_RETRY_WAIT_S)))
            last_error = f"daemon busy ({status})"
            continue
        raise DaemonClientError(
            f"daemon returned {status}: {payload.strip()[:200]}"
        )
    raise DaemonClientError(last_error)  # pragma: no cover - loop always exits
