"""``repro.daemon`` -- the persistent lint service.

The paper's gateway is CGI: one process per request, each paying the
full interpreter + rule-compilation start-up cost.  Section 4.6 reports
steady demand for a "standard gateway distribution" for intranet use;
this package is that distribution grown into a long-lived server:

- :class:`~repro.daemon.pool.WarmPool` -- a persistent process pool
  whose workers build their :class:`~repro.core.service.LintService`
  (and compile dispatch tables) once at startup and stay hot, so batch
  fan-out stops paying the per-request spin-up that made small batches
  slower than sequential (BENCH_parallel.json).
- :class:`~repro.daemon.daemon.LintDaemon` -- the service proper: a
  warm base service for small requests, the warm pool for batches, a
  bounded :class:`~repro.daemon.daemon.AdmissionGate` in front (429 +
  ``Retry-After`` when saturated, 503 while draining), per-options warm
  service reuse for the gateway, and a crash-safe lifecycle journal in
  the frontier's atomic-write idiom.
- :mod:`~repro.daemon.protocol` -- the JSON wire format spoken between
  ``weblint --daemon ADDR`` and the daemon's ``POST /lint`` endpoint.
- :mod:`~repro.daemon.cli` -- the ``weblint-daemon`` entry point.

Telemetry: ``daemon.requests``, ``daemon.request_ms``,
``daemon.rejected``, ``daemon.queue.depth``, ``daemon.workers`` /
``daemon.workers.busy`` and friends flow through :mod:`repro.obs`, so
``/metrics`` scrapes and the ``runs.jsonl`` ledger see the daemon like
any other front end (docs/observability.md).
"""

from repro.daemon.daemon import (
    AdmissionGate,
    DaemonSaturated,
    LintDaemon,
)
from repro.daemon.pool import WarmPool
from repro.daemon.protocol import (
    ProtocolError,
    decode_batch_request,
    decode_batch_response,
    encode_batch_request,
    encode_batch_response,
)

__all__ = [
    "AdmissionGate",
    "DaemonSaturated",
    "LintDaemon",
    "WarmPool",
    "ProtocolError",
    "decode_batch_request",
    "decode_batch_response",
    "encode_batch_request",
    "encode_batch_response",
]
