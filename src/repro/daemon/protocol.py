"""The daemon's JSON wire format.

One request shape, one response shape, both plain JSON so any HTTP
client can speak them (the paper's "easy to run from ... an
application" requirement, section 4.1, applied to the service):

Request (``POST /lint``)::

    {"documents": [{"name": "a.html", "text": "<html>..."}, ...],
     "options": {"spec": "html40", "pedantic": false,
                 "enable": ["id", ...], "disable": ["id", ...],
                 "preset": "strict"}}

Response::

    {"results": [{"name": "a.html", "error": null,
                  "diagnostics": [{"id": ..., "category": ...,
                                   "text": ..., "line": ...,
                                   "column": ...}, ...]}, ...]}

Diagnostics reuse the result cache's dict codec so the wire format and
the on-disk cache format cannot drift apart.  Decoding is strict:
anything malformed raises :class:`ProtocolError`, which the server
turns into a 400 instead of a traceback.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.core.cache import _diagnostic_from_dict, _diagnostic_to_dict
from repro.core.service import LintRequest, LintResult, StringSource

#: Cap on documents per request, so one client cannot park an
#: arbitrarily large batch in the daemon's memory.
MAX_DOCUMENTS = 1024


class ProtocolError(ValueError):
    """A request or response body that does not follow the protocol."""


def encode_batch_request(
    documents: list[tuple[str, str]],
    options: Optional[dict[str, object]] = None,
) -> str:
    """Encode ``[(name, text), ...]`` plus an options dict."""
    payload: dict[str, object] = {
        "documents": [
            {"name": name, "text": text} for name, text in documents
        ],
    }
    if options:
        payload["options"] = options
    return json.dumps(payload)


def decode_batch_request(
    body: str,
) -> tuple[list[LintRequest], dict[str, object]]:
    """Decode a request body into lint requests plus raw options."""
    try:
        payload = json.loads(body)
    except ValueError as exc:
        raise ProtocolError(f"request body is not JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("request body must be a JSON object")
    documents = payload.get("documents")
    if not isinstance(documents, list) or not documents:
        raise ProtocolError("request needs a non-empty 'documents' list")
    if len(documents) > MAX_DOCUMENTS:
        raise ProtocolError(
            f"too many documents ({len(documents)} > {MAX_DOCUMENTS})"
        )
    requests: list[LintRequest] = []
    for index, document in enumerate(documents):
        if not isinstance(document, dict) or "text" not in document:
            raise ProtocolError(f"document {index} needs a 'text' field")
        text = document["text"]
        if not isinstance(text, str):
            raise ProtocolError(f"document {index} 'text' must be a string")
        name = document.get("name", "-")
        if not isinstance(name, str) or not name:
            name = "-"
        requests.append(LintRequest(StringSource(text, name=name)))
    options = payload.get("options", {})
    if options is None:
        options = {}
    if not isinstance(options, dict):
        raise ProtocolError("'options' must be a JSON object")
    return requests, options


def encode_batch_response(results: list[LintResult]) -> str:
    """Encode lint results (diagnostics or structured error) as JSON."""
    return json.dumps(
        {
            "results": [
                {
                    "name": result.name,
                    "error": result.error,
                    "diagnostics": [
                        _diagnostic_to_dict(diagnostic)
                        for diagnostic in result.diagnostics
                    ],
                }
                for result in results
            ],
        }
    )


def decode_batch_response(body: str) -> list[LintResult]:
    """Decode a response body back into :class:`LintResult` objects."""
    try:
        payload = json.loads(body)
    except ValueError as exc:
        raise ProtocolError(f"response body is not JSON: {exc}") from exc
    if not isinstance(payload, dict) or not isinstance(
        payload.get("results"), list
    ):
        raise ProtocolError("response needs a 'results' list")
    results: list[LintResult] = []
    for index, raw in enumerate(payload["results"]):
        if not isinstance(raw, dict):
            raise ProtocolError(f"result {index} must be a JSON object")
        name = raw.get("name", "-")
        error = raw.get("error")
        if error is not None and not isinstance(error, str):
            raise ProtocolError(f"result {index} 'error' must be a string")
        rows = raw.get("diagnostics", [])
        if not isinstance(rows, list):
            raise ProtocolError(f"result {index} 'diagnostics' must be a list")
        try:
            diagnostics = [
                _diagnostic_from_dict(row, filename=name) for row in rows
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(
                f"result {index} has a malformed diagnostic: {exc}"
            ) from exc
        results.append(
            LintResult(name=name, diagnostics=diagnostics, error=error)
        )
    return results
