"""The persistent lint service: warm workers behind a bounded queue.

One :class:`LintDaemon` owns

- a *base* :class:`~repro.core.service.LintService`, built and warmed
  once, shared by every request that uses the daemon's configuration;
- a :class:`~repro.daemon.pool.WarmPool` of pre-warmed worker
  processes for batches worth fanning out;
- a small LRU of additional warm services keyed by options
  fingerprint, so gateway requests that tweak options (``pedantic=1``,
  a different spec) also stop rebuilding a service per request;
- an :class:`AdmissionGate` bounding concurrent in-flight requests:
  past the limit the front end answers 429 with a ``Retry-After``
  estimate instead of queueing without bound, and during drain new
  work is refused (503) while in-flight requests complete;
- a crash-safe lifecycle journal in the frontier's idiom: an
  append-only ``journal.jsonl`` flushed per record plus an atomic
  ``state.json`` (tempfile + ``os.replace``), so a supervisor -- or the
  next daemon start -- can tell a clean stop from a crash
  (``daemon.unclean_starts``).

Everything the daemon does is measured through :mod:`repro.obs`:
``daemon.requests`` / ``daemon.request_ms`` / ``daemon.documents``,
``daemon.rejected``, the ``daemon.queue.depth`` gauge and the worker
gauges exported at ``/metrics``.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.config.options import Options
from repro.config.presets import apply_preset
from repro.core.service import (
    LintRequest,
    LintResult,
    LintService,
    resolve_jobs,
)
from repro.daemon.pool import WarmPool
from repro.obs.events import get_event_log
from repro.obs.metrics import get_registry
from repro.obs.timeseries import get_timeseries

#: Batches smaller than this run inline on the (already warm) base
#: service: for a handful of documents the lint work is cheaper than
#: shipping them to a worker and back.
FANOUT_THRESHOLD = 4

#: How many per-options warm services the gateway path may keep.
SERVICE_LRU_LIMIT = 16


class DaemonSaturated(Exception):
    """Admission refused: the queue is full or the daemon is draining."""

    def __init__(self, retry_after_s: int, draining: bool = False) -> None:
        self.retry_after_s = max(1, int(retry_after_s))
        self.draining = draining
        state = "draining" if draining else "saturated"
        super().__init__(f"lint daemon {state}; retry after {retry_after_s}s")


class AdmissionGate:
    """Bounded admission: at most ``limit`` requests in flight.

    ``try_acquire`` never blocks -- backpressure is the *caller's*
    (HTTP 429), not a hidden unbounded queue.  ``close()`` starts a
    drain: no new admissions, and ``wait_idle`` lets the shutdown path
    wait for the in-flight count to reach zero.
    """

    def __init__(self, limit: int) -> None:
        self.limit = max(1, limit)
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._depth = 0
        self._closed = False

    def try_acquire(self) -> bool:
        with self._lock:
            if self._closed or self._depth >= self.limit:
                return False
            self._depth += 1
            depth = self._depth
        get_registry().set_gauge("daemon.queue.depth", depth)
        return True

    def release(self) -> None:
        with self._idle:
            self._depth = max(0, self._depth - 1)
            depth = self._depth
            self._idle.notify_all()
        get_registry().set_gauge("daemon.queue.depth", depth)

    def close(self) -> None:
        with self._lock:
            self._closed = True

    def wait_idle(self, timeout_s: float) -> bool:
        """Wait for every admitted request to finish; True when idle."""
        deadline = time.monotonic() + timeout_s
        with self._idle:
            while self._depth > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    @property
    def depth(self) -> int:
        return self._depth

    @property
    def closed(self) -> bool:
        return self._closed


class LifecycleJournal:
    """Crash-safe daemon lifecycle state under ``DIR/daemon/``.

    Same idioms as the frontier journal: events append to
    ``journal.jsonl`` (flushed per record, tolerant load), the current
    state rewrites ``state.json`` atomically.  ``started()`` reports
    whether the previous lifetime ended cleanly, so an operator can see
    crash loops in the journal and in ``daemon.unclean_starts``.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory) / "daemon"
        self.journal_path = self.directory / "journal.jsonl"
        self.state_path = self.directory / "state.json"

    def _append(self, event: str, **fields: object) -> None:
        record = {"event": event, "unix": round(time.time(), 3), **fields}
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            with self.journal_path.open("a", encoding="utf-8") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
                handle.flush()
        except OSError:
            get_registry().inc("daemon.journal_write_errors")

    def _write_state(self, state: dict[str, object]) -> None:
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            handle = tempfile.NamedTemporaryFile(
                "w",
                encoding="utf-8",
                dir=self.directory,
                prefix="state.",
                suffix=".tmp",
                delete=False,
            )
            with handle:
                json.dump(state, handle, sort_keys=True)
            os.replace(handle.name, self.state_path)
        except OSError:
            get_registry().inc("daemon.journal_write_errors")

    def load_state(self) -> Optional[dict[str, object]]:
        try:
            payload = json.loads(self.state_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def started(self, workers: int, queue_limit: int) -> bool:
        """Record a start; returns False when the last stop was unclean."""
        previous = self.load_state()
        clean = previous is None or bool(previous.get("clean", True))
        if not clean:
            get_registry().inc("daemon.unclean_starts")
            get_event_log().emit(
                "daemon.unclean_start",
                level="warn",
                previous_pid=previous.get("pid") if previous else None,
            )
        self._append(
            "started", pid=os.getpid(), workers=workers,
            queue_limit=queue_limit, previous_clean=clean,
        )
        self._write_state(
            {
                "pid": os.getpid(),
                "started_unix": round(time.time(), 3),
                "workers": workers,
                "queue_limit": queue_limit,
                "clean": False,
            }
        )
        return clean

    def draining(self) -> None:
        self._append("draining", pid=os.getpid())

    def stopped(self, requests: int) -> None:
        self._append("stopped", pid=os.getpid(), requests=requests)
        state = self.load_state() or {}
        state.update({"clean": True, "stopped_unix": round(time.time(), 3)})
        self._write_state(state)


def options_from_dict(base: Options, raw: dict[str, object]) -> Options:
    """Apply a protocol/gateway options dict on top of the daemon's.

    Raises ``ValueError``/``KeyError``/``UnknownMessageError`` for
    unknown specs, presets or message ids -- the server layer turns
    those into a 400.
    """
    options = base.copy()
    spec = raw.get("spec")
    if spec:
        options.spec_name = str(spec)
    if raw.get("pedantic"):
        apply_preset(options, "pedantic")
    preset = raw.get("preset")
    if preset:
        apply_preset(options, str(preset))
    enable = raw.get("enable", [])
    disable = raw.get("disable", [])
    if isinstance(enable, str):
        enable = [enable]
    if isinstance(disable, str):
        disable = [disable]
    for identifier in enable:
        options.enable(str(identifier))
    for identifier in disable:
        options.disable(str(identifier))
    return options


class LintDaemon:
    """The long-lived lint service every front end can share."""

    def __init__(
        self,
        options: Optional[Options] = None,
        jobs: int = 0,
        queue_limit: int = 64,
        cache=None,
        state_dir: Optional[Union[str, Path]] = None,
        fanout_threshold: int = FANOUT_THRESHOLD,
        chunk_size: Optional[int] = None,
    ) -> None:
        self.options = options if options is not None else Options.with_defaults()
        self.service = LintService(options=self.options, cache=cache)
        self.jobs = resolve_jobs(jobs)
        self.fanout_threshold = max(1, fanout_threshold)
        self.chunk_size = chunk_size
        self.gate = AdmissionGate(queue_limit)
        self.journal = LifecycleJournal(state_dir) if state_dir else None
        self.pool: Optional[WarmPool] = None
        self._services: "OrderedDict[tuple, LintService]" = OrderedDict()
        self._services_lock = threading.Lock()
        self._started = False
        self._draining = False

    # -- lifecycle -----------------------------------------------------------

    def start(self, prewarm: bool = True) -> "LintDaemon":
        """Build (and pre-warm) the worker pool; record the start."""
        if self._started:
            return self
        self._started = True
        registry = get_registry()
        registry.set_gauge("daemon.queue.limit", self.gate.limit)
        if self.jobs > 1 and self.service.portable:
            self.pool = WarmPool(
                self.service.specification(),
                workers=self.jobs,
                chunk_size=self.chunk_size,
            )
        self.service.warm()
        if self.pool is not None and prewarm:
            warmed = self.pool.prewarm()
            get_event_log().emit(
                "daemon.started", level="info",
                workers=warmed, queue_limit=self.gate.limit,
            )
        else:
            registry.set_gauge("daemon.workers", 1)
        if self.journal is not None:
            self.journal.started(self.jobs, self.gate.limit)
        return self

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Refuse new work; in-flight requests keep running."""
        if self._draining:
            return
        self._draining = True
        self.gate.close()
        if self.journal is not None:
            self.journal.draining()
        get_event_log().emit("daemon.draining", level="info")

    def shutdown(self, drain: bool = True, timeout_s: float = 30.0) -> bool:
        """Stop the daemon; True when every in-flight request finished.

        ``drain=True`` (the default) closes admission and waits up to
        ``timeout_s`` for the queue to empty before tearing the pool
        down, so accepted requests are never abandoned mid-lint.
        """
        self.begin_drain()
        drained = self.gate.wait_idle(timeout_s) if drain else False
        if self.pool is not None:
            self.pool.shutdown()
        if self.journal is not None:
            self.journal.stopped(
                requests=get_registry().value("daemon.requests")
            )
        get_event_log().emit("daemon.stopped", level="info", drained=drained)
        return drained

    def __enter__(self) -> "LintDaemon":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # -- admission -----------------------------------------------------------

    def retry_after_s(self) -> int:
        """Estimate when a rejected client should retry.

        A full queue drains at roughly ``mean request time x limit /
        workers``; clamped to 1..30 seconds so the header is always
        actionable.
        """
        histogram = get_registry().histogram("daemon.request_ms")
        mean_s = (histogram.mean or 100.0) / 1000.0
        workers = self.jobs if self.pool is not None else 1
        estimate = self.gate.limit * mean_s / max(1, workers)
        return max(1, min(30, int(round(estimate + 0.5))))

    @contextlib.contextmanager
    def admitted(self) -> Iterator[None]:
        """Admission-controlled scope around one request.

        Raises :class:`DaemonSaturated` (counted in ``daemon.rejected``)
        instead of queueing when the daemon is full or draining.
        """
        if not self.gate.try_acquire():
            get_registry().inc("daemon.rejected")
            raise DaemonSaturated(self.retry_after_s(), draining=self._draining)
        try:
            yield
        finally:
            self.gate.release()

    # -- warm services -------------------------------------------------------

    def service_for(self, options: Optional[Options]) -> LintService:
        """A warm service for ``options`` (the daemon's own when None).

        Services are cached by options fingerprint in a small LRU, so a
        gateway user who always checks with ``pedantic=1`` pays the
        service build and table compilation once, not per request.
        """
        if options is None:
            return self.service
        key = options.fingerprint()
        if key == self.options.fingerprint():
            return self.service
        with self._services_lock:
            service = self._services.get(key)
            if service is not None:
                self._services.move_to_end(key)
                return service
        service = LintService(options=options.copy(), cache=self.service.cache)
        service.warm()
        with self._services_lock:
            self._services[key] = service
            self._services.move_to_end(key)
            while len(self._services) > SERVICE_LRU_LIMIT:
                self._services.popitem(last=False)
        get_registry().inc("daemon.services.built")
        return service

    # -- checking ------------------------------------------------------------

    def check_batch(
        self,
        requests: list[LintRequest],
        options: Optional[Options] = None,
    ) -> list[LintResult]:
        """Check one admitted request's documents on warm capacity.

        Batches at or above ``fanout_threshold`` run on the pre-warmed
        pool (when the request uses the daemon's own configuration --
        the pool's workers are built for exactly that service); smaller
        batches and custom-options requests run inline on a warm
        service.  Either way: no per-request service build, no
        per-request pool spin-up.
        """
        registry = get_registry()
        start = time.perf_counter()
        service = self.service_for(options)
        if (
            self.pool is not None
            and service is self.service
            and len(requests) >= self.fanout_threshold
        ):
            results = self.pool.check_batch(requests, fallback=service.check)
        else:
            results = [service.check(request) for request in requests]
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        registry.inc("daemon.requests")
        registry.inc("daemon.documents", len(requests))
        registry.observe("daemon.request_ms", elapsed_ms)
        series = get_timeseries()
        if series is not None:
            series.observe("daemon.requests", 1.0)
        events = get_event_log()
        if events.enabled:
            events.note_operation("daemon.request", elapsed_ms)
            events.emit(
                "daemon.request",
                level="debug",
                documents=len(requests),
                duration_ms=round(elapsed_ms, 3),
            )
        return results

    def check_one(self, request: LintRequest) -> LintResult:
        """Single-document convenience used by the gateway path."""
        return self.check_batch([request])[0]
