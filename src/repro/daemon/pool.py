"""The pre-warmed worker pool: persistent processes, hot services.

The batch pipeline's :class:`~repro.core.service.ParallelExecutor`
builds a fresh :class:`~concurrent.futures.ProcessPoolExecutor` per
batch, so every request pays worker spawn plus per-worker service
rebuild and dispatch-table compilation -- which is exactly why small
batches lose to sequential (BENCH_parallel.json).  :class:`WarmPool`
keeps one pool alive for the life of the daemon: workers run
:func:`repro.core.service._worker_init` once, compile their tables
once, and every subsequent batch is pure lint work plus IPC.

``prewarm()`` forces every worker process to start and initialise
*before* the first request arrives, so the first client sees the same
latency as the thousandth.  A worker crash mid-batch degrades, never
fails: the broken pool is rebuilt (``daemon.pool.rebuilds``) and the
lost chunk re-runs inline in the parent.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Optional

from repro.core.service import (
    LintRequest,
    LintResult,
    ServiceSpecification,
    StringSource,
    _worker_init,
    _worker_run_chunk,
)
from repro.obs.metrics import get_registry


def _warm_probe(hold_s: float) -> int:
    """Worker-side probe: hold the worker briefly, report its pid.

    The hold spreads concurrent probes across distinct workers, so the
    parent can tell how many processes have actually initialised.
    """
    time.sleep(hold_s)
    return os.getpid()


class WarmPool:
    """A persistent process pool whose workers stay hot.

    Thread-safe: the daemon's handler threads may submit batches
    concurrently; the underlying executor serialises scheduling and the
    rebuild-after-crash path holds a lock.
    """

    def __init__(
        self,
        specification: ServiceSpecification,
        workers: int,
        chunk_size: Optional[int] = None,
    ) -> None:
        self.specification = specification
        self.workers = max(1, workers)
        self.chunk_size = chunk_size
        self._lock = threading.Lock()
        self._busy = 0
        self._closed = False
        self._pool: Optional[ProcessPoolExecutor] = None
        self._build_pool()

    # -- lifecycle -----------------------------------------------------------

    def _build_pool(self) -> None:
        try:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_worker_init,
                initargs=(self.specification,),
            )
        except (OSError, ValueError):  # pragma: no cover - no multiprocessing
            self._pool = None

    @property
    def inline(self) -> bool:
        """True when no worker processes exist (degraded single-process)."""
        return self._pool is None

    def prewarm(self, timeout_s: float = 30.0, hold_s: float = 0.05) -> int:
        """Start and initialise every worker; return how many are warm.

        Submits held probes in rounds until every worker pid has been
        seen (or the deadline passes), which forces the executor to
        spawn all processes and run the service-building initializer in
        each -- the whole point of a *pre*-warmed pool.
        """
        if self._pool is None:
            return 0
        seen: set[int] = set()
        deadline = time.monotonic() + timeout_s
        while len(seen) < self.workers and time.monotonic() < deadline:
            remaining = max(1.0, deadline - time.monotonic())
            probes = [
                self._pool.submit(_warm_probe, hold_s)
                for _ in range(self.workers)
            ]
            try:
                for probe in probes:
                    seen.add(probe.result(timeout=remaining))
            except Exception:  # pragma: no cover - spawn failure mid-warm
                break
        registry = get_registry()
        registry.set_gauge("daemon.workers", len(seen) or 1)
        return len(seen)

    def shutdown(self) -> None:
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    # -- batches -------------------------------------------------------------

    @property
    def busy_workers(self) -> int:
        return self._busy

    def check_batch(
        self,
        requests: list[LintRequest],
        fallback: Callable[[LintRequest], LintResult],
    ) -> list[LintResult]:
        """Check a batch on the warm workers; results in input order.

        ``fallback`` (the parent service's ``check``) handles the
        degraded paths: no pool, a closed pool, or chunks lost to a
        worker crash.  Exactly the same golden contract as
        ``ParallelExecutor``: the output is byte-identical to the
        sequential path, whatever happens to the processes.
        """
        pool = self._pool
        if pool is None or self._closed:
            return [fallback(request) for request in requests]

        # Materialise non-portable sources in the parent, as the batch
        # pipeline does: read failures become structured errors here.
        results: list[Optional[LintResult]] = [None] * len(requests)
        portable: list[tuple[int, LintRequest]] = []
        for index, request in enumerate(requests):
            source = request.source
            if not source.portable:
                try:
                    text = source.text()
                except Exception as exc:  # SourceError
                    results[index] = LintResult(
                        name=source.name, error=str(exc)
                    )
                    continue
                request = LintRequest(
                    StringSource(text, name=source.name),
                    keep_text=request.keep_text,
                )
            portable.append((index, request))
        if not portable:
            return [result for result in results if result is not None]

        chunk_size = self.chunk_size or max(
            1, -(-len(portable) // (self.workers * 4))
        )
        chunks = [
            portable[offset : offset + chunk_size]
            for offset in range(0, len(portable), chunk_size)
        ]
        registry = get_registry()
        futures = []
        try:
            for chunk in chunks:
                futures.append(
                    (
                        pool.submit(
                            _worker_run_chunk,
                            [request for _, request in chunk],
                            False,
                            False,
                        ),
                        [index for index, _ in chunk],
                    )
                )
        except RuntimeError:  # pool shut down while submitting
            for index, request in portable:
                if results[index] is None:
                    results[index] = fallback(request)
            return results  # type: ignore[return-value]

        with self._lock:
            self._busy += 1
            registry.gauge_max("daemon.workers.busy", min(self._busy, self.workers))
        broken: list[int] = []
        try:
            for future, indices in futures:
                try:
                    chunk_results, metrics, _spans, _profile = future.result()
                except BrokenProcessPool:
                    broken.extend(indices)
                    continue
                registry.merge_snapshot(metrics)
                for index, result in zip(indices, chunk_results):
                    results[index] = result
        finally:
            with self._lock:
                self._busy -= 1

        if broken:
            # A worker died; heal the pool for the next batch and re-run
            # the lost chunks inline so this one still succeeds.
            registry.inc("daemon.pool.rebuilds")
            with self._lock:
                if self._pool is pool and not self._closed:
                    self._pool = None
                    pool.shutdown(wait=False, cancel_futures=True)
                    self._build_pool()
            request_at = dict(portable)
            for index in broken:
                results[index] = fallback(request_at[index])
        return results  # type: ignore[return-value]
