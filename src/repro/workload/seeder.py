"""Error injection with ground truth.

Takes a valid page and applies named *mutations*, each modelled on one of
the commonly-made mistakes weblint's heuristics target (paper section
5.1: "The heuristics are based on commonly-made mistakes in HTML").
Every mutation records the weblint message id it should provoke, giving
labelled corpora for the detection-rate and cascade experiments (E9).

A mutation is a pure function ``source -> source | None`` (None when the
page offers no applicable site for it), plus the expected message id.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field
from typing import Callable, Optional

MutationFn = Callable[[str], Optional[str]]


@dataclass(frozen=True)
class Mutation:
    """One named way of breaking a page."""

    name: str
    expected_message: str
    apply: MutationFn


@dataclass
class SeededPage:
    """A broken page plus what is broken about it."""

    source: str
    applied: list[Mutation] = field(default_factory=list)

    def expected_messages(self) -> list[str]:
        return [mutation.expected_message for mutation in self.applied]


# -- mutation implementations ------------------------------------------------------


def _sub_first(pattern: str, replacement: str, source: str) -> Optional[str]:
    new, count = re.subn(pattern, replacement, source, count=1)
    return new if count else None


def drop_doctype(source: str) -> Optional[str]:
    return _sub_first(r"<!DOCTYPE[^>]*>\n?", "", source)


def unclose_bold(source: str) -> Optional[str]:
    # Open a <b> mid-paragraph and never close it.
    return _sub_first(r"<p>", "<p><b>", source)


def typo_element(source: str) -> Optional[str]:
    new = _sub_first(r"<em>", "<emm>", source)
    if new is None:
        return None
    return _sub_first(r"</em>", "</emm>", new) or new


def unquote_src(source: str) -> Optional[str]:
    return _sub_first(r'src="([^"]+)"', r"src=\1", source)


def drop_alt(source: str) -> Optional[str]:
    return _sub_first(r'\salt="[^"]*"', "", source)


def mismatch_heading(source: str) -> Optional[str]:
    return _sub_first(r"</h2>", "</h3>", source)


def overlap_anchor(source: str) -> Optional[str]:
    return _sub_first(
        r'<a href="([^"]+)">([^<]+)</a>',
        r'<b><a href="\1">\2</b></a>',
        source,
    )


def odd_quote(source: str) -> Optional[str]:
    return _sub_first(r'href="([^"]+)">', r'href="\1>', source)


def single_quote(source: str) -> Optional[str]:
    return _sub_first(r'href="([^"]+)"', r"href='\1'", source)


def bad_body_color(source: str) -> Optional[str]:
    return _sub_first(r"<body>", '<body bgcolor="fffff">', source)


def unknown_attribute(source: str) -> Optional[str]:
    return _sub_first(r"<p>", '<p zorp="1">', source)


def deprecated_listing(source: str) -> Optional[str]:
    return _sub_first(
        r"</body>", "<listing>old markup</listing>\n</body>", source
    )


def markup_in_comment(source: str) -> Optional[str]:
    return _sub_first(
        r"<body>", "<body>\n<!-- <b>commented out</b> -->", source
    )


def missing_textarea_dims(source: str) -> Optional[str]:
    return _sub_first(
        r"</body>",
        '<form action="post.cgi"><textarea name="t">x</textarea></form>\n</body>',
        source,
    )


def here_anchor(source: str) -> Optional[str]:
    return _sub_first(r'(<a href="[^"]+">)[^<]+(</a>)', r"\1here\2", source)


def literal_metacharacter(source: str) -> Optional[str]:
    return _sub_first(r"<p>", "<p>5 > 3 and ", source)


def unknown_entity(source: str) -> Optional[str]:
    return _sub_first(r"<p>", "<p>&zorp; ", source)


def nested_anchor(source: str) -> Optional[str]:
    return _sub_first(
        r'<a href="([^"]+)">([^<]+)</a>',
        r'<a href="\1">\2 <a href="extra.html">inner anchor</a></a>',
        source,
    )


def empty_title(source: str) -> Optional[str]:
    return _sub_first(r"<title>[^<]*</title>", "<title></title>", source)


def head_element_in_body(source: str) -> Optional[str]:
    return _sub_first(
        r"</body>", '<base href="http://example.com/">\n</body>', source
    )


def repeated_attribute(source: str) -> Optional[str]:
    return _sub_first(
        r'<img src="([^"]+)"', r'<img src="\1" src="\1"', source
    )


def unmatched_close(source: str) -> Optional[str]:
    return _sub_first(r"</body>", "</strong>\n</body>", source)


#: The catalog of mutations, keyed by name.
MUTATIONS: dict[str, Mutation] = {
    mutation.name: mutation
    for mutation in (
        Mutation("drop-doctype", "require-doctype", drop_doctype),
        Mutation("unclose-bold", "unclosed-element", unclose_bold),
        Mutation("typo-element", "unknown-element", typo_element),
        Mutation("unquote-src", "quote-attribute-value", unquote_src),
        Mutation("drop-alt", "img-alt", drop_alt),
        Mutation("mismatch-heading", "heading-mismatch", mismatch_heading),
        Mutation("overlap-anchor", "overlapped-element", overlap_anchor),
        Mutation("odd-quote", "odd-quotes", odd_quote),
        Mutation("single-quote", "attribute-delimiter", single_quote),
        Mutation("bad-body-color", "attribute-format", bad_body_color),
        Mutation("unknown-attribute", "unknown-attribute", unknown_attribute),
        Mutation("deprecated-listing", "deprecated-element", deprecated_listing),
        Mutation("markup-in-comment", "markup-in-comment", markup_in_comment),
        Mutation(
            "missing-textarea-dims", "required-attribute", missing_textarea_dims
        ),
        Mutation("here-anchor", "here-anchor", here_anchor),
        Mutation(
            "literal-metacharacter", "literal-metacharacter", literal_metacharacter
        ),
        Mutation("unknown-entity", "unknown-entity", unknown_entity),
        Mutation("nested-anchor", "nested-element", nested_anchor),
        Mutation("empty-title", "empty-container", empty_title),
        Mutation("head-element-in-body", "head-element", head_element_in_body),
        Mutation("repeated-attribute", "repeated-attribute", repeated_attribute),
        Mutation("unmatched-close", "illegal-closing", unmatched_close),
    )
}

#: Mutations whose expected message is enabled by default -- the set used
#: for default-configuration detection experiments.
DEFAULT_DETECTABLE = tuple(
    name
    for name, mutation in MUTATIONS.items()
    if mutation.expected_message != "here-anchor"
)


class ErrorSeeder:
    """Apply randomly chosen (but seed-deterministic) mutations.

    Mutations edit overlapping regions of the page, so a later mutation
    can occasionally destroy an earlier one's trigger (e.g. nesting an
    extra anchor inside the anchor whose text was just made content-free).
    ``seed_errors`` therefore *verifies* ground truth as it goes: after
    each candidate mutation it re-checks that every expected message so
    far still fires, and rolls the candidate back otherwise.  The result
    is a page whose label set is guaranteed detectable.
    """

    def __init__(self, seed: int = 0) -> None:
        self.random = random.Random(seed)
        self._verifier = None

    def _expected_detectable(self, source: str, expected: list[str]) -> bool:
        if self._verifier is None:
            # Imported here: the seeder is usable without the checker, and
            # the checker imports nothing from the workload package.
            from repro.config.options import Options
            from repro.core.linter import Weblint

            options = Options.with_defaults()
            options.enable("all")
            options.disable("upper-case", "lower-case")
            self._verifier = Weblint(options=options)
        got = {d.message_id for d in self._verifier.check_string(source)}
        return all(message in got for message in expected)

    def seed_errors(
        self,
        source: str,
        count: int = 1,
        names: Optional[tuple[str, ...]] = None,
    ) -> SeededPage:
        """Apply up to ``count`` distinct, verified mutations to ``source``.

        Mutations that do not apply to this particular page -- or that
        would break an earlier mutation's ground truth -- are skipped
        (and another is drawn), so ``len(result.applied)`` can be lower
        than ``count`` only if the page ran out of usable mutations.
        """
        pool = list(names if names is not None else MUTATIONS)
        self.random.shuffle(pool)
        seeded = SeededPage(source=source)
        for name in pool:
            if len(seeded.applied) >= count:
                break
            mutation = MUTATIONS[name]
            mutated = mutation.apply(seeded.source)
            if mutated is None:
                continue
            expected = seeded.expected_messages() + [mutation.expected_message]
            if not self._expected_detectable(mutated, expected):
                continue  # interfered with an earlier mutation: roll back
            seeded.source = mutated
            seeded.applied.append(mutation)
        return seeded

    def seed_specific(self, source: str, names: tuple[str, ...]) -> SeededPage:
        """Apply exactly the named mutations, in order; raise if one
        cannot apply."""
        seeded = SeededPage(source=source)
        for name in names:
            mutation = MUTATIONS[name]
            mutated = mutation.apply(seeded.source)
            if mutated is None:
                raise ValueError(
                    f"mutation {name!r} is not applicable to this page"
                )
            seeded.source = mutated
            seeded.applied.append(mutation)
        return seeded
