"""Deterministic generator of valid HTML pages and sites.

Pages are valid HTML 4.0 Transitional *and* clean under weblint's default
configuration -- the test-suite asserts this property, which in turn
pins down exactly what "default-clean" means.  The generator therefore:

- emits a DOCTYPE, the HTML/HEAD/TITLE/BODY skeleton, a short title;
- keeps heading levels in order;
- gives every IMG an ALT, WIDTH and HEIGHT;
- double-quotes every attribute value;
- uses meaningful anchor text (never the content-free "here" words).

Everything is driven by a :class:`random.Random` with a caller-supplied
seed, so corpora are reproducible across runs and machines.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

_WORDS = (
    "system", "document", "analysis", "report", "service", "quality",
    "network", "research", "archive", "catalog", "design", "module",
    "release", "update", "project", "library", "account", "summary",
    "section", "detail", "figure", "result", "method", "review",
    "weekly", "annual", "public", "internal", "current", "complete",
)

_ANCHOR_PHRASES = (
    "the full report",
    "project archive",
    "release notes",
    "quality checklist",
    "the design documents",
    "server statistics",
    "team directory",
    "publication list",
)


@dataclass
class GeneratorConfig:
    """Shape of generated pages."""

    paragraphs: int = 6
    sentences_per_paragraph: int = 4
    words_per_sentence: int = 9
    headings: int = 3
    images: int = 2
    lists: int = 1
    list_items: int = 4
    tables: int = 1
    table_rows: int = 3
    table_columns: int = 3
    links_per_page: int = 4
    use_emphasis: bool = True


class PageGenerator:
    """Generate valid pages and interlinked sites."""

    def __init__(self, seed: int = 0, config: Optional[GeneratorConfig] = None) -> None:
        self.seed = seed
        self.random = random.Random(seed)
        self.config = config if config is not None else GeneratorConfig()

    # -- small pieces ---------------------------------------------------------

    def word(self) -> str:
        return self.random.choice(_WORDS)

    def sentence(self) -> str:
        words = [self.word() for _ in range(self.config.words_per_sentence)]
        words[0] = words[0].capitalize()
        return " ".join(words) + "."

    def paragraph(self, link_targets: tuple[str, ...] = ()) -> str:
        sentences = [
            self.sentence() for _ in range(self.config.sentences_per_paragraph)
        ]
        body = " ".join(sentences)
        if self.config.use_emphasis and self.random.random() < 0.5:
            body += f" <em>{self.sentence()}</em>"
        if link_targets and self.random.random() < 0.8:
            target = self.random.choice(link_targets)
            phrase = self.random.choice(_ANCHOR_PHRASES)
            body += f' See <a href="{target}">{phrase}</a>.'
        return f"<p>{body}</p>"

    def image(self, index: int) -> str:
        width = self.random.choice((120, 200, 320, 480))
        height = self.random.choice((60, 90, 120, 240))
        return (
            f'<img src="images/figure{index}.gif" '
            f'alt="figure {index}: {self.word()} {self.word()}" '
            f'width="{width}" height="{height}">'
        )

    def list_block(self) -> str:
        items = "\n".join(
            f"<li>{self.sentence()}</li>" for _ in range(self.config.list_items)
        )
        kind = self.random.choice(("ul", "ol"))
        return f"<{kind}>\n{items}\n</{kind}>"

    def table_block(self) -> str:
        header = "".join(
            f"<th>{self.word()}</th>" for _ in range(self.config.table_columns)
        )
        rows = [f"<tr>{header}</tr>"]
        for _ in range(self.config.table_rows):
            cells = "".join(
                f"<td>{self.word()} {self.word()}</td>"
                for _ in range(self.config.table_columns)
            )
            rows.append(f"<tr>{cells}</tr>")
        body = "\n".join(rows)
        return f'<table border="1" summary="generated data table">\n{body}\n</table>'

    def title(self) -> str:
        return f"{self.word().capitalize()} {self.word()} {self.word()}"

    # -- whole pages ----------------------------------------------------------------

    def page(
        self,
        title: Optional[str] = None,
        link_targets: tuple[str, ...] = (),
    ) -> str:
        """One valid, default-clean HTML page."""
        config = self.config
        title = title if title is not None else self.title()
        if not link_targets:
            # Standalone pages still carry anchors (they are a major
            # checking surface); targets are plausible sibling pages.
            link_targets = ("page1.html", "archive.html", "notes.html")
        blocks: list[str] = [f"<h1>{title}</h1>"]

        headings_used = 1
        for index in range(config.paragraphs):
            if headings_used <= config.headings and index and index % 2 == 0:
                blocks.append(f"<h2>{self.word().capitalize()} {self.word()}</h2>")
                headings_used += 1
            blocks.append(self.paragraph(link_targets))
        for index in range(config.images):
            blocks.append(f"<p>{self.image(index)}</p>")
        for _ in range(config.lists):
            blocks.append(self.list_block())
        for _ in range(config.tables):
            blocks.append(self.table_block())

        body = "\n".join(blocks)
        return (
            '<!DOCTYPE HTML PUBLIC "-//W3C//DTD HTML 4.0 Transitional//EN">\n'
            "<html>\n<head>\n"
            f"<title>{title}</title>\n"
            f'<meta name="description" content="{self.sentence()}">\n'
            "</head>\n<body>\n"
            f"{body}\n"
            "</body>\n</html>\n"
        )

    def pathological_page(
        self,
        table_depth: int = 12,
        unclosed_tags: int = 8,
        paragraphs: int = 20,
    ) -> str:
        """A deliberately nasty page: the profiling tests' workload.

        Seed-stable like :meth:`page`, but the opposite of default-clean:
        deeply nested tables (each level a new open TABLE/TR/TD), a run
        of never-closed inline and container tags, odd quotes, and bare
        metacharacters.  Slow rules (and the cascade heuristics) have to
        work hardest on exactly this shape, so ``--profile`` runs over a
        pathological corpus actually have something to find.
        """
        blocks: list[str] = [f"<h1>{self.title()}</h1>"]
        # Deeply nested tables: every level opens TABLE/TR/TD and only
        # the innermost cell carries text; nothing is closed until the
        # very end -- a worst case for the stack machine.
        for level in range(table_depth):
            blocks.append(
                f'<table border="1" summary="level {level}"><tr><td>'
            )
        blocks.append(self.sentence())
        for _ in range(table_depth):
            blocks.append("</td></tr></table>")
        # Unclosed containers and inline tags, interleaved with text so
        # each one accumulates content (and eventually an overlap).
        unclosed_pool = ("b", "i", "em", "strong", "tt", "blockquote", "pre", "a")
        for index in range(unclosed_tags):
            name = unclosed_pool[index % len(unclosed_pool)]
            attr = ' href="page.html' if name == "a" else ""  # odd quotes
            blocks.append(f"<{name}{attr}>{self.sentence()}")
        for _ in range(paragraphs):
            # Bare metacharacters and unquoted values in every paragraph.
            blocks.append(
                f"<p>{self.sentence()} 1 < 2 > 0 "
                f'<img src=figure.gif>{self.sentence()}'
            )
        body = "\n".join(blocks)
        return f"<html>\n<head>\n<title>{self.title()}</title>\n</head>\n<body>\n{body}\n</body>\n</html>\n"

    def site(
        self,
        n_pages: int,
        links_per_page: Optional[int] = None,
    ) -> dict[str, str]:
        """An interlinked site: index.html plus n_pages-1 article pages.

        Every page is linked from the index (so nothing is an orphan) and
        pages link among themselves at the requested density.
        """
        if n_pages < 1:
            raise ValueError("a site needs at least one page")
        links = (
            links_per_page
            if links_per_page is not None
            else self.config.links_per_page
        )
        names = ["index.html"] + [
            f"page{index}.html" for index in range(1, n_pages)
        ]
        pages: dict[str, str] = {}
        for name in names[1:]:
            others = [n for n in names if n != name]
            targets = tuple(
                self.random.sample(others, min(links, len(others)))
            )
            pages[name] = self.page(link_targets=targets)
        index_links = "\n".join(
            f'<li><a href="{name}">{self.random.choice(_ANCHOR_PHRASES)} '
            f"({name})</a></li>"
            for name in names[1:]
        )
        index_body = (
            f"<h1>Site index</h1>\n<p>{self.sentence()}</p>\n"
            f"<ul>\n{index_links}\n</ul>"
            if index_links
            else f"<h1>Site index</h1>\n<p>{self.sentence()}</p>"
        )
        pages["index.html"] = (
            '<!DOCTYPE HTML PUBLIC "-//W3C//DTD HTML 4.0 Transitional//EN">\n'
            "<html>\n<head>\n<title>Site index</title>\n"
            '<meta name="description" content="site index">\n'
            "</head>\n<body>\n"
            f"{index_body}\n"
            "</body>\n</html>\n"
        )
        return pages

    def iter_site(self, n_pages: int, pages_per_section: int = 50):
        """Lazily yield an interlinked site of ``(name, text)`` pairs.

        The streaming counterpart of :meth:`site`, sized for audits too
        big to hold as a dict: pages come out one at a time and nothing
        is retained between them.  The link structure is hub-and-spoke
        -- ``index.html`` links the section hubs, each hub links its
        pages, and each page links its hub plus the next page in its
        section (a ring) -- so no single page's size grows with the
        site (only the index grows, by one link per
        ``pages_per_section`` pages), every page is reachable and no
        link dangles.

        Each page is generated by a private ``PageGenerator`` derived
        from this generator's seed and the page index, so page content
        depends only on ``(seed, index)`` -- resumable, and identical
        however the iteration is driven.
        """
        if n_pages < 1:
            raise ValueError("a site needs at least one page")
        sections = max(1, -(-(n_pages - 1) // (pages_per_section + 1)))

        def hub_name(section: int) -> str:
            return f"section{section}.html"

        def sub(index: int) -> "PageGenerator":
            return PageGenerator(
                seed=self.seed * 1_000_003 + index, config=self.config
            )

        index_links = "\n".join(
            f'<li><a href="{hub_name(section)}">section {section} '
            "overview</a></li>"
            for section in range(min(sections, max(0, n_pages - 1)))
        )
        index_body = (
            f"<h1>Site index</h1>\n<ul>\n{index_links}\n</ul>"
            if index_links
            else "<h1>Site index</h1>\n<p>An empty site.</p>"
        )
        yield "index.html", (
            '<!DOCTYPE HTML PUBLIC "-//W3C//DTD HTML 4.0 Transitional//EN">\n'
            "<html>\n<head>\n<title>Site index</title>\n"
            '<meta name="description" content="site index">\n'
            "</head>\n<body>\n"
            f"{index_body}\n"
            "</body>\n</html>\n"
        )

        # Page indexes 1..n_pages-1 fill contiguous per-section blocks:
        # the first slot of each block is its hub, the rest its members.
        members: dict[int, list[str]] = {s: [] for s in range(sections)}
        hubs: list[int] = []
        for index in range(1, n_pages):
            section, slot = divmod(index - 1, pages_per_section + 1)
            if slot == 0:
                hubs.append(index)
            else:
                members[section].append(f"page{index}.html")
        for section, hub_index in enumerate(hubs):
            names = members[section]
            link_items = "\n".join(
                f'<li><a href="{name}">{name} in section {section}</a></li>'
                for name in names
            )
            listing = (
                f"<ul>\n{link_items}\n</ul>" if link_items
                else "<p>No pages in this section yet.</p>"
            )
            yield hub_name(section), (
                '<!DOCTYPE HTML PUBLIC '
                '"-//W3C//DTD HTML 4.0 Transitional//EN">\n'
                "<html>\n<head>\n"
                f"<title>Section {section} overview</title>\n"
                f'<meta name="description" content="section {section}">\n'
                "</head>\n<body>\n"
                f"<h1>Section {section} overview</h1>\n"
                '<p>Back to <a href="index.html">the site index</a>.</p>\n'
                f"{listing}\n"
                "</body>\n</html>\n"
            )
            for position, name in enumerate(names):
                page_index = int(name[4:-5])
                ring_next = names[(position + 1) % len(names)]
                yield name, sub(page_index).page(
                    link_targets=(hub_name(section), ring_next)
                )
