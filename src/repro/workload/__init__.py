"""Workload generation for tests and benchmarks.

The paper's test-suite rests on "a large test set of HTML samples, which
are believed to be valid or invalid for specific versions of HTML"
(section 5.7).  Lacking the weblint-victims corpus, this package
generates an equivalent deterministically:

- :mod:`repro.workload.generator` -- seedable generator of *valid*
  HTML 4.0 pages and interlinked sites (lint-clean by construction, a
  property the test-suite enforces);
- :mod:`repro.workload.seeder` -- injects the mistake classes weblint
  targets into a valid page, recording the expected message for each,
  giving labelled ground truth for detection-rate experiments;
- :mod:`repro.workload.corpus` -- convenience builders for whole corpora
  and sites.
"""

from repro.workload.corpus import (
    build_pathological_corpus,
    build_seeded_corpus,
    build_valid_corpus,
)
from repro.workload.generator import GeneratorConfig, PageGenerator
from repro.workload.seeder import ErrorSeeder, Mutation, SeededPage

__all__ = [
    "PageGenerator",
    "GeneratorConfig",
    "ErrorSeeder",
    "Mutation",
    "SeededPage",
    "build_valid_corpus",
    "build_seeded_corpus",
    "build_pathological_corpus",
]
