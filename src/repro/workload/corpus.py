"""Corpus builders: many pages at once, reproducibly."""

from __future__ import annotations

from typing import Optional

from repro.workload.generator import GeneratorConfig, PageGenerator
from repro.workload.seeder import ErrorSeeder, SeededPage


def build_valid_corpus(
    n_pages: int,
    seed: int = 0,
    config: Optional[GeneratorConfig] = None,
) -> list[str]:
    """``n_pages`` valid pages; page ``i`` is generated with seed+i so any
    single page can be regenerated in isolation."""
    return [
        PageGenerator(seed=seed + index, config=config).page()
        for index in range(n_pages)
    ]


def build_seeded_corpus(
    n_pages: int,
    errors_per_page: int = 2,
    seed: int = 0,
    config: Optional[GeneratorConfig] = None,
    mutation_names: Optional[tuple[str, ...]] = None,
) -> list[SeededPage]:
    """``n_pages`` broken pages with recorded ground truth."""
    corpus: list[SeededPage] = []
    for index in range(n_pages):
        page = PageGenerator(seed=seed + index, config=config).page()
        seeder = ErrorSeeder(seed=seed + index)
        corpus.append(
            seeder.seed_errors(page, count=errors_per_page, names=mutation_names)
        )
    return corpus


def build_pathological_corpus(
    n_pages: int,
    seed: int = 0,
    table_depth: int = 12,
    unclosed_tags: int = 8,
) -> list[str]:
    """``n_pages`` worst-case pages (deep tables, unclosed tags).

    The profiling corpus: seed-stable like :func:`build_valid_corpus`,
    but built from :meth:`PageGenerator.pathological_page` so slow-rule
    detection has something to chew on.
    """
    return [
        PageGenerator(seed=seed + index).pathological_page(
            table_depth=table_depth, unclosed_tags=unclosed_tags
        )
        for index in range(n_pages)
    ]


def build_site(
    n_pages: int,
    seed: int = 0,
    config: Optional[GeneratorConfig] = None,
) -> dict[str, str]:
    """A valid interlinked site as a path -> source mapping."""
    return PageGenerator(seed=seed, config=config).site(n_pages)
