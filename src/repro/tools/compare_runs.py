"""Compare two instrumented runs and flag regressions.

The cross-run half of the telemetry pipeline (docs/observability.md):
:mod:`repro.obs.ledger` appends one summary record per run to
``runs.jsonl``; this tool diffs two such records -- or two BENCH_*.json
artefacts -- and exits non-zero when throughput dropped, latency rose
or the error rate climbed by more than the allowed fraction::

    python -m repro.tools.compare_runs state/runs.jsonl
    python -m repro.tools.compare_runs BENCH_telemetry.json new.json
    python -m repro.tools.compare_runs old.json new.json --max-regression 0.10

With a single ``runs.jsonl`` argument the last two records are
compared (the previous run is the baseline).  Keys are classified by
name: throughput-like values (``*_per_s``, ``speedup``) regress when
they *fall*; latency- and error-like values (``*_ms``, ``*wall_s``,
``errors``, ``error_rate``) regress when they *rise*; everything else
is reported as context but never fails the comparison.

``--portable-only`` restricts the comparison to machine-independent
keys (document/page/byte/hit counts), which is what CI uses against
committed baselines: wall-clock and throughput depend on the runner's
hardware, but the work a run *did* must not silently change.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

#: Key suffixes/names where a *drop* is a regression.
HIGHER_IS_BETTER = ("_per_s", "speedup", "bandwidth_bytes_per_s", "kb_per_s")

#: Key suffixes/names where a *rise* is a regression.
LOWER_IS_BETTER = ("_ms", "wall_s", "error_rate")
LOWER_IS_BETTER_EXACT = ("errors", "retries", "http_errors", "transport_failures")

#: Machine-independent keys (the only ones ``--portable-only``
#: compares) and how each regresses.  Work counts must match exactly;
#: transfer volume may only fall (caching improved) and cache-hit
#: counts may only rise -- the opposite direction means the
#: incremental machinery silently broke.
PORTABLE_DIRECTIONS = {
    "documents": "exact",
    "diagnostics": "exact",
    "docs": "exact",
    "pages": "exact",
    "cold_bytes": "exact",
    "bytes_fetched": "lower",
    "warm_bytes": "lower",
    "incremental_bytes": "lower",
    "errors": "lower",
    "http_errors": "lower",
    "transport_failures": "lower",
    "cache_lint_hits": "higher",
    "revalidated": "higher",
    "warm_lint_hits": "higher",
    "warm_revalidated": "higher",
    # A resumed crawl may only restore more pages from the journal,
    # never refetch completed ones: against a zero-refetch baseline any
    # rise in refetched_pages fails the interrupted-crawl CI gate.
    "resumed_pages": "higher",
    "refetched_pages": "lower",
    # Streaming-report memory: the high-water gauge is tracemalloc's
    # traced Python heap, deterministic enough to gate across machines;
    # a >10% rise against the committed BENCH_stream baseline means the
    # bounded rollup grew an unbounded appetite.
    "report_high_water_kb": "lower",
    "stream_high_water_ratio_10x": "lower",
    # Daemon sustained-QPS gate: the driver sends a fixed request mix,
    # so the served count must match exactly and nothing in that mix
    # may start bouncing off the admission gate.
    "requests": "exact",
    "rejected": "lower",
    # Tokenizer hot-path gate (BENCH_tokenizer.json): the E10 corpus is
    # seeded, so the token and byte counts the batched scanner produces
    # are machine-independent -- any drift means the scanner changed
    # what it emits, not just how fast.
    "tokens": "exact",
    "corpus_bytes": "exact",
}


def classify(key: str) -> Optional[str]:
    """``"higher"``, ``"lower"`` or ``None`` (informational only)."""
    if key in LOWER_IS_BETTER_EXACT:
        return "lower"
    for suffix in HIGHER_IS_BETTER:
        if key == suffix or key.endswith(suffix):
            return "higher"
    for suffix in LOWER_IS_BETTER:
        if key == suffix or key.endswith(suffix):
            return "lower"
    return None


def load_records(path: Path) -> list[dict[str, object]]:
    """Every run-like record in ``path``, oldest first.

    Accepts a ``runs.jsonl`` ledger (one JSON object per line), a single
    JSON object, or a BENCH_*.json artefact (whose ``results`` section
    is flattened into one record so bench keys compare like run keys).
    """
    text = path.read_text(encoding="utf-8")
    try:
        payload = json.loads(text)
    except ValueError:
        payload = None
    if isinstance(payload, dict):
        results = payload.get("results")
        if isinstance(results, dict):
            flat: dict[str, object] = {}
            for bench, values in sorted(results.items()):
                if isinstance(values, dict):
                    flat.update(
                        {f"{bench}.{key}": value for key, value in values.items()}
                    )
            return [flat] if flat else [payload]
        return [payload]
    if isinstance(payload, list):
        return [record for record in payload if isinstance(record, dict)]
    records = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict):
            records.append(record)
    return records


def _base_key(key: str) -> str:
    """The key without any ``bench.`` prefix (``e18.pages`` -> ``pages``)."""
    return key.rsplit(".", 1)[-1]


def compare(
    baseline: dict[str, object],
    current: dict[str, object],
    max_regression: float = 0.10,
    portable_only: bool = False,
) -> tuple[list[str], list[str]]:
    """``(report_lines, regressions)`` for two run records."""
    lines: list[str] = []
    regressions: list[str] = []
    skipped = ("run", "started_unix", "tool", "generated_unix")
    for key in sorted(set(baseline) | set(current)):
        base = _base_key(key)
        if base in skipped:
            continue
        old, new = baseline.get(key), current.get(key)
        if not isinstance(old, (int, float)) or not isinstance(new, (int, float)):
            continue
        if isinstance(old, bool) or isinstance(new, bool):
            continue
        if portable_only:
            direction = PORTABLE_DIRECTIONS.get(base)
            if direction is None:
                continue
        else:
            direction = classify(base)
        delta = new - old
        ratio = (delta / old) if old else (1.0 if delta else 0.0)
        marker = ""
        if direction == "exact" and delta:
            marker = " REGRESSION (changed)"
            regressions.append(key)
        elif direction == "higher" and old and -ratio > max_regression:
            marker = f" REGRESSION ({-ratio * 100:.1f}% slower)"
            regressions.append(key)
        elif direction == "lower" and (
            (old and ratio > max_regression) or (not old and delta > 0)
        ):
            marker = f" REGRESSION (+{delta:g})"
            regressions.append(key)
        arrow = {"higher": "^", "lower": "v"}.get(direction or "", "-")
        lines.append(
            f"  {key}: {old:g} -> {new:g} "
            f"({'+' if ratio >= 0 else ''}{ratio * 100:.1f}%) [{arrow}]{marker}"
        )
    return lines, regressions


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="compare_runs",
        description="diff two instrumented runs and flag regressions",
    )
    parser.add_argument(
        "baseline",
        help="runs.jsonl (compare its last two records) or a baseline "
        "run/BENCH json file",
    )
    parser.add_argument(
        "current",
        nargs="?",
        default=None,
        help="current run/BENCH json file (omit when BASELINE is a "
        "runs.jsonl ledger)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.10,
        metavar="FRACTION",
        help="tolerated relative regression before failing "
        "(default %(default)s = 10%%)",
    )
    parser.add_argument(
        "--portable-only",
        action="store_true",
        help="compare only machine-independent keys (counts, bytes, "
        "cache hits) -- what CI checks against committed baselines",
    )
    args = parser.parse_args(argv)
    out = sys.stdout

    try:
        if args.current is None:
            records = load_records(Path(args.baseline))
            if len(records) < 2:
                out.write(
                    f"compare_runs: need two runs in {args.baseline}, "
                    f"found {len(records)}\n"
                )
                return 2
            baseline, current = records[-2], records[-1]
        else:
            old_records = load_records(Path(args.baseline))
            new_records = load_records(Path(args.current))
            if not old_records or not new_records:
                out.write("compare_runs: no comparable records found\n")
                return 2
            baseline, current = old_records[-1], new_records[-1]
    except OSError as exc:
        out.write(f"compare_runs: {exc}\n")
        return 2

    label_old = baseline.get("tool") or args.baseline
    label_new = current.get("tool") or (args.current or args.baseline)
    out.write(
        f"compare_runs: {label_old} run {baseline.get('run', '-')} -> "
        f"{label_new} run {current.get('run', '-')} "
        f"(max regression {args.max_regression * 100:.0f}%"
        f"{', portable keys only' if args.portable_only else ''})\n"
    )
    lines, regressions = compare(
        baseline, current,
        max_regression=args.max_regression,
        portable_only=args.portable_only,
    )
    for line in lines:
        out.write(line + "\n")
    if regressions:
        out.write(
            f"compare_runs: {len(regressions)} regression(s): "
            f"{', '.join(regressions)}\n"
        )
        return 1
    out.write("compare_runs: no regressions\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
