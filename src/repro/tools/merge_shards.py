"""Fold a sharded audit's report directories into one canonical report.

A sharded poacher run (``poacher --shards N --shard K --state-dir DIR``)
leaves ``DIR/report/shard-K-of-N/`` directories, each holding that
partition's ``rollup.json``, ``pages.jsonl``, ``report.txt`` and
``metrics.json``.  This tool merges the complete shard set back into
one report directory whose bytes are identical to an unsharded
streaming run's::

    python -m repro.tools.merge_shards state/ [-o OUT]

- rollups fold with :meth:`repro.site.rollup.SiteRollup.merge` (exact:
  pages partition across shards, and each shard's bounded worst-pages
  selection preserves every global top-N candidate);
- spill lines concatenate and sort by ``(page, phase)`` -- the
  canonical order an unsharded spill also sorts into;
- metric snapshots fold through a fresh registry's ``merge_snapshot``
  (counters add, gauges keep the max, histograms merge buckets).

An unsharded streaming run (``--shards 1``) writes ``DIR/report/``
directly; pointing merge_shards at it canonicalises that single
"shard" through the same code path, which is how CI diffs a 2-shard
merged report against the unsharded baseline byte for byte.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.site.report import render_text_report
from repro.site.rollup import PAGES_FILENAME, ROLLUP_FILENAME, SiteRollup

_SHARD_DIR = re.compile(r"^shard-(\d+)-of-(\d+)$")


def find_shards(base: Path) -> list[Path]:
    """The complete shard set under ``base``, in shard order.

    ``base`` may be the state dir (its ``report/`` subdirectory is
    used), the report dir itself, or a single shard/report directory
    holding a ``rollup.json`` -- that last case is treated as a
    one-shard audit.  Raises ``ValueError`` on an incomplete or
    inconsistent shard set.
    """
    if (base / "report").is_dir():
        base = base / "report"
    found: dict[int, Path] = {}
    totals: set[int] = set()
    for path in sorted(base.iterdir()) if base.is_dir() else []:
        match = _SHARD_DIR.match(path.name)
        if match is None or not (path / ROLLUP_FILENAME).is_file():
            continue
        shard, total = int(match.group(1)), int(match.group(2))
        found[shard] = path
        totals.add(total)
    if not found:
        if (base / ROLLUP_FILENAME).is_file():
            return [base]
        raise ValueError(f"no shard rollups under {base}")
    if len(totals) != 1:
        raise ValueError(
            f"mixed shard counts under {base}: {sorted(totals)}"
        )
    total = totals.pop()
    missing = sorted(set(range(total)) - set(found))
    if missing:
        raise ValueError(
            f"incomplete shard set under {base}: missing shard(s) "
            f"{', '.join(str(k) for k in missing)} of {total}"
        )
    return [found[shard] for shard in sorted(found)]


def _spill_sort_key(line: str) -> tuple[str, str]:
    record = json.loads(line)
    return (str(record.get("page", "")), str(record.get("phase", "")))


def merge_report_dirs(shards: Sequence[Path], out: Path) -> SiteRollup:
    """Merge shard report directories into ``out``; returns the rollup."""
    merged: Optional[SiteRollup] = None
    spill_lines: list[str] = []
    metrics = MetricsRegistry()
    have_metrics = False
    for shard in shards:
        rollup = SiteRollup.load(shard / ROLLUP_FILENAME)
        merged = rollup if merged is None else merged.merge(rollup)
        spill = shard / PAGES_FILENAME
        if spill.is_file():
            spill_lines.extend(
                line for line in
                spill.read_text(encoding="utf-8").splitlines() if line
            )
        snapshot_path = shard / "metrics.json"
        if snapshot_path.is_file():
            metrics.merge_snapshot(
                json.loads(snapshot_path.read_text(encoding="utf-8"))
            )
            have_metrics = True
    assert merged is not None  # find_shards never returns an empty set
    spill_lines.sort(key=_spill_sort_key)

    out.mkdir(parents=True, exist_ok=True)
    merged.save(out / ROLLUP_FILENAME)
    (out / "report.txt").write_text(
        render_text_report(merged) + "\n", encoding="utf-8"
    )
    (out / PAGES_FILENAME).write_text(
        "".join(line + "\n" for line in spill_lines), encoding="utf-8"
    )
    if have_metrics:
        (out / "metrics.json").write_text(
            json.dumps(metrics.snapshot(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return merged


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="merge_shards",
        description="merge sharded audit report directories into one "
        "canonical report",
    )
    parser.add_argument(
        "state_dir",
        help="a sharded run's --state-dir (or its report directory)",
    )
    parser.add_argument(
        "-o", "--out",
        default=None,
        metavar="DIR",
        help="where to write the merged report "
        "(default: REPORT_DIR/merged)",
    )
    args = parser.parse_args(argv)
    base = Path(args.state_dir)
    try:
        shards = find_shards(base)
    except (OSError, ValueError) as exc:
        sys.stderr.write(f"merge_shards: {exc}\n")
        return 2
    report_base = base / "report" if (base / "report").is_dir() else base
    out = Path(args.out) if args.out else report_base / "merged"
    try:
        merged = merge_report_dirs(shards, out)
    except (OSError, ValueError) as exc:
        sys.stderr.write(f"merge_shards: {exc}\n")
        return 2
    sys.stdout.write(
        f"merge_shards: merged {len(shards)} shard(s) -> {out} "
        f"({merged.pages} page(s), {merged.total_messages} message(s))\n"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
