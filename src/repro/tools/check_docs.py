"""Validate intra-repo documentation links -- the docs' lint pass.

``python -m repro.tools.check_docs`` scans every tracked markdown file
(the repo root's ``*.md`` plus ``docs/``) for markdown links and checks
that each *relative* target resolves to a real file, so a renamed or
deleted document breaks CI instead of readers.  External schemes
(``http:``, ``https:``, ``mailto:``) are out of scope -- this container
has no network, and the repo's own structure is what the docs pass must
keep honest.

Weblint lints the web's documents; this keeps weblint's own documents
lintable by the same standard.  Exit status: 0 when every link
resolves, 1 otherwise (one ``file:line: target`` report per break).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable

#: Inline markdown links: ``[text](target)``.  Images share the syntax.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Schemes that point outside the repository (not checked).
_EXTERNAL = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def markdown_files(root: Path) -> list[Path]:
    """The markdown set the repo's docs pass owns (sorted, stable)."""
    files = sorted(root.glob("*.md")) + sorted((root / "docs").glob("*.md"))
    return [path for path in files if path.is_file()]


def iter_links(text: str) -> Iterable[tuple[int, str]]:
    """Yield ``(line_number, target)`` for every markdown link."""
    for number, line in enumerate(text.splitlines(), start=1):
        for match in _LINK.finditer(line):
            yield number, match.group(1)


def check_file(path: Path, root: Path) -> list[str]:
    """The broken-link reports for one markdown file."""
    problems: list[str] = []
    for line, target in iter_links(path.read_text(encoding="utf-8")):
        if _EXTERNAL.match(target):
            continue
        # Strip any fragment; heading anchors are not validated (they
        # are renderer-specific), only the file half of the target is.
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue  # same-document anchor
        resolved = (path.parent / file_part).resolve()
        try:
            resolved.relative_to(root.resolve())
        except ValueError:
            problems.append(
                f"{path.relative_to(root)}:{line}: link escapes the "
                f"repository: {target}"
            )
            continue
        if not resolved.exists():
            problems.append(
                f"{path.relative_to(root)}:{line}: broken link: {target}"
            )
    return problems


def check_tree(root: Path) -> list[str]:
    problems: list[str] = []
    for path in markdown_files(root):
        problems.extend(check_file(path, root))
    return problems


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # src/repro/tools/check_docs.py -> repo root is parents[3]
    root = Path(argv[0]) if argv else Path(__file__).resolve().parents[3]
    problems = check_tree(root)
    for problem in problems:
        sys.stderr.write(problem + "\n")
    checked = len(markdown_files(root))
    sys.stdout.write(
        f"check_docs: {checked} file(s), {len(problems)} broken link(s)\n"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
