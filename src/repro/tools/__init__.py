"""Maintainer tools: documentation generation and catalog inspection."""
