"""The ``weblint`` command -- the paper's script front-end.

Section 5.3: "The weblint script is now a wrapper around the modules ...
with documentation for the user who doesn't want to know about the
existence of the modules."  Section 4.1 requires that it be easy to run
"from the command-line, a batch script (for example under crontab on
Unix), a web page, a robot, or an application" -- hence the stable exit
codes, stdin support and machine-readable output formats.

Configuration precedence (section 4.4): site configuration file, then the
user's ``.weblintrc``, then command-line switches.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.config import load_configuration
from repro.config.options import Options, UnknownMessageError
from repro.config.presets import apply_preset, available_presets
from repro.config.rcfile import ConfigError
from repro.core import constants
from repro.core.messages import CATALOG
from repro.core.reporter import available_reporters, get_reporter
from repro.core.service import (
    LintRequest,
    LintService,
    PathSource,
    StdinSource,
)
from repro.html.spec import available_specs
from repro.obs import (
    TelemetrySink,
    TimeSeries,
    record_run,
    use_event_log,
    use_profiler,
    use_registry,
    use_timeseries,
    use_tracer,
)


def _default_jobs() -> int:
    """``--jobs`` default: the WEBLINT_JOBS environment variable, else 1."""
    try:
        return int(os.environ.get("WEBLINT_JOBS", "1"))
    except ValueError:
        return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="weblint",
        description="pick fluff off web pages (HTML syntax and style checker)",
        epilog="exit status: 0 clean, 1 problems found, 2 usage error",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="FILE",
        help="HTML files to check ('-' for stdin); directories with -R",
    )
    parser.add_argument(
        "-s", "--short",
        action="store_true",
        help="short output format: 'line N: ...' instead of 'file(N): ...'",
    )
    parser.add_argument(
        "-v", "--verbose",
        action="store_true",
        help="verbose output: message ids, categories and explanations",
    )
    parser.add_argument(
        "-f", "--format",
        choices=available_reporters(),
        help="output format (overrides -s/-v)",
    )
    parser.add_argument(
        "-e", "--enable",
        action="append",
        default=[],
        metavar="ID",
        help="enable a message id or category (repeatable, comma-separated)",
    )
    parser.add_argument(
        "-d", "--disable",
        action="append",
        default=[],
        metavar="ID",
        help="disable a message id or category (repeatable, comma-separated)",
    )
    parser.add_argument(
        "--enable-rule",
        action="append",
        default=[],
        metavar="RULE",
        help="enable a rule by registry name (repeatable, comma-separated)",
    )
    parser.add_argument(
        "--disable-rule",
        action="append",
        default=[],
        metavar="RULE",
        help="disable a rule by registry name (repeatable, comma-separated)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rule names and exit",
    )
    parser.add_argument(
        "-x", "--extension",
        metavar="SPEC",
        help=f"HTML version / vendor extension ({', '.join(available_specs())})",
    )
    parser.add_argument(
        "--preset",
        choices=available_presets(),
        help="named configuration preset",
    )
    parser.add_argument(
        "--pedantic",
        action="store_true",
        help="enable every message (shorthand for --preset pedantic)",
    )
    parser.add_argument(
        "-R", "--recurse",
        action="store_true",
        help="recurse into directories: whole-site check with index-file, "
        "orphan-page and local link analyses",
    )
    parser.add_argument(
        "-j", "--jobs",
        type=int,
        default=_default_jobs(),
        metavar="N",
        help="lint documents with N worker processes (0 = one per CPU; "
        "default from WEBLINT_JOBS, else 1)",
    )
    parser.add_argument(
        "--daemon",
        metavar="ADDR",
        default=os.environ.get("WEBLINT_DAEMON") or None,
        help="lint through a running weblint-daemon at ADDR (HOST:PORT "
        "or URL) instead of in-process; documents are read locally and "
        "checked by the daemon's pre-warmed workers "
        "(default from WEBLINT_DAEMON)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=os.environ.get("WEBLINT_CACHE_DIR") or None,
        help="persist lint results under DIR and reuse them when neither "
        "the document nor the configuration changed "
        "(default from WEBLINT_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore the result cache (and WEBLINT_CACHE_DIR) for this run",
    )
    parser.add_argument(
        "--cache-clear",
        action="store_true",
        help="empty the result cache before checking; with no FILE "
        "arguments, clear it and exit",
    )
    parser.add_argument(
        "--rcfile",
        metavar="FILE",
        help="alternate user configuration file (default ~/.weblintrc)",
    )
    parser.add_argument(
        "--site-config",
        metavar="FILE",
        help="site-wide configuration file (lowest precedence)",
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="ignore all configuration files",
    )
    parser.add_argument(
        "--site-report",
        metavar="FILE",
        help="with -R: also write a Spot-style HTML site report to FILE "
        "('-' prints the text summary instead)",
    )
    parser.add_argument(
        "--locale",
        metavar="LOCALE",
        help="render messages in another language (en, fr, de)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print a metrics summary (files, diagnostics, wall time) "
        "to stderr after the run",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="record hierarchical spans for the run and write them as "
        "JSON lines to FILE ('-' for stderr)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="time every rule and print the slowest ones (and the most "
        "frequent message ids) to stderr",
    )
    parser.add_argument(
        "--telemetry-dir",
        metavar="DIR",
        default=os.environ.get("WEBLINT_TELEMETRY_DIR") or None,
        help="continuous telemetry: stream events to DIR/events.jsonl, "
        "write metric snapshots to DIR/metrics.jsonl and DIR/metrics.prom, "
        "and append a run summary to DIR/runs.jsonl "
        "(default from WEBLINT_TELEMETRY_DIR)",
    )
    parser.add_argument(
        "--list-messages",
        action="store_true",
        help="list all message identifiers and exit",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"weblint (repro) {constants.WEBLINT_VERSION}",
    )
    return parser


def _list_messages(stream) -> None:
    stream.write(f"{'identifier':28} {'category':8} {'default':7} description\n")
    for message in CATALOG.values():
        stream.write(
            f"{message.id:28} {message.category.value:8} "
            f"{'on' if message.enabled_default else 'off':7} "
            f"{message.description}\n"
        )


def _list_rules(registry, stream) -> None:
    stream.write(f"{'rule':16} {'default':8} description\n")
    for registration in registry.registrations():
        stream.write(
            f"{registration.name:16} "
            f"{'on' if registration.enabled else 'off':8} "
            f"{registration.description}\n"
        )


def _build_registry(args: argparse.Namespace):
    """The rule registry with --enable-rule/--disable-rule applied."""
    from repro.core.registry import RegistryError, default_registry

    registry = default_registry()
    for chunk in args.disable_rule:
        for name in (part for part in chunk.split(",") if part):
            try:
                registry.disable(name)
            except RegistryError as exc:
                raise UnknownMessageError(str(exc)) from exc
    for chunk in args.enable_rule:
        for name in (part for part in chunk.split(",") if part):
            try:
                registry.enable(name)
            except RegistryError as exc:
                raise UnknownMessageError(str(exc)) from exc
    return registry


def _build_options(args: argparse.Namespace) -> Options:
    if args.no_config:
        options = Options.with_defaults()
    else:
        options = load_configuration(
            site_file=args.site_config, user_file=args.rcfile
        )
    # Command-line switches override both configuration files.
    if args.preset:
        apply_preset(options, args.preset)
    if args.pedantic:
        apply_preset(options, "pedantic")
    for chunk in args.enable:
        options.enable(*[part for part in chunk.split(",") if part])
    for chunk in args.disable:
        options.disable(*[part for part in chunk.split(",") if part])
    if args.extension:
        options.spec_name = args.extension
    if args.short:
        options.short_format = True
    if args.verbose:
        options.verbose = True
    if args.recurse:
        options.recurse = True
    return options


def _pick_reporter(args: argparse.Namespace):
    if args.locale and args.locale.lower() not in ("en", "c"):
        from repro.core.i18n import LocalisedReporter

        return LocalisedReporter(args.locale)
    if args.format:
        return get_reporter(args.format)
    if args.verbose:
        return get_reporter("verbose")
    if args.short:
        return get_reporter("short")
    return get_reporter("lint")


def main(argv: Optional[Sequence[str]] = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # Output was piped into something like head; not our problem.
        return constants.EXIT_CLEAN


def _main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    out, err = sys.stdout, sys.stderr

    if args.list_messages:
        _list_messages(out)
        return constants.EXIT_CLEAN

    try:
        registry = _build_registry(args)
        options = _build_options(args)
    except (ConfigError, UnknownMessageError, ValueError) as exc:
        err.write(f"weblint: {exc}\n")
        return constants.EXIT_USAGE

    if args.list_rules:
        _list_rules(registry, out)
        return constants.EXIT_CLEAN

    cache = None
    if not args.no_cache and (args.cache_dir or args.cache_clear):
        if args.cache_dir is None:
            err.write(
                "weblint: --cache-clear needs --cache-dir "
                "(or WEBLINT_CACHE_DIR)\n"
            )
            return constants.EXIT_USAGE
        from repro.core.cache import ResultCache

        cache = ResultCache(args.cache_dir)
        if args.cache_clear:
            removed = cache.clear()
            err.write(f"weblint: cache cleared ({removed} entries)\n")
            if not args.paths:
                return constants.EXIT_CLEAN

    try:
        reporter = _pick_reporter(args)
        service = (
            None
            if args.daemon
            else LintService(options=options, registry=registry, cache=cache)
        )
    except KeyError as exc:
        err.write(f"weblint: {exc}\n")
        return constants.EXIT_USAGE

    # Every invocation records into its own registry, so --stats (and the
    # stats reporter) report this run, not the process's whole history.
    with use_registry() as registry, contextlib.ExitStack() as stack:
        started = time.perf_counter()
        started_unix = time.time()
        tracer = stack.enter_context(use_tracer()) if args.trace else None
        profiler = stack.enter_context(use_profiler()) if args.profile else None
        sink = None
        if args.telemetry_dir:
            sink = TelemetrySink(args.telemetry_dir)
            stack.enter_context(use_timeseries(TimeSeries()))
            stack.enter_context(use_event_log(sink.open_event_log()))

        if args.daemon:
            code = _check_remote(args, reporter, out, err)
        else:
            code = _check_paths(args, options, service, reporter, out, err)
        wall_seconds = time.perf_counter() - started

        if tracer is not None and not _write_trace(tracer, args.trace, err):
            code = max(code, constants.EXIT_USAGE)
        if profiler is not None:
            err.write(profiler.render_report() + "\n")
        if args.stats:
            _print_stats(registry, reporter, wall_seconds, err)
        if sink is not None:
            record_run(
                args.telemetry_dir, registry.snapshot(), "weblint",
                wall_seconds, clock=lambda: started_unix,
            )
            sink.close(registry)
    return code


def _remote_options(args) -> dict[str, object]:
    """The protocol options dict a ``--daemon`` run forwards.

    Only command-line switches travel; the daemon's own configuration
    (and rcfiles on *its* host) provide the base.
    """
    payload: dict[str, object] = {}
    if args.extension:
        payload["spec"] = args.extension
    if args.pedantic:
        payload["pedantic"] = True
    if args.preset:
        payload["preset"] = args.preset
    enable = [part for chunk in args.enable for part in chunk.split(",") if part]
    disable = [
        part for chunk in args.disable for part in chunk.split(",") if part
    ]
    if enable:
        payload["enable"] = enable
    if disable:
        payload["disable"] = disable
    return payload


def _check_remote(args, reporter, out, err) -> int:
    """The ``--daemon ADDR`` batch: documents read here, linted there.

    Same reporter and exit-code contract as the in-process path; the
    only difference is where the engine runs.
    """
    from repro.core.service import SourceError
    from repro.daemon.client import DaemonClientError, remote_check

    paths = args.paths or ["-"]
    documents: list[tuple[str, str]] = []
    failures: list[str] = []
    for path_text in paths:
        if Path(path_text).is_dir():
            err.write(
                f"weblint: {path_text} is a directory "
                f"(-R is not supported with --daemon)\n"
            )
            return constants.EXIT_USAGE
        source = StdinSource() if path_text == "-" else PathSource(path_text)
        try:
            documents.append((source.name, source.text()))
        except SourceError as exc:
            failures.append(str(exc))

    results = []
    if documents:
        try:
            results = remote_check(args.daemon, documents, _remote_options(args))
        except DaemonClientError as exc:
            err.write(f"weblint: {exc}\n")
            return constants.EXIT_USAGE

    total = 0
    if getattr(reporter, "streams_incrementally", False):
        reporter.begin(out)
        for result in results:
            reporter.emit(result)
            if result.error is not None:
                failures.append(result.error)
            else:
                total += len(result.diagnostics)
        reporter.end()
    else:
        batched = [] if reporter.batch_output else None
        for result in results:
            if result.error is not None:
                failures.append(result.error)
                continue
            total += len(result.diagnostics)
            if batched is None:
                reporter.report(result.diagnostics, stream=out)
            else:
                batched.extend(result.diagnostics)
        if batched is not None:
            reporter.report(batched, stream=out)

    for failure in failures:
        err.write(f"weblint: {failure}\n")
    if failures:
        return constants.EXIT_USAGE
    return constants.EXIT_WARNINGS if total else constants.EXIT_CLEAN


def _check_paths(args, options, service: LintService, reporter, out, err) -> int:
    """The path batch: returns the process exit code.

    All plain documents (files and stdin) go through one
    ``LintService.check_many`` pass -- parallel when ``--jobs`` asks for
    it -- and results come back in input order.  Directories run through
    the site checker, which shares the same service and job count.
    Unreadable documents become structured errors: the whole batch is
    still checked and reported, the errors land on stderr, and the run
    exits with the usage status (2), matching the historical behaviour
    for a missing file.
    """
    paths = args.paths or ["-"]

    # Classify every path first (usage errors beat lint output), keeping
    # input order so reports are deterministic regardless of job count.
    items: list[tuple[str, object]] = []
    for path_text in paths:
        if path_text == "-":
            items.append(("lint", LintRequest(StdinSource())))
        elif Path(path_text).is_dir():
            if not options.recurse:
                err.write(f"weblint: {path_text} is a directory (use -R)\n")
                return constants.EXIT_USAGE
            items.append(("site", path_text))
        else:
            items.append(("lint", LintRequest(PathSource(path_text))))

    # One batch for every plain document in the run.
    requests = [item for kind, item in items if kind == "lint"]

    # Streaming reporters (jsonl) emit each document the moment its
    # result resolves -- completion order, bounded memory.  Only the
    # pure-document case streams; site checks fall back to the buffered
    # loop so their framing stays intact.
    if getattr(reporter, "streams_incrementally", False) and all(
        kind == "lint" for kind, _ in items
    ):
        reporter.begin(out)
        total = 0
        failures = []
        for result in service.iter_check(requests, jobs=args.jobs):
            reporter.emit(result)
            if result.error is not None:
                failures.append(result.error)
                continue
            total += len(result.diagnostics)
        reporter.end()
        for failure in failures:
            err.write(f"weblint: {failure}\n")
        if failures:
            return constants.EXIT_USAGE
        return constants.EXIT_WARNINGS if total else constants.EXIT_CLEAN

    checked = iter(service.check_many(requests, jobs=args.jobs))

    total = 0
    failures: list[str] = []
    # Batch reporters (json, stats) emit one document per run: collect
    # everything and report once, so multi-path output stays parseable.
    batched: Optional[list] = [] if reporter.batch_output else None
    for kind, item in items:
        if kind == "lint":
            result = next(checked)
            if result.error is not None:
                failures.append(result.error)
                continue
            diagnostics = result.diagnostics
        else:
            from repro.site.sitecheck import SiteChecker

            report = SiteChecker(service=service, jobs=args.jobs).check_directory(
                item
            )
            failures.extend(report.page_errors)
            diagnostics = report.all_diagnostics()
            if args.site_report:
                from repro.site.report import (
                    render_html_report,
                    render_text_report,
                )

                if args.site_report == "-":
                    out.write(render_text_report(report) + "\n")
                else:
                    Path(args.site_report).write_text(render_html_report(report))
        total += len(diagnostics)
        if batched is None:
            reporter.report(diagnostics, stream=out)
        else:
            batched.extend(diagnostics)
    if batched is not None:
        reporter.report(batched, stream=out)

    for failure in failures:
        err.write(f"weblint: {failure}\n")
    if failures:
        return constants.EXIT_USAGE
    return constants.EXIT_WARNINGS if total else constants.EXIT_CLEAN


#: Counters that always appear in the --stats summary, even at zero.
_STATS_DEFAULTS = (
    "lint.files",
    "lint.diagnostics.error",
    "lint.diagnostics.warning",
)


def _print_stats(registry, reporter, wall_seconds: float, stream) -> None:
    stream.write("weblint stats:\n")
    counts = reporter.count
    by_category = ", ".join(
        f"{value} {name}" for name, value in sorted(counts.items()) if name != "total"
    )
    stream.write(
        f"  diagnostics: {counts.get('total', 0)}"
        + (f" ({by_category})" if by_category else "")
        + "\n"
    )
    for line in registry.summary_lines(defaults=_STATS_DEFAULTS):
        stream.write(f"  {line}\n")
    stream.write(f"  total wall time: {wall_seconds * 1000.0:.1f} ms\n")


def _write_trace(tracer, destination: str, err) -> bool:
    """Write the recorded spans; ``-`` means a pretty tree on stderr.

    Returns False when the requested file could not be written, so the
    caller can fail the run instead of silently dropping the artefact.
    """
    if destination == "-":
        tree = tracer.format_tree()
        if tree:
            err.write(tree + "\n")
        return True
    try:
        with open(destination, "w", encoding="utf-8") as handle:
            tracer.write_jsonlines(handle)
    except OSError as exc:
        err.write(f"weblint: cannot write trace to {destination}: {exc}\n")
        return False
    return True


if __name__ == "__main__":  # pragma: no cover
    try:
        code = main()
    except BrokenPipeError:
        # Streamed output piped into head/jq and the reader went away:
        # die quietly with the conventional SIGPIPE status, and point
        # stdout at devnull so the interpreter's exit-time flush does
        # not raise the same error again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        code = 128 + 13
    raise SystemExit(code)
