"""repro -- a Python reproduction of weblint (Bowers, USENIX 1998).

Weblint is a lint-style checker for HTML: not a strict SGML validator,
but a stack machine with an ad-hoc parser that gives helpful comments for
humans.  The paper's three-line embedding example translates directly::

    from repro import Weblint

    weblint = Weblint()
    for diagnostic in weblint.check_file("test.html"):
        print(diagnostic)

Sub-packages:

==================  ======================================================
``repro.core``      message catalog, stack-machine engine, rules, reporters
``repro.html``      tokenizer and per-version HTML language tables
``repro.config``    site/user/CLI configuration (``.weblintrc``)
``repro.www``       in-memory web substrate (the LWP substitution)
``repro.site``      the ``-R`` whole-site checker
``repro.robot``     the *poacher* robot: crawl + lint + link validation
``repro.gateway``   the CGI-style gateway producing HTML reports
``repro.baselines`` htmlchek-, SP- and Tidy-style comparators
``repro.workload``  page/corpus generators for tests and benchmarks
``repro.testing``   the sample-corpus harness (``Weblint::Test``)
==================  ======================================================
"""

from repro.config.options import Options
from repro.core.cache import ResultCache
from repro.core.diagnostics import Diagnostic
from repro.core.linter import Weblint, WeblintError
from repro.core.messages import CATALOG, Category, Message
from repro.core.reporter import (
    HTMLReporter,
    JSONReporter,
    LintReporter,
    Reporter,
    ShortReporter,
    VerboseReporter,
    get_reporter,
)
from repro.core.service import (
    DocumentSource,
    LintRequest,
    LintResult,
    LintService,
    PathSource,
    SourceError,
    StdinSource,
    StringSource,
    URLSource,
)
from repro.html.spec import HTMLSpec, available_specs, get_spec

__version__ = "2.0.0a1"

__all__ = [
    "Weblint",
    "WeblintError",
    "LintService",
    "LintRequest",
    "LintResult",
    "DocumentSource",
    "PathSource",
    "StringSource",
    "StdinSource",
    "URLSource",
    "SourceError",
    "ResultCache",
    "Options",
    "Diagnostic",
    "Category",
    "Message",
    "CATALOG",
    "Reporter",
    "LintReporter",
    "ShortReporter",
    "VerboseReporter",
    "HTMLReporter",
    "JSONReporter",
    "get_reporter",
    "HTMLSpec",
    "get_spec",
    "available_specs",
    "__version__",
]
