"""Named configuration presets.

The paper notes messages that are "esoteric or overly pedantic (I love
'em!)" are disabled by default.  Presets give one-word access to the
obvious bundles:

``default``
    The 42 messages weblint 1.020 enables out of the box.
``pedantic``
    Everything on -- including the esoteric and overly pedantic.
``minimal``
    Errors only: just the things you must fix.
``style-guide``
    Errors + style comments, for editorial review passes.
``accessibility``
    Defaults plus the accessibility-oriented checks (img-alt, table
    summaries, form labels...), in the spirit of Bobby (paper section 3.3).
"""

from __future__ import annotations

from repro.config.options import Options
from repro.core.messages import CATALOG

_PRESETS = ("default", "pedantic", "minimal", "style-guide", "accessibility")


def available_presets() -> tuple[str, ...]:
    return _PRESETS


def apply_preset(options: Options, preset: str) -> None:
    """Reset the enabled set of ``options`` to the named preset."""
    name = preset.strip().lower()
    if name == "default":
        defaults = Options.with_defaults()
        options.enabled = set(defaults.enabled)
    elif name == "pedantic":
        options.enabled = set(CATALOG)
        # Mutually exclusive house styles: pedantic favours lower case,
        # because enabling both would flag every single tag.
        options.enabled.discard("upper-case")
        options.case_style = "lower"
    elif name == "minimal":
        options.only("error")
    elif name == "style-guide":
        options.only("error", "style")
        options.enabled.discard("upper-case")
        options.enabled.discard("lower-case")
    elif name == "accessibility":
        defaults = Options.with_defaults()
        options.enabled = set(defaults.enabled)
        options.enable(
            "img-alt",
            "table-summary",
            "form-label",
            "frame-noframes",
            "mailto-link",
        )
    else:
        raise ValueError(
            f"unknown preset {preset!r}; available: {', '.join(_PRESETS)}"
        )
