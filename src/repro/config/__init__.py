"""Configuration -- the ``Weblint::Config`` module.

Paper section 4.4 defines three configuration layers, in increasing
precedence:

1. a **site configuration file** ("the style guide for a company"),
2. a **user configuration file** (``.weblintrc``),
3. **command-line switches**.

:class:`~repro.config.options.Options` holds the resolved state;
:mod:`repro.config.rcfile` parses the file format;
:func:`load_configuration` composes the three layers.
"""

from repro.config.options import Options
from repro.config.presets import apply_preset, available_presets
from repro.config.rcfile import ConfigError, apply_rcfile, parse_rcfile

__all__ = [
    "Options",
    "ConfigError",
    "parse_rcfile",
    "apply_rcfile",
    "apply_preset",
    "available_presets",
    "load_configuration",
]

import os
from pathlib import Path
from typing import Optional


def load_configuration(
    *,
    site_file: Optional[str] = None,
    user_file: Optional[str] = None,
    defaults: Optional[Options] = None,
) -> Options:
    """Build an :class:`Options` from the configuration file layers.

    ``user_file`` defaults to ``$WEBLINTRC`` or ``~/.weblintrc`` when not
    given; missing files are simply skipped.  Command-line overrides are
    applied afterwards by the caller (:mod:`repro.cli`), preserving the
    paper's precedence order.
    """
    options = defaults if defaults is not None else Options.with_defaults()
    if site_file and Path(site_file).is_file():
        apply_rcfile(options, site_file)
    if user_file is None:
        user_file = os.environ.get("WEBLINTRC") or str(Path.home() / ".weblintrc")
    if user_file and Path(user_file).is_file():
        apply_rcfile(options, user_file)
    return options
