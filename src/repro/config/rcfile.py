"""Configuration file parser (``.weblintrc`` and the site file).

The format follows classic weblint rc files: one directive per line,
``#`` comments, case-insensitive keywords.

::

    # company style guide
    disable physical-font, mailto-link
    enable  upper-case
    enable  style                 # a whole category (weblint 2)
    extension netscape            # check against Navigator markup
    element  COOLTAG              # accept a tool-specific element
    attribute IMG LOWSRC          # accept a tool-specific attribute
    set max-title-length 80
    set here-words click me, start here

Directives:

``enable`` / ``disable``
    Comma- or space-separated message identifiers or category names.
``extension``
    Shorthand for ``set spec netscape`` / ``microsoft``.
``element`` / ``attribute``
    Register custom markup (future-work configurability, section 6.1).
``set``
    Any option understood by :meth:`repro.config.options.Options.set_option`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.config.options import Options, UnknownMessageError


class ConfigError(Exception):
    """A configuration file could not be parsed or applied."""

    def __init__(self, filename: str, line_number: int, reason: str) -> None:
        super().__init__(f"{filename}:{line_number}: {reason}")
        self.filename = filename
        self.line_number = line_number
        self.reason = reason


def _split_list(argument: str) -> list[str]:
    parts: list[str] = []
    for chunk in argument.replace(",", " ").split():
        if chunk:
            parts.append(chunk)
    return parts


def parse_rcfile(text: str, filename: str = "<config>") -> list[tuple[int, str, str]]:
    """Parse rc text into ``(line_number, directive, argument)`` triples."""
    directives: list[tuple[int, str, str]] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split(None, 1)
        directive = parts[0].lower()
        argument = parts[1].strip() if len(parts) > 1 else ""
        if directive not in (
            "enable",
            "disable",
            "extension",
            "element",
            "attribute",
            "set",
        ):
            raise ConfigError(filename, line_number, f"unknown directive {directive!r}")
        if not argument:
            raise ConfigError(
                filename, line_number, f"directive {directive!r} needs an argument"
            )
        directives.append((line_number, directive, argument))
    return directives


def apply_directives(
    options: Options,
    directives: list[tuple[int, str, str]],
    filename: str = "<config>",
) -> None:
    for line_number, directive, argument in directives:
        try:
            if directive == "enable":
                options.enable(*_split_list(argument))
            elif directive == "disable":
                options.disable(*_split_list(argument))
            elif directive == "extension":
                options.spec_name = argument.strip().lower()
            elif directive == "element":
                for name in _split_list(argument):
                    options.add_custom_element(name)
            elif directive == "attribute":
                parts = _split_list(argument)
                if len(parts) < 2:
                    raise ConfigError(
                        filename,
                        line_number,
                        "attribute directive needs: ELEMENT ATTRIBUTE...",
                    )
                element, attributes = parts[0], parts[1:]
                for attribute in attributes:
                    options.add_custom_attribute(element, attribute)
            elif directive == "set":
                parts = argument.split(None, 1)
                if len(parts) != 2:
                    raise ConfigError(
                        filename, line_number, "set directive needs: KEY VALUE"
                    )
                options.set_option(parts[0], parts[1])
        except ConfigError:
            raise
        except (UnknownMessageError, ValueError) as exc:
            raise ConfigError(filename, line_number, str(exc)) from exc


def apply_rcfile(options: Options, path: Union[str, Path]) -> None:
    """Read and apply one configuration file in place."""
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    directives = parse_rcfile(text, filename=str(path))
    apply_directives(options, directives, filename=str(path))
