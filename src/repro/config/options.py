"""Resolved weblint options.

``Options`` is the single object the engine, rules and front-ends consult.
It supports the paper's configurability requirements:

- "everything in weblint can be turned off" -- per-message enable/disable;
- "Weblint 2 will let users enable and disable all messages of a given
  category" -- :meth:`Options.enable` accepts a category name too;
- "Much greater configurability. For example, to provide additional
  examples of content-free text, custom elements and attributes" (future
  plans, section 6.1) -- ``extra_here_words``, ``custom_elements`` and
  ``custom_attributes`` feed straight into the rules and spec lookups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core import constants
from repro.core.messages import CATALOG, Category, default_enabled_ids, ids_in_category


class UnknownMessageError(ValueError):
    """Raised when enabling/disabling an identifier that does not exist."""


def _expand_identifier(identifier: str) -> list[str]:
    """Expand a message id or category name to concrete message ids."""
    token = identifier.strip().lower()
    if token in CATALOG:
        return [token]
    if token == "all":
        return list(CATALOG)
    try:
        category = Category.parse(token)
    except ValueError:
        raise UnknownMessageError(
            f"unknown message or category: {identifier!r}"
        ) from None
    return ids_in_category(category)


@dataclass
class Options:
    """All knobs, with paper defaults."""

    enabled: set[str] = field(default_factory=set)
    spec_name: str = constants.DEFAULT_SPEC
    short_format: bool = False          # -s: terse messages
    verbose: bool = False               # -v: include message ids and help
    recurse: bool = False               # -R: whole-site mode
    follow_links: bool = True           # -R/robot: validate links
    max_title_length: int = constants.MAX_TITLE_LENGTH
    index_filenames: tuple[str, ...] = constants.INDEX_FILENAMES
    extra_here_words: set[str] = field(default_factory=set)
    custom_elements: set[str] = field(default_factory=set)
    custom_attributes: dict[str, set[str]] = field(default_factory=dict)
    case_style: Optional[str] = None    # "upper" | "lower" | None
    stop_after: Optional[int] = None    # cap on diagnostics per document

    @classmethod
    def with_defaults(cls) -> "Options":
        """The out-of-the-box configuration: the 42 default messages."""
        return cls(enabled=default_enabled_ids())

    def copy(self) -> "Options":
        clone = Options(
            enabled=set(self.enabled),
            spec_name=self.spec_name,
            short_format=self.short_format,
            verbose=self.verbose,
            recurse=self.recurse,
            follow_links=self.follow_links,
            max_title_length=self.max_title_length,
            index_filenames=tuple(self.index_filenames),
            extra_here_words=set(self.extra_here_words),
            custom_elements=set(self.custom_elements),
            custom_attributes={k: set(v) for k, v in self.custom_attributes.items()},
            case_style=self.case_style,
            stop_after=self.stop_after,
        )
        return clone

    def fingerprint(self) -> tuple:
        """Hashable digest of every semantic field.

        The dispatch layer caches compiled tables per
        ``(spec, options-fingerprint, ruleset)``; two Options with equal
        fingerprints must behave identically for every rule, so *all*
        fields participate, not just the ones known to affect
        subscriptions today.
        """
        return (
            frozenset(self.enabled),
            self.spec_name,
            self.short_format,
            self.verbose,
            self.recurse,
            self.follow_links,
            self.max_title_length,
            tuple(self.index_filenames),
            frozenset(self.extra_here_words),
            frozenset(self.custom_elements),
            tuple(
                sorted(
                    (name, frozenset(values))
                    for name, values in self.custom_attributes.items()
                )
            ),
            self.case_style,
            self.stop_after,
        )

    # -- message enablement -----------------------------------------------------

    def is_enabled(self, message_id: str) -> bool:
        return message_id in self.enabled

    def enable(self, *identifiers: str) -> None:
        """Enable messages by id or by category name ('errors', 'style'...)."""
        for identifier in identifiers:
            self.enabled.update(_expand_identifier(identifier))
        self._apply_case_side_effects()

    def disable(self, *identifiers: str) -> None:
        for identifier in identifiers:
            self.enabled.difference_update(_expand_identifier(identifier))
        self._apply_case_side_effects()

    def only(self, *identifiers: str) -> None:
        """Enable exactly the given messages, disabling everything else."""
        self.enabled.clear()
        self.enable(*identifiers)

    def _apply_case_side_effects(self) -> None:
        # Enabling exactly one of upper-case/lower-case selects the house
        # case style used by the style rules.
        upper = "upper-case" in self.enabled
        lower = "lower-case" in self.enabled
        if upper and not lower:
            self.case_style = "upper"
        elif lower and not upper:
            self.case_style = "lower"
        elif not upper and not lower:
            self.case_style = None

    # -- custom language additions ---------------------------------------------------

    def add_custom_element(self, name: str) -> None:
        """Accept a non-standard element without unknown-element noise.

        Paper section 4.6: "many editing and generation tools insert
        tool-specific markup ... These result in noise, which hides the
        useful weblint output."
        """
        self.custom_elements.add(name.lower())

    def add_custom_attribute(self, element: str, attribute: str) -> None:
        self.custom_attributes.setdefault(element.lower(), set()).add(
            attribute.lower()
        )

    def is_custom_element(self, name: str) -> bool:
        return name.lower() in self.custom_elements

    def is_custom_attribute(self, element: str, attribute: str) -> bool:
        allowed = self.custom_attributes.get(element.lower())
        if allowed is None:
            return False
        return attribute.lower() in allowed or "*" in allowed

    # -- here-words -------------------------------------------------------------------

    def here_words(self) -> set[str]:
        base = {word.lower() for word in constants.CONTENT_FREE_ANCHOR_TEXT}
        base.update(word.lower() for word in self.extra_here_words)
        return base

    # -- misc ---------------------------------------------------------------------------

    def set_option(self, key: str, value: str) -> None:
        """Apply a ``set key value`` line from a configuration file."""
        key = key.strip().lower().replace("-", "_")
        if key == "spec" or key == "html_version":
            self.spec_name = value.strip().lower()
        elif key == "short_format":
            self.short_format = _parse_bool(value)
        elif key == "verbose":
            self.verbose = _parse_bool(value)
        elif key == "follow_links":
            self.follow_links = _parse_bool(value)
        elif key == "max_title_length":
            self.max_title_length = int(value)
        elif key == "stop_after":
            self.stop_after = int(value)
        elif key == "index_filenames":
            self.index_filenames = tuple(
                name.strip() for name in value.split(",") if name.strip()
            )
        elif key == "here_words":
            self.extra_here_words.update(
                word.strip().lower() for word in value.split(",") if word.strip()
            )
        else:
            raise UnknownMessageError(f"unknown option: {key!r}")


def _parse_bool(value: str) -> bool:
    lowered = value.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ValueError(f"expected a boolean, got {value!r}")


#: Public name for identifier expansion (used by the inline-config rule
#: and the check context).
expand_identifier = _expand_identifier


def enabled_from(identifiers: Iterable[str]) -> set[str]:
    """Expand a list of ids/categories to a concrete enabled set."""
    enabled: set[str] = set()
    for identifier in identifiers:
        enabled.update(_expand_identifier(identifier))
    return enabled
