"""Test-suite support -- the ``Weblint::Test`` module.

Paper section 5.7: "A key tool in the development of weblint has been the
test-suite.  This serves two purposes: basic testing of the different
modules, and a large test set of HTML samples, which are believed to be
valid or invalid for specific versions of HTML."

- :mod:`repro.testing.samples` -- the curated sample corpus: HTML
  fragments each annotated with the messages it must (and must not)
  provoke, and the HTML version it applies to;
- :mod:`repro.testing.harness` -- run samples through the checker and
  diff expectations, both for pytest and for ad-hoc exploration.
"""

from repro.testing.harness import SampleFailure, check_sample, run_samples
from repro.testing.samples import SAMPLES, Sample, samples_by_message

__all__ = [
    "Sample",
    "SAMPLES",
    "samples_by_message",
    "check_sample",
    "run_samples",
    "SampleFailure",
]
