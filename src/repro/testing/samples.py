"""The curated HTML sample corpus.

Each :class:`Sample` is a small document annotated with the message ids
it must provoke (``expect``) and must not provoke (``forbid``) under a
given HTML version.  The corpus covers every check named in the paper
(section 4.3's examples in particular) plus the version-dependence cases
of section 5.5.

Most samples wrap a body fragment in a known-clean skeleton via
:func:`document`, so only the behaviour under test shows up.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def document(body: str, head_extra: str = "", title: str = "Sample page") -> str:
    """Wrap ``body`` in a default-clean HTML 4.0 document."""
    return (
        '<!DOCTYPE HTML PUBLIC "-//W3C//DTD HTML 4.0 Transitional//EN">\n'
        "<html>\n<head>\n"
        f"<title>{title}</title>\n{head_extra}"
        "</head>\n<body>\n"
        f"{body}\n"
        "</body>\n</html>\n"
    )


@dataclass(frozen=True)
class Sample:
    """One corpus entry."""

    name: str
    html: str
    expect: tuple[str, ...] = ()
    forbid: tuple[str, ...] = ()
    spec: str = "html40"
    enable: tuple[str, ...] = ()
    description: str = ""


SAMPLES: tuple[Sample, ...] = (
    # -- clean documents stay clean ------------------------------------------------
    Sample(
        "clean-minimal",
        document("<p>hello world</p>"),
        forbid=("unclosed-element", "require-doctype", "html-outer",
                "require-title", "empty-container"),
        description="A minimal valid page produces no default messages.",
    ),
    Sample(
        "clean-table",
        document(
            '<table border="1" summary="s">'
            "<tr><th>h</th></tr><tr><td>d</td></tr></table>"
        ),
        forbid=("required-context", "unclosed-element"),
    ),
    Sample(
        "clean-form",
        document(
            '<form action="run.cgi" method="post">'
            '<p><label>Name <input type="text" name="n"></label></p>'
            '<p><textarea name="t" rows="4" cols="40">x</textarea></p>'
            "</form>"
        ),
        forbid=("required-attribute", "unknown-attribute"),
    ),
    # -- section 4.3 error examples ---------------------------------------------------
    Sample(
        "missing-a-close",
        document('<p><a href="x.html">anchor text</p>'),
        expect=("unclosed-element",),
        description="Missing close tag for a container that requires it (A).",
    ),
    Sample(
        "mistyped-element",
        document("<blockqoute><p>quoted</p></blockqoute>"),
        expect=("unknown-element",),
        description="Mis-typed element names, e.g. BLOCKQOUTE.",
    ),
    Sample(
        "textarea-missing-rows-cols",
        document('<form action="a.cgi"><textarea name="t">x</textarea></form>'),
        expect=("required-attribute",),
        description="Forgetting required attributes ROWS and COLS on TEXTAREA.",
    ),
    # -- section 4.3 warning examples -----------------------------------------------------
    Sample(
        "single-quoted-value",
        document("<p><a href='x.html'>anchor text</a></p>"),
        expect=("attribute-delimiter",),
        description="Single-quote delimiters break some clients.",
    ),
    Sample(
        "img-without-size",
        document('<p><img src="x.gif" alt="x"></p>'),
        expect=("img-size",),
        forbid=("img-alt",),
        description="IMG without WIDTH/HEIGHT slows page layout.",
    ),
    Sample(
        "img-without-alt",
        document('<p><img src="x.gif" width="10" height="10"></p>'),
        expect=("img-alt",),
        forbid=("img-size",),
    ),
    Sample(
        "markup-in-comment",
        document("<p>ok</p>\n<!-- <b>hidden</b> -->"),
        expect=("markup-in-comment",),
        description="Commented-out markup confuses quick-and-dirty parsers.",
    ),
    Sample(
        "deprecated-listing",
        document("<listing>some old text</listing>"),
        expect=("deprecated-element",),
        description="Use of deprecated LISTING; use PRE instead.",
    ),
    # -- section 4.3 style examples ---------------------------------------------------------
    Sample(
        "click-here-anchor",
        document('<p>Click <a href="x.html">here</a> for details.</p>'),
        expect=("here-anchor",),
        enable=("here-anchor",),
        description='Content-free anchor text ("click here").',
    ),
    Sample(
        "physical-markup",
        document("<p><b>bold words</b></p>"),
        expect=("physical-font",),
        enable=("physical-font",),
        description="Physical <B> rather than logical <STRONG>.",
    ),
    # -- structure errors ----------------------------------------------------------------------
    Sample(
        "overlap",
        document('<p><b><a href="x.html">text</b></a></p>'),
        expect=("overlapped-element",),
        forbid=("illegal-closing",),
    ),
    Sample(
        "heading-mismatch",
        document("<h1>title</h2>\n<p>body</p>"),
        expect=("heading-mismatch",),
    ),
    Sample(
        "heading-skip",
        document("<h1>one</h1><p>x</p><h4>four</h4><p>y</p>"),
        expect=("heading-order",),
    ),
    Sample(
        "unmatched-close",
        document("<p>text</p></strong>"),
        expect=("illegal-closing",),
    ),
    Sample(
        "nested-anchor",
        document('<p><a href="a.html">x <a href="b.html">y</a></a></p>'),
        expect=("nested-element",),
    ),
    Sample(
        "li-outside-list",
        document("<li>item</li>"),
        expect=("required-context",),
    ),
    Sample(
        "once-only-body",
        document("<p>one</p>\n</body>\n<body>\n<p>two</p>"),
        expect=("once-only",),
    ),
    Sample(
        "head-element-in-body",
        document('<p>x</p><base href="http://e.com/">'),
        expect=("head-element",),
    ),
    Sample(
        "empty-title",
        (
            '<!DOCTYPE HTML PUBLIC "-//W3C//DTD HTML 4.0 Transitional//EN">\n'
            "<html><head><title></title></head>"
            "<body><p>x</p></body></html>"
        ),
        expect=("empty-container",),
    ),
    Sample(
        "closing-attribute",
        document('<p>x</p><div align="center"><p>y</p></div align="center">'),
        expect=("closing-attribute",),
    ),
    Sample(
        "empty-angle-brackets",
        document("<p>text <> more</p>"),
        expect=("empty-tag",),
    ),
    Sample(
        "anchor-without-attributes",
        document("<p><a>text</a></p>"),
        expect=("expected-attribute",),
    ),
    Sample(
        "leading-whitespace-tag",
        document("<p>a < b>bold</b></p>"),
        expect=("leading-whitespace",),
        description="'< b>' is parsed as a B tag with leading whitespace.",
    ),
    # -- attributes --------------------------------------------------------------------------------
    Sample(
        "unknown-attribute",
        document('<p zorp="1">x</p>'),
        expect=("unknown-attribute",),
    ),
    Sample(
        "bad-color-value",
        document("<p>x</p>", ),
        forbid=(),
    ),
    Sample(
        "body-bgcolor-format",
        (
            '<!DOCTYPE HTML PUBLIC "-//W3C//DTD HTML 4.0 Transitional//EN">\n'
            '<html><head><title>t</title></head>'
            '<body bgcolor="fffff"><p>x</p></body></html>'
        ),
        expect=("attribute-format",),
    ),
    Sample(
        "unquoted-value-needs-quotes",
        (
            '<!DOCTYPE HTML PUBLIC "-//W3C//DTD HTML 4.0 Transitional//EN">\n'
            "<html><head><title>t</title></head>"
            "<body text=#00ff00><p>x</p></body></html>"
        ),
        expect=("quote-attribute-value",),
        forbid=("attribute-format",),
    ),
    Sample(
        "unquoted-safe-value",
        document('<table border=1 summary="s"><tr><td>x</td></tr></table>'),
        forbid=("quote-attribute-value",),
        description="SGML name-character values may be unquoted.",
    ),
    Sample(
        "repeated-attribute",
        document('<p><img src="a.gif" src="b.gif" alt="x" width="1" height="1"></p>'),
        expect=("repeated-attribute",),
    ),
    Sample(
        "odd-quotes",
        document('<p><a href="x.html>text</a></p>'),
        expect=("odd-quotes",),
    ),
    Sample(
        "duplicate-id",
        document('<p id="one">a</p><p id="one">b</p>'),
        expect=("duplicate-id",),
    ),
    Sample(
        "deprecated-attribute",
        document('<p align="center">x</p>'),
        expect=("deprecated-attribute",),
        enable=("deprecated-attribute",),
    ),
    # -- text and entities ------------------------------------------------------------------------------
    Sample(
        "literal-gt",
        document("<p>5 > 3</p>"),
        expect=("literal-metacharacter",),
    ),
    Sample(
        "unknown-entity",
        document("<p>&zorp; is not a thing</p>"),
        expect=("unknown-entity",),
    ),
    Sample(
        "known-entity-ok",
        document("<p>&copy; 1998 &amp; beyond &#169;</p>"),
        forbid=("unknown-entity",),
    ),
    Sample(
        "unterminated-entity",
        document("<p>&copy 1998</p>"),
        expect=("unterminated-entity",),
        enable=("unterminated-entity",),
    ),
    # -- document level -----------------------------------------------------------------------------------
    Sample(
        "no-doctype",
        "<html><head><title>t</title></head><body><p>x</p></body></html>",
        expect=("require-doctype",),
        forbid=("html-outer",),
    ),
    Sample(
        "no-html-wrapper",
        (
            '<!DOCTYPE HTML PUBLIC "-//W3C//DTD HTML 4.0 Transitional//EN">\n'
            "<head><title>t</title></head><body><p>x</p></body>"
        ),
        expect=("html-outer",),
    ),
    Sample(
        "no-title",
        (
            '<!DOCTYPE HTML PUBLIC "-//W3C//DTD HTML 4.0 Transitional//EN">\n'
            "<html><head></head><body><p>x</p></body></html>"
        ),
        expect=("require-title",),
    ),
    Sample(
        "long-title",
        document("<p>x</p>", title="t" * 80),
        expect=("title-length",),
    ),
    Sample(
        "mailto-hidden-address",
        document('<p><a href="mailto:bob@example.com">contact the author</a></p>'),
        expect=("mailto-link",),
    ),
    Sample(
        "mailto-visible-address",
        document(
            '<p><a href="mailto:bob@example.com">bob@example.com</a></p>'
        ),
        forbid=("mailto-link",),
    ),
    Sample(
        "frameset-without-noframes",
        (
            '<!DOCTYPE HTML PUBLIC "-//W3C//DTD HTML 4.0 Frameset//EN">\n'
            '<html><head><title>t</title></head>'
            '<frameset rows="50%,50%"><frame src="a.html">'
            '<frame src="b.html"></frameset></html>'
        ),
        expect=("frame-noframes",),
    ),
    # -- version dependence (section 5.5 / E11) ---------------------------------------------------------------
    Sample(
        "netscape-markup-under-html40",
        document("<p><blink>new</blink></p>"),
        expect=("netscape-markup",),
        forbid=("unknown-element",),
    ),
    Sample(
        "netscape-markup-under-netscape",
        document("<p><blink>new</blink></p>"),
        spec="netscape",
        forbid=("netscape-markup", "unknown-element"),
    ),
    Sample(
        "microsoft-markup-under-html40",
        document('<p><marquee>news</marquee></p>'),
        expect=("microsoft-markup",),
        forbid=("unknown-element",),
    ),
    Sample(
        "html40-element-under-html32",
        document("<p><span>text</span></p>"),
        spec="html32",
        expect=("unknown-element",),
    ),
    Sample(
        "class-attribute-under-html32",
        document('<p class="x">text</p>'),
        spec="html32",
        expect=("unknown-attribute",),
    ),
    Sample(
        "euro-entity-under-html32",
        document("<p>price: 10 &euro;</p>"),
        spec="html32",
        expect=("unknown-entity",),
    ),
    Sample(
        "img-alt-optional-html32",
        document('<p><img src="x.gif" width="1" height="1"></p>'),
        spec="html32",
        expect=("img-alt",),
        forbid=("required-attribute",),
        description="ALT is advisory (img-alt), not required, under 3.2.",
    ),
    Sample(
        "strict-rejects-center",
        document("<center><p>x</p></center>"),
        spec="html40-strict",
        expect=("unknown-element",),
    ),
    # -- comments -------------------------------------------------------------------------------------------------
    Sample(
        "nested-comment",
        document("<p>x</p><!-- outer <!-- inner --> "),
        expect=("nested-comment",),
    ),
    Sample(
        "unclosed-comment",
        document("<p>x</p><!-- never closed"),
        expect=("unclosed-comment",),
    ),
    # -- case style ---------------------------------------------------------------------------------------------------
    Sample(
        "lower-case-style",
        document("<P>upper tags</P>"),
        expect=("lower-case",),
        enable=("lower-case",),
    ),
    Sample(
        "upper-case-style",
        document("<p>lower tags</p>"),
        expect=("upper-case",),
        enable=("upper-case",),
    ),
    # -- heading in anchor -----------------------------------------------------------------------------------------------
    Sample(
        "heading-inside-anchor",
        document('<a href="x.html"><h2>heading link</h2></a>'),
        expect=("heading-in-anchor",),
    ),
    Sample(
        "body-colors-partial",
        (
            '<!DOCTYPE HTML PUBLIC "-//W3C//DTD HTML 4.0 Transitional//EN">\n'
            '<html><head><title>t</title></head>'
            '<body bgcolor="#ffffff"><p>x</p></body></html>'
        ),
        expect=("body-colors",),
        enable=("body-colors",),
    ),
)


def samples_by_message(message_id: str) -> list[Sample]:
    """Samples that expect the given message."""
    return [sample for sample in SAMPLES if message_id in sample.expect]


# -- weblint 2 extension samples: plugins, fragments, inline config -------

EXTENSION_SAMPLES: tuple[Sample, ...] = (
    Sample(
        "css-typo-property",
        document('<p style="colour: red">x</p>'),
        expect=("css-unknown-property",),
        description="Stylesheet plugin: typo'd property with suggestion.",
    ),
    Sample(
        "css-bad-color",
        document('<p style="color: neon">x</p>'),
        expect=("css-unknown-color",),
    ),
    Sample(
        "css-missing-colon",
        document(
            "<p>x</p>",
            head_extra='<style type="text/css">p { margin 0 }</style>\n',
        ),
        expect=("css-syntax",),
    ),
    Sample(
        "css-valid-quiet",
        document(
            '<p style="margin: 0; color: #fff; font-weight: bold">x</p>'
        ),
        forbid=("css-syntax", "css-unknown-property", "css-unknown-color"),
    ),
    Sample(
        "script-unbalanced",
        document(
            "<p>x</p>",
            head_extra='<script type="text/javascript">f(;</script>\n',
        ),
        expect=("script-syntax",),
    ),
    Sample(
        "script-valid-quiet",
        document(
            "<p>x</p>",
            head_extra='<script type="text/javascript">'
            "var x = f(1, [2]);</script>\n",
        ),
        forbid=("script-syntax",),
    ),
    Sample(
        "inline-disable",
        document(
            '<!-- weblint: disable img-alt, img-size -->\n'
            '<p><img src="generated.gif"></p>'
        ),
        forbid=("img-alt", "img-size"),
        description="Inline configuration comments (paper section 6.1).",
    ),
    Sample(
        "self-closing-under-html40",
        document("<p>line one<br/>line two</p>"),
        expect=("self-closing-tag",),
        enable=("self-closing-tag",),
    ),
)

SAMPLES = SAMPLES + EXTENSION_SAMPLES
