"""Run corpus samples through the checker and diff expectations."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.options import Options
from repro.core.linter import Weblint
from repro.testing.samples import SAMPLES, Sample


@dataclass
class SampleFailure:
    """One sample whose behaviour differed from its annotation."""

    sample: Sample
    missing: tuple[str, ...] = ()
    unexpected: tuple[str, ...] = ()
    got: tuple[str, ...] = field(default_factory=tuple)

    def __str__(self) -> str:
        parts = [f"sample {self.sample.name!r} (spec {self.sample.spec})"]
        if self.missing:
            parts.append(f"missing: {', '.join(self.missing)}")
        if self.unexpected:
            parts.append(f"forbidden but present: {', '.join(self.unexpected)}")
        parts.append(f"got: {', '.join(self.got) or '(nothing)'}")
        return "; ".join(parts)


def check_sample(sample: Sample) -> SampleFailure | None:
    """Run one sample; return a failure record or None when it passes."""
    options = Options.with_defaults()
    options.spec_name = sample.spec
    if sample.enable:
        options.enable(*sample.enable)
    weblint = Weblint(options=options)
    got = {d.message_id for d in weblint.check_string(sample.html)}

    missing = tuple(sorted(set(sample.expect) - got))
    unexpected = tuple(sorted(set(sample.forbid) & got))
    if missing or unexpected:
        return SampleFailure(
            sample=sample,
            missing=missing,
            unexpected=unexpected,
            got=tuple(sorted(got)),
        )
    return None


def run_samples(samples: tuple[Sample, ...] = SAMPLES) -> list[SampleFailure]:
    """Run the whole corpus; return every failure."""
    failures = []
    for sample in samples:
        failure = check_sample(sample)
        if failure is not None:
            failures.append(failure)
    return failures
