"""Run corpus samples through the checker and diff expectations."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.options import Options
from repro.core.service import LintRequest, LintService, StringSource
from repro.testing.samples import SAMPLES, Sample


@dataclass
class SampleFailure:
    """One sample whose behaviour differed from its annotation."""

    sample: Sample
    missing: tuple[str, ...] = ()
    unexpected: tuple[str, ...] = ()
    got: tuple[str, ...] = field(default_factory=tuple)

    def __str__(self) -> str:
        parts = [f"sample {self.sample.name!r} (spec {self.sample.spec})"]
        if self.missing:
            parts.append(f"missing: {', '.join(self.missing)}")
        if self.unexpected:
            parts.append(f"forbidden but present: {', '.join(self.unexpected)}")
        parts.append(f"got: {', '.join(self.got) or '(nothing)'}")
        return "; ".join(parts)


#: One service per distinct (spec, enabled-messages) configuration: the
#: corpus reuses a handful of configurations across hundreds of samples,
#: so rules and dispatch tables are built once per configuration, not
#: once per sample.
_SERVICES: dict[tuple[str, tuple[str, ...]], LintService] = {}


def _service_for(sample: Sample) -> LintService:
    key = (sample.spec, tuple(sample.enable))
    service = _SERVICES.get(key)
    if service is None:
        options = Options.with_defaults()
        options.spec_name = sample.spec
        if sample.enable:
            options.enable(*sample.enable)
        service = _SERVICES[key] = LintService(options=options)
    return service


def _diff(sample: Sample, got: set[str]) -> SampleFailure | None:
    missing = tuple(sorted(set(sample.expect) - got))
    unexpected = tuple(sorted(set(sample.forbid) & got))
    if missing or unexpected:
        return SampleFailure(
            sample=sample,
            missing=missing,
            unexpected=unexpected,
            got=tuple(sorted(got)),
        )
    return None


def check_sample(sample: Sample) -> SampleFailure | None:
    """Run one sample; return a failure record or None when it passes."""
    service = _service_for(sample)
    result = service.check(StringSource(sample.html))
    return _diff(sample, {d.message_id for d in result.diagnostics})


def run_samples(
    samples: tuple[Sample, ...] = SAMPLES, jobs: int = 1
) -> list[SampleFailure]:
    """Run the whole corpus; return every failure, in sample order.

    Samples are grouped by configuration and each group goes through
    ``LintService.check_many`` -- one batch per configuration, parallel
    across worker processes when ``jobs`` asks for it.
    """
    groups: dict[tuple[str, tuple[str, ...]], list[int]] = {}
    for index, sample in enumerate(samples):
        groups.setdefault((sample.spec, tuple(sample.enable)), []).append(index)

    got: list[set[str]] = [set() for _ in samples]
    for indices in groups.values():
        service = _service_for(samples[indices[0]])
        results = service.check_many(
            [LintRequest(StringSource(samples[i].html)) for i in indices],
            jobs=jobs,
        )
        for index, result in zip(indices, results):
            got[index] = {d.message_id for d in result.diagnostics}

    failures = []
    for index, sample in enumerate(samples):
        failure = _diff(sample, got[index])
        if failure is not None:
            failures.append(failure)
    return failures
