"""Hierarchical spans with a free-when-disabled default.

The lint pipeline opens spans around its phases::

    from repro.obs import get_tracer

    with get_tracer().span("lint.file", file=filename):
        ...

By default the active tracer is the :class:`NullTracer`, whose ``span``
returns one shared no-op context manager -- no allocation, no clock
read -- so always-on call sites cost two method calls and nothing else.
``--trace FILE`` (and tests) install a :class:`Tracer` that records real
:class:`Span` trees, exportable as JSON lines or a pretty tree.

Single-threaded by design, like the checker itself: one tracer tracks
one open-span stack.  Give each worker its own tracer if the pipeline
ever fans out.
"""

from __future__ import annotations

import json
import time
from typing import IO, Iterator, Optional

from repro.obs.events import get_event_log


class Span:
    """One timed region; nests under whatever span was open at entry."""

    __slots__ = (
        "tracer", "name", "attributes", "span_id", "parent_id",
        "start", "end", "children",
    )

    def __init__(self, tracer: "Tracer", name: str, attributes: dict[str, object]) -> None:
        self.tracer = tracer
        self.name = name
        self.attributes = attributes
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self.start = 0.0
        self.end = 0.0
        self.children: list[Span] = []

    # -- context manager protocol -----------------------------------------

    def __enter__(self) -> "Span":
        self.tracer._open(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.end = time.perf_counter()
        self.tracer._close(self)

    def annotate(self, **attributes: object) -> None:
        """Attach attributes to an open span."""
        self.attributes.update(attributes)

    @property
    def duration_ms(self) -> float:
        return (self.end - self.start) * 1000.0

    # -- traversal ---------------------------------------------------------

    def walk(self, depth: int = 0) -> Iterator[tuple["Span", int]]:
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)


class _NullSpan:
    """The shared do-nothing span the null tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass

    def annotate(self, **attributes: object) -> None:
        pass


NULL_SPAN = _NullSpan()


class NullTracer:
    """Default tracer: every span is the shared no-op singleton."""

    enabled = False

    def span(self, name: str, **attributes: object) -> _NullSpan:
        return NULL_SPAN


class Tracer:
    """Recording tracer: builds a forest of spans in call order."""

    enabled = True

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 1
        self.origin = time.perf_counter()

    def span(self, name: str, **attributes: object) -> Span:
        return Span(self, name, attributes)

    # -- span lifecycle (called by Span) -----------------------------------

    def _open(self, span: Span) -> None:
        span.span_id = self._next_id
        self._next_id += 1
        if self._stack:
            parent = self._stack[-1]
            span.parent_id = parent.span_id
            parent.children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _close(self, span: Span) -> None:
        # Tolerate exits out of order (an exception unwinding several
        # spans): pop up to and including this span.
        while self._stack:
            if self._stack.pop() is span:
                break
        # Every traced span feeds the slow-op log: an installed event
        # log turns any span over its threshold into a `slow_op` event.
        events = get_event_log()
        if events.enabled:
            events.note_operation(
                span.name,
                span.duration_ms,
                **{
                    key: _jsonable(value)
                    for key, value in span.attributes.items()
                    if key not in ("op", "duration_ms", "threshold_ms")
                },
            )

    # -- exporters ---------------------------------------------------------

    def iter_spans(self) -> Iterator[tuple[Span, int]]:
        for root in self.roots:
            yield from root.walk()

    def to_records(self) -> list[dict[str, object]]:
        """One plain dict per finished span, document order.

        The portable form of the span forest: JSON-able, picklable, and
        consumable by :meth:`merge_records` in another tracer -- this is
        how worker processes ship their spans back to the parent.
        """
        records = []
        for span, depth in self.iter_spans():
            records.append({
                "name": span.name,
                "id": span.span_id,
                "parent": span.parent_id,
                "depth": depth,
                "start_ms": round((span.start - self.origin) * 1000.0, 3),
                "duration_ms": round(span.duration_ms, 3),
                "attrs": {key: _jsonable(value) for key, value in span.attributes.items()},
            })
        return records

    def merge_records(self, records: list[dict[str, object]]) -> None:
        """Graft spans exported by another tracer's :meth:`to_records`.

        Used by the batch pipeline: each worker records into its own
        tracer and the parent merges the forests, so ``--trace`` under
        ``--jobs N`` still produces one artefact.  Start offsets stay
        relative to the worker's origin (wall-clock alignment across
        processes is not attempted).
        """
        grafted: dict[object, Span] = {}
        for record in records:
            span = Span(self, str(record["name"]), dict(record.get("attrs") or {}))
            span.span_id = self._next_id
            self._next_id += 1
            span.start = self.origin + float(record.get("start_ms", 0.0)) / 1000.0
            span.end = span.start + float(record.get("duration_ms", 0.0)) / 1000.0
            parent = grafted.get(record.get("parent"))
            if parent is not None:
                span.parent_id = parent.span_id
                parent.children.append(span)
            else:
                self.roots.append(span)
            grafted[record["id"]] = span

    def to_jsonlines(self) -> str:
        """One JSON object per finished span, document order."""
        return "\n".join(json.dumps(record) for record in self.to_records())

    def write_jsonlines(self, stream: IO[str]) -> None:
        text = self.to_jsonlines()
        if text:
            stream.write(text + "\n")

    def format_tree(self) -> str:
        """Indented human-readable rendering of the span forest."""
        lines = []
        for span, depth in self.iter_spans():
            attrs = " ".join(f"{key}={value}" for key, value in span.attributes.items())
            suffix = f"  [{attrs}]" if attrs else ""
            lines.append(f"{'  ' * depth}{span.name}  {span.duration_ms:.2f} ms{suffix}")
        return "\n".join(lines)


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


# -- the process-wide active tracer ----------------------------------------

_NULL_TRACER = NullTracer()
_tracer: object = _NULL_TRACER


def get_tracer():
    """The active tracer (the no-op singleton unless tracing is on)."""
    return _tracer


def set_tracer(tracer) -> object:
    """Install a tracer; returns the previous one."""
    global _tracer
    previous = _tracer
    _tracer = tracer if tracer is not None else _NULL_TRACER
    return previous


class use_tracer:
    """Context manager: install a tracer for a region, then restore."""

    def __init__(self, tracer: Optional[Tracer] = None) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self._previous: Optional[object] = None

    def __enter__(self) -> Tracer:
        self._previous = set_tracer(self.tracer)
        return self.tracer

    def __exit__(self, *exc_info: object) -> None:
        set_tracer(self._previous)
