"""Report-memory sampling: the ``report.memory.high_water_bytes`` gauge.

The streaming reporting path exists so a site-scale audit's memory
stays flat as the page count grows; this module is how that claim is
*measured* rather than assumed.  A :class:`MemorySampler` drives
``tracemalloc`` from the existing :class:`~repro.obs.export.Ticker`
(one daemon thread, one cheap read per tick) and records the traced
peak into a registry gauge, so the high-water mark shows up in
``--stats`` output, the OpenMetrics export and the run ledger like any
other metric -- and ``repro.tools.compare_runs`` can gate on it not
regressing between runs.

``tracemalloc`` tracks Python-heap allocations, which is exactly the
memory a buffered report accumulates; it is deterministic across runs
in a way RSS is not, so the recorded high-water is comparable across
machines.  Sampling costs tracemalloc's tracing overhead, so the
poacher only arms it for sharded audits (and benchmarks arm it
explicitly).
"""

from __future__ import annotations

import tracemalloc
from typing import Optional

from repro.obs.export import Ticker
from repro.obs.metrics import MetricsRegistry, get_registry

#: Peak traced Python-heap bytes while the sampler ran.
REPORT_MEMORY_GAUGE = "report.memory.high_water_bytes"


class MemorySampler:
    """Periodically fold the traced-memory peak into a registry gauge.

    ``start()`` begins tracemalloc tracing (unless something upstream
    already did) and a :class:`Ticker`; every tick reads
    ``tracemalloc.get_traced_memory()`` and raises the
    ``report.memory.high_water_bytes`` gauge to the observed peak.
    ``stop()`` fires one final sample (the Ticker's stop contract), so
    short runs still record a value, and returns the peak in bytes.
    """

    def __init__(
        self,
        interval_s: float = 0.2,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.interval_s = interval_s
        self.registry = registry
        self._ticker: Optional[Ticker] = None
        self._started_tracing = False

    def sample(self) -> int:
        """Record the current traced peak; returns it in bytes."""
        _, peak = tracemalloc.get_traced_memory()
        registry = self.registry if self.registry is not None else get_registry()
        registry.gauge_max(REPORT_MEMORY_GAUGE, float(peak))
        return peak

    def start(self) -> "MemorySampler":
        # Pin the registry on the caller's thread: the Ticker fires
        # from its own thread, which must not resolve a different one.
        if self.registry is None:
            self.registry = get_registry()
        self._started_tracing = not tracemalloc.is_tracing()
        if self._started_tracing:
            tracemalloc.start()
        self.sample()
        self._ticker = Ticker(self.interval_s, self.sample)
        self._ticker.start()
        return self

    def stop(self) -> int:
        if self._ticker is not None:
            self._ticker.stop()  # fires one final sample
            self._ticker = None
        peak = self.sample()
        if self._started_tracing:
            tracemalloc.stop()
            self._started_tracing = False
        return peak

    def __enter__(self) -> "MemorySampler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
