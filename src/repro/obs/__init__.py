"""``repro.obs`` -- the checker's continuous telemetry pipeline.

Layered cheapest-first; each layer is independently installable:

- **metrics** (always on): process-local counters/gauges/histograms in a
  :class:`~repro.obs.metrics.MetricsRegistry`; instrumented code records
  a handful of values per document, never per token.  Histograms expose
  interpolated p50/p95/p99 estimates.
- **time-series** (off by default): per-second ring buffers via
  :func:`~repro.obs.timeseries.get_timeseries` -- rolling rates and
  windowed means for live progress views, flat memory however long the
  run is.
- **events** (off by default): a levelled, sampled JSON-lines event log
  via :func:`~repro.obs.events.get_event_log`, including the automatic
  ``slow_op`` log for any instrumented duration over a threshold.
- **traces** (off by default): hierarchical spans via
  ``get_tracer().span(...)``; the default :class:`~repro.obs.trace.NullTracer`
  hands back one shared no-op span so disabled call sites do no work.
- **profiles** (off by default): per-rule timing and per-message-id
  counts via a :class:`~repro.obs.profile.RuleProfiler`.

Export surfaces live in :mod:`repro.obs.export` (OpenMetrics text,
``--telemetry-dir`` sinks) and :mod:`repro.obs.ledger` (the cross-run
``runs.jsonl`` ledger).  See docs/observability.md for the metric/event
namespace and usage recipes.  This package imports nothing from the
rest of ``repro``; every layer may depend on it without cycles.
"""

from repro.obs.events import (
    NULL_EVENT_LOG,
    EventLog,
    NullEventLog,
    get_event_log,
    set_event_log,
    use_event_log,
)
from repro.obs.export import Ticker, TelemetrySink, render_openmetrics
from repro.obs.ledger import RunLedger, record_run, summarize_run
from repro.obs.memory import REPORT_MEMORY_GAUGE, MemorySampler
from repro.obs.metrics import (
    MetricsRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.profile import (
    RuleProfiler,
    get_profiler,
    set_profiler,
    use_profiler,
)
from repro.obs.timeseries import (
    TimeSeries,
    get_timeseries,
    set_timeseries,
    use_timeseries,
)
from repro.obs.trace import (
    NULL_SPAN,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "use_registry",
    "TimeSeries",
    "get_timeseries",
    "set_timeseries",
    "use_timeseries",
    "EventLog",
    "NullEventLog",
    "NULL_EVENT_LOG",
    "get_event_log",
    "set_event_log",
    "use_event_log",
    "Ticker",
    "TelemetrySink",
    "render_openmetrics",
    "MemorySampler",
    "REPORT_MEMORY_GAUGE",
    "RunLedger",
    "record_run",
    "summarize_run",
    "RuleProfiler",
    "get_profiler",
    "set_profiler",
    "use_profiler",
    "NULL_SPAN",
    "NullTracer",
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]
