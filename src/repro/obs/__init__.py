"""``repro.obs`` -- tracing, metrics and profiling for the lint pipeline.

Three independent layers, cheapest first:

- **metrics** (always on): process-local counters/gauges/histograms in a
  :class:`~repro.obs.metrics.MetricsRegistry`; instrumented code records
  a handful of values per document, never per token.
- **traces** (off by default): hierarchical spans via
  ``get_tracer().span(...)``; the default :class:`~repro.obs.trace.NullTracer`
  hands back one shared no-op span so disabled call sites do no work.
- **profiles** (off by default): per-rule timing and per-message-id
  counts via a :class:`~repro.obs.profile.RuleProfiler`.

See docs/observability.md for the metric namespace and usage recipes.
This package imports nothing from the rest of ``repro``; every layer may
depend on it without cycles.
"""

from repro.obs.metrics import (
    MetricsRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.profile import (
    RuleProfiler,
    get_profiler,
    set_profiler,
    use_profiler,
)
from repro.obs.trace import (
    NULL_SPAN,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "use_registry",
    "RuleProfiler",
    "get_profiler",
    "set_profiler",
    "use_profiler",
    "NULL_SPAN",
    "NullTracer",
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]
