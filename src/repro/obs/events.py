"""Structured events: a levelled, sampled JSON-lines log.

Metrics say *how many*; events say *what happened*.  An
:class:`EventLog` turns notable moments -- a slow document, a fetch
that exhausted its retries, a cache flush -- into one JSON object per
line, each carrying a timestamp (injectable clock), a level and
arbitrary fields::

    {"t": 12.5, "event": "slow_op", "level": "warn", "op": "lint.file", ...}

Three cost controls keep it viable on hot paths:

- **levels** (``debug`` < ``info`` < ``warn`` < ``error``): events below
  the log's level are dropped before any formatting happens;
- **per-event sampling**: high-frequency sources can be thinned to one
  event in N (``sample={"lint.file": 100}``); the first occurrence is
  always kept and the drop count is recorded so nothing disappears
  silently (``obs.events.sampled_out``);
- **the null default**: :func:`get_event_log` hands back a shared
  :class:`NullEventLog` whose methods are no-ops, so disabled call
  sites pay two method calls and nothing else.

The slow-operation log rides on top: any instrumented duration routed
through :meth:`EventLog.note_operation` (the lint service and the crawl
fetch path do this, and every closed tracer span does too) emits an
automatic ``slow_op`` warning when it exceeds ``slow_ms``.
"""

from __future__ import annotations

import json
import time
from typing import IO, Callable, Optional

from repro.obs.metrics import get_registry

#: Level names in severity order; index = rank.
LEVELS = ("debug", "info", "warn", "error")

#: Default slow-operation threshold (milliseconds).
DEFAULT_SLOW_MS = 250.0


def _rank(level: str) -> int:
    try:
        return LEVELS.index(level)
    except ValueError:
        return len(LEVELS)  # unknown levels never drop below threshold


class NullEventLog:
    """The do-nothing default: every emit is two method calls, no work."""

    enabled = False

    def emit(self, event: str, level: str = "info", **fields: object) -> None:
        pass

    def note_operation(self, op: str, duration_ms: float, **fields: object) -> None:
        pass


NULL_EVENT_LOG = NullEventLog()


class EventLog:
    """A recording event log writing JSON lines (or buffering in memory).

    ``stream`` receives one line per kept event as it happens; without a
    stream, events accumulate on ``records`` (bounded by
    ``max_records``, oldest dropped first) for tests and in-process
    consumers.
    """

    enabled = True

    def __init__(
        self,
        stream: Optional[IO[str]] = None,
        clock: Callable[[], float] = time.time,
        level: str = "info",
        slow_ms: float = DEFAULT_SLOW_MS,
        sample: Optional[dict[str, int]] = None,
        max_records: int = 10_000,
    ) -> None:
        self.stream = stream
        self.clock = clock
        self.level = level
        self.slow_ms = slow_ms
        #: event name -> keep one in N (first occurrence always kept).
        self.sample = dict(sample or {})
        self.max_records = max(1, max_records)
        self.records: list[dict[str, object]] = []
        self._seen: dict[str, int] = {}
        self._threshold = _rank(level)

    # -- recording ---------------------------------------------------------

    def emit(self, event: str, level: str = "info", **fields: object) -> None:
        """Record one event (unless its level or sampling drops it)."""
        if _rank(level) < self._threshold:
            return
        every = self.sample.get(event)
        if every and every > 1:
            seen = self._seen.get(event, 0)
            self._seen[event] = seen + 1
            if seen % every:
                get_registry().inc("obs.events.sampled_out")
                return
        record: dict[str, object] = {
            "t": round(self.clock(), 3),
            "event": event,
            "level": level,
        }
        for key, value in fields.items():
            record[key] = value if isinstance(
                value, (str, int, float, bool)
            ) or value is None else str(value)
        get_registry().inc("obs.events.emitted")
        if self.stream is not None:
            self.stream.write(json.dumps(record) + "\n")
        else:
            self.records.append(record)
            if len(self.records) > self.max_records:
                del self.records[: len(self.records) - self.max_records]

    def note_operation(self, op: str, duration_ms: float, **fields: object) -> None:
        """The slow-op hook: emit a warning when an operation overruns.

        Call it with any measured duration; nothing is logged (and no
        dict is built) while the operation stays under ``slow_ms``.
        """
        if duration_ms >= self.slow_ms:
            self.emit(
                "slow_op",
                level="warn",
                op=op,
                duration_ms=round(duration_ms, 3),
                threshold_ms=self.slow_ms,
                **fields,
            )

    def flush(self) -> None:
        if self.stream is not None:
            self.stream.flush()


# -- the process-wide active event log --------------------------------------

_event_log: object = NULL_EVENT_LOG


def get_event_log():
    """The active event log (the shared no-op unless one is installed)."""
    return _event_log


def set_event_log(log) -> object:
    """Install an event log; returns the previous one."""
    global _event_log
    previous = _event_log
    _event_log = log if log is not None else NULL_EVENT_LOG
    return previous


class use_event_log:
    """Context manager: install an event log for a region, then restore."""

    def __init__(self, log: Optional[EventLog] = None) -> None:
        self.log = log if log is not None else EventLog()
        self._previous: Optional[object] = None

    def __enter__(self) -> EventLog:
        self._previous = set_event_log(self.log)
        return self.log

    def __exit__(self, *exc_info: object) -> None:
        set_event_log(self._previous)
