"""Process-local metrics: counters, gauges and fixed-bucket histograms.

This is the always-on half of the observability layer (DESIGN.md section
2; docs/observability.md documents the metric namespace).  The registry
is deliberately primitive -- plain ``int``/``float`` slots behind a dict
lookup -- so that instrumented hot paths pay a few dict operations per
*document* (never per token).  Nothing here imports from the rest of
``repro``; every other layer may import this one.

Naming convention: dotted lower-case paths, ``<subsystem>.<thing>`` or
``<subsystem>.<thing>.<qualifier>``, e.g. ``lint.files``,
``tokenizer.tokens``, ``robot.fetch.latency_ms``.  Units are part of the
name (``_ms``, ``bytes``) so snapshots are self-describing.
"""

from __future__ import annotations

import json
import threading
from typing import IO, Optional

#: Default histogram bucket upper bounds, tuned for millisecond latencies
#: (the only histograms the checker records by default).
DEFAULT_BUCKETS: tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000,
)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A value that can move both ways; also tracks its high-water mark."""

    __slots__ = ("name", "value", "high_water")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.high_water = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def set_max(self, value: float) -> None:
        """Record ``value`` only if it exceeds the high-water mark."""
        if value > self.high_water:
            self.high_water = value
            self.value = value

    def snapshot(self) -> dict[str, float]:
        return {"value": self.value, "max": self.high_water}


class Histogram:
    """Fixed-bucket histogram: cumulative-style buckets plus sum/count.

    Buckets are upper bounds; an observation lands in the first bucket
    whose bound is >= the value, or in the implicit overflow bucket.
    """

    __slots__ = ("name", "buckets", "counts", "overflow", "total", "count", "max")

    def __init__(self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * len(self.buckets)
        self.overflow = 0
        self.total = 0.0
        self.count = 0
        self.max = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.overflow += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Interpolated percentile estimate (``q`` in 0..100).

        Walks the fixed buckets to the one containing the requested
        rank and interpolates linearly inside it, so the estimate is a
        pure function of the bucket counts (merging snapshots and then
        asking for ``p95`` gives the same answer in parent and worker).
        The overflow bucket has no upper bound, so ranks landing there
        (and any interpolated value beyond it) clamp to the observed
        maximum.
        """
        if not self.count:
            return 0.0
        target = (min(max(q, 0.0), 100.0) / 100.0) * self.count
        cumulative = 0
        lower = 0.0
        for bound, bucket_count in zip(self.buckets, self.counts):
            if bucket_count and cumulative + bucket_count >= target:
                fraction = (target - cumulative) / bucket_count
                return min(lower + (bound - lower) * fraction, self.max)
            cumulative += bucket_count
            lower = bound
        return self.max

    def percentiles(self) -> dict[str, float]:
        """The standard latency trio: interpolated p50/p95/p99."""
        return {
            "p50": round(self.percentile(50), 6),
            "p95": round(self.percentile(95), 6),
            "p99": round(self.percentile(99), 6),
        }

    def snapshot(self) -> dict[str, object]:
        snap = {
            "count": self.count,
            "sum": round(self.total, 6),
            "mean": round(self.mean, 6),
            "max": round(self.max, 6),
            "buckets": {
                f"le_{bound:g}": count
                for bound, count in zip(self.buckets, self.counts)
            },
            "overflow": self.overflow,
        }
        snap.update(self.percentiles())
        return snap


class MetricsRegistry:
    """Create-on-first-use home for every metric in the process.

    Instrument with the convenience methods (``inc``, ``observe``,
    ``gauge_max``) or hold on to the metric object when a path is hot::

        registry = get_registry()
        registry.inc("lint.files")
        registry.observe("robot.fetch.latency_ms", elapsed_ms)
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- metric access -----------------------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            with self._lock:
                metric = self._counters.setdefault(name, Counter(name))
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            with self._lock:
                metric = self._gauges.setdefault(name, Gauge(name))
        return metric

    def histogram(
        self, name: str, buckets: Optional[tuple[float, ...]] = None
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            with self._lock:
                metric = self._histograms.setdefault(
                    name, Histogram(name, buckets or DEFAULT_BUCKETS)
                )
        return metric

    # -- conveniences ------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def gauge_max(self, name: str, value: float) -> None:
        self.gauge(name).set_max(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def value(self, name: str, default: int = 0) -> int:
        """Current value of a counter (0 if it was never incremented)."""
        metric = self._counters.get(name)
        return metric.value if metric is not None else default

    # -- output ------------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """Every metric, sorted by name, as plain JSON-able values."""
        result: dict[str, object] = {}
        for name, counter in self._counters.items():
            result[name] = counter.snapshot()
        for name, gauge in self._gauges.items():
            result[name] = gauge.snapshot()
        for name, histogram in self._histograms.items():
            result[name] = histogram.snapshot()
        return dict(sorted(result.items()))

    def summary_lines(self, defaults: tuple[str, ...] = ()) -> list[str]:
        """Human-readable one-line-per-metric rendering for ``--stats``.

        ``defaults`` names counters that must appear even when they were
        never incremented, so summary output has a stable shape.
        """
        snap = self.snapshot()
        for name in defaults:
            snap.setdefault(name, 0)
        lines = []
        for name, value in sorted(snap.items()):
            if isinstance(value, dict):
                if "buckets" in value:  # histogram
                    lines.append(
                        f"{name}: count={value['count']} mean={value['mean']:g} "
                        f"p50={value['p50']:g} p95={value['p95']:g} "
                        f"p99={value['p99']:g} max={value['max']:g}"
                    )
                else:  # gauge
                    lines.append(f"{name}: {value['value']:g} (max {value['max']:g})")
            else:
                lines.append(f"{name}: {value}")
        return lines

    def merge_snapshot(self, snapshot: dict[str, object]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        The batch pipeline runs lint workers in separate processes, each
        recording into its own registry; the parent merges the workers'
        snapshots back so ``--stats`` (and the stats reporter) stay
        truthful under parallelism.  Counters add, histograms add
        bucket-wise, gauges keep the highest high-water mark.
        """
        for name, value in snapshot.items():
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                self.counter(name).inc(int(value))
            elif isinstance(value, dict) and "buckets" in value:
                self._merge_histogram(name, value)
            elif isinstance(value, dict) and "value" in value:
                self.gauge(name).set_max(
                    float(value.get("max", value["value"]))
                )

    def _merge_histogram(self, name: str, value: dict) -> None:
        bounds = tuple(sorted(
            float(key[3:]) for key in value["buckets"]
        ))
        histogram = self.histogram(name, bounds)
        position = {bound: index for index, bound in enumerate(histogram.buckets)}
        for key, count in value["buckets"].items():
            index = position.get(float(key[3:]))
            if index is None:
                histogram.overflow += count
            else:
                histogram.counts[index] += count
        histogram.overflow += int(value.get("overflow", 0))
        histogram.count += int(value["count"])
        histogram.total += float(value["sum"])
        histogram.max = max(histogram.max, float(value["max"]))

    def write_json(self, stream: IO[str]) -> None:
        json.dump(self.snapshot(), stream, indent=2)
        stream.write("\n")

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


# -- the process-wide default registry ------------------------------------

_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The registry instrumented code records into."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the active registry; returns the previous one."""
    global _registry
    previous = _registry
    _registry = registry
    return previous


class use_registry:
    """Context manager: swap in a registry (a fresh one by default).

    Used by the CLI so every invocation reports its own numbers, and by
    tests for isolation::

        with use_registry() as registry:
            weblint.check_file(path)
            assert registry.value("lint.files") == 1
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._previous: Optional[MetricsRegistry] = None

    def __enter__(self) -> MetricsRegistry:
        self._previous = set_registry(self.registry)
        return self.registry

    def __exit__(self, *exc_info: object) -> None:
        if self._previous is not None:
            set_registry(self._previous)
