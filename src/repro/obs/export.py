"""Export surfaces: OpenMetrics text and periodic telemetry flushes.

Two consumers, one snapshot:

- :func:`render_openmetrics` turns a registry snapshot into the
  Prometheus/OpenMetrics text exposition format -- what a scraper (or
  the gateway's ``/metrics`` view) expects.  The rendering is a pure
  function of the snapshot, so it is byte-deterministic and golden-
  testable.
- :class:`TelemetrySink` owns a ``--telemetry-dir``: every ``flush()``
  appends one timestamped JSON-lines record to ``metrics.jsonl`` and
  rewrites ``metrics.prom`` (the current OpenMetrics exposition), and
  ``open_event_log()`` hands out an :class:`~repro.obs.events.EventLog`
  streaming to ``events.jsonl`` in the same directory.

:class:`Ticker` is the heartbeat both long-running consumers share: a
daemon thread invoking a callback every interval until stopped.  The
callback-driven design keeps the thread trivial; tests call ``tick()``
directly with an injected clock instead of sleeping.
"""

from __future__ import annotations

import json
import re
import threading
import time
from pathlib import Path
from typing import Callable, Optional, Union

from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry, get_registry

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str) -> str:
    """A registry name as a Prometheus metric name (dots become ``_``)."""
    sanitized = _NAME_RE.sub("_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _format_value(value: float) -> str:
    """Numbers without float noise: integers bare, floats via ``repr``."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_openmetrics(
    snapshot: Optional[dict[str, object]] = None,
    registry: Optional[MetricsRegistry] = None,
) -> str:
    """One registry snapshot in the OpenMetrics text exposition format.

    Counters gain the required ``_total`` suffix; gauges expose their
    value plus a ``_max`` high-water series; histograms render the
    cumulative ``_bucket{le=...}`` ladder (our per-bucket counts are
    accumulated here) with ``_sum`` and ``_count``.  Output is sorted
    by metric name and terminated by ``# EOF``, so identical snapshots
    render to identical bytes.
    """
    if snapshot is None:
        snapshot = (registry if registry is not None else get_registry()).snapshot()
    lines: list[str] = []
    for name in sorted(snapshot):
        value = snapshot[name]
        exposed = metric_name(name)
        if isinstance(value, dict) and "buckets" in value:
            lines.append(f"# TYPE {exposed} histogram")
            cumulative = 0
            # Bucket keys carry their bound (``le_10``); sort numerically.
            bounds = sorted(
                (float(key[3:]), count)
                for key, count in value["buckets"].items()
            )
            for bound, count in bounds:
                cumulative += int(count)
                lines.append(
                    f'{exposed}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
                )
            cumulative += int(value.get("overflow", 0))
            lines.append(f'{exposed}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{exposed}_sum {_format_value(value['sum'])}")
            lines.append(f"{exposed}_count {int(value['count'])}")
        elif isinstance(value, dict) and "value" in value:
            lines.append(f"# TYPE {exposed} gauge")
            lines.append(f"{exposed} {_format_value(value['value'])}")
            lines.append(f"{exposed}_max {_format_value(value['max'])}")
        else:
            lines.append(f"# TYPE {exposed} counter")
            lines.append(f"{exposed}_total {_format_value(value)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


class TelemetrySink:
    """A ``--telemetry-dir``: metrics.jsonl + metrics.prom + events.jsonl.

    ``flush()`` is cheap enough to call per tick on a long crawl and
    harmless to call exactly once at the end of a short CLI run.  Write
    failures degrade silently (telemetry must never fail the run) but
    are counted under ``obs.telemetry.write_errors``.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.directory = Path(directory)
        self.clock = clock
        self.directory.mkdir(parents=True, exist_ok=True)
        self.metrics_path = self.directory / "metrics.jsonl"
        self.prom_path = self.directory / "metrics.prom"
        self.events_path = self.directory / "events.jsonl"
        self._event_stream = None
        self.flushes = 0

    def open_event_log(self, **kwargs) -> EventLog:
        """An event log streaming JSON lines to ``events.jsonl``."""
        self._event_stream = self.events_path.open("a", encoding="utf-8")
        kwargs.setdefault("clock", self.clock)
        return EventLog(stream=self._event_stream, **kwargs)

    def flush(self, registry: Optional[MetricsRegistry] = None) -> None:
        """Append one metrics record and rewrite the OpenMetrics file."""
        snapshot = (
            registry if registry is not None else get_registry()
        ).snapshot()
        record = {"t": round(self.clock(), 3), "metrics": snapshot}
        try:
            with self.metrics_path.open("a", encoding="utf-8") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
            self.prom_path.write_text(
                render_openmetrics(snapshot), encoding="utf-8"
            )
        except OSError:
            get_registry().inc("obs.telemetry.write_errors")
            return
        self.flushes += 1

    def close(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.flush(registry)
        if self._event_stream is not None:
            try:
                self._event_stream.close()
            except OSError:  # pragma: no cover - close failure
                pass
            self._event_stream = None


class Ticker:
    """A daemon thread calling ``callback()`` every ``interval_s``.

    ``stop()`` wakes the thread immediately and fires one final
    callback, so consumers always see the end-of-run state (the last
    progress line, the final telemetry flush).  Callback exceptions are
    swallowed: a broken ticker must never take the crawl down with it.
    """

    def __init__(self, interval_s: float, callback: Callable[[], None]) -> None:
        self.interval_s = max(0.01, interval_s)
        self.callback = callback
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def tick(self) -> None:
        try:
            self.callback()
        except Exception:  # pragma: no cover - defensive
            pass

    def start(self) -> "Ticker":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.tick()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2)
            self._thread = None
        self.tick()

    def __enter__(self) -> "Ticker":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
