"""Windowed time-series: per-second ring buffers over the live run.

The :class:`~repro.obs.metrics.MetricsRegistry` answers "how much, in
total?"; long-running workloads (a site crawl, the future lint daemon)
also need "how fast, *right now*?".  This module holds that windowed
view: a :class:`TimeSeries` keeps one fixed ring of per-second buckets
per metric, so rolling rates and means over the last N seconds cost a
60-slot scan and the memory stays flat no matter how long the run is.

Everything is driven by an injectable clock (any zero-argument callable
returning seconds) so tests and golden renderings are deterministic;
the default is :func:`time.monotonic`.

Like the other obs layers there is a process-wide slot: instrumented
code asks :func:`get_timeseries` and records only when a series is
installed (``None`` by default), so the always-off cost is one global
read and an ``is None`` test per document -- never per token.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

Clock = Callable[[], float]

#: Default rolling window, in seconds (and ring slots per metric).
DEFAULT_WINDOW_S = 60


class RingSeries:
    """Per-second buckets for one metric, in a fixed ring.

    Slot ``second % window`` owns epoch-second ``second``; a write into
    a slot carrying an older second resets it first, so stale data ages
    out lazily with no background sweep.
    """

    __slots__ = ("window_s", "_seconds", "_sums", "_counts")

    def __init__(self, window_s: int = DEFAULT_WINDOW_S) -> None:
        self.window_s = max(1, int(window_s))
        self._seconds = [-1] * self.window_s
        self._sums = [0.0] * self.window_s
        self._counts = [0] * self.window_s

    def add(self, t: float, value: float = 1.0, count: int = 1) -> None:
        second = int(t)
        slot = second % self.window_s
        if self._seconds[slot] != second:
            self._seconds[slot] = second
            self._sums[slot] = 0.0
            self._counts[slot] = 0
        self._sums[slot] += value
        self._counts[slot] += count

    def totals(self, t: float, window_s: Optional[int] = None) -> tuple[float, int]:
        """``(sum, count)`` over the closed window ending at ``t``."""
        window = min(self.window_s, window_s or self.window_s)
        oldest = int(t) - window + 1
        total = 0.0
        count = 0
        for slot in range(self.window_s):
            if self._seconds[slot] >= oldest and self._seconds[slot] <= int(t):
                total += self._sums[slot]
                count += self._counts[slot]
        return total, count


class TimeSeries:
    """Create-on-first-use ring buffers keyed by metric name.

    ``observe`` drops a value into the current per-second bucket;
    ``rate``/``mean`` aggregate over the trailing window.  Names follow
    the registry's dotted convention so the two views line up (e.g. the
    crawl records ``robot.pages.fetched`` into both).
    """

    def __init__(
        self,
        clock: Clock = time.monotonic,
        window_s: int = DEFAULT_WINDOW_S,
    ) -> None:
        self.clock = clock
        self.window_s = max(1, int(window_s))
        self.series: dict[str, RingSeries] = {}
        self._last_counters: dict[str, float] = {}

    def _series(self, name: str) -> RingSeries:
        ring = self.series.get(name)
        if ring is None:
            ring = self.series[name] = RingSeries(self.window_s)
        return ring

    # -- recording ---------------------------------------------------------

    def observe(self, name: str, value: float = 1.0, t: Optional[float] = None) -> None:
        self._series(name).add(self.clock() if t is None else t, value)

    def sample_registry(self, registry, t: Optional[float] = None) -> None:
        """Fold counter growth since the last sample into the rings.

        For code that only increments registry counters (no explicit
        ``observe`` calls), a periodic ticker can call this instead: the
        delta of every counter since the previous sample lands in the
        current bucket under the counter's own name.
        """
        now = self.clock() if t is None else t
        last = self._last_counters
        current: dict[str, float] = {}
        for name, value in registry.snapshot().items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                current[name] = float(value)
                delta = current[name] - last.get(name, 0.0)
                if delta > 0:
                    self._series(name).add(now, delta, count=int(delta))
        self._last_counters = current

    # -- windowed reads ----------------------------------------------------

    def rate(
        self, name: str, window_s: Optional[int] = None, t: Optional[float] = None
    ) -> float:
        """Events per second over the trailing window (sum / window)."""
        ring = self.series.get(name)
        if ring is None:
            return 0.0
        now = self.clock() if t is None else t
        window = min(self.window_s, window_s or self.window_s)
        total, _count = ring.totals(now, window)
        return total / window

    def mean(
        self, name: str, window_s: Optional[int] = None, t: Optional[float] = None
    ) -> float:
        """Mean observed value over the trailing window (0 when empty)."""
        ring = self.series.get(name)
        if ring is None:
            return 0.0
        now = self.clock() if t is None else t
        total, count = ring.totals(now, window_s)
        return total / count if count else 0.0

    def snapshot(self, t: Optional[float] = None) -> dict[str, dict[str, float]]:
        """Windowed view of every tracked name, sorted, JSON-able."""
        now = self.clock() if t is None else t
        result: dict[str, dict[str, float]] = {}
        for name in sorted(self.series):
            total, count = self.series[name].totals(now)
            result[name] = {
                "window_s": self.window_s,
                "sum": round(total, 6),
                "count": count,
                "rate_per_s": round(total / self.window_s, 6),
            }
        return result


# -- the process-wide active time-series (None = windowing off) -------------

_timeseries: Optional[TimeSeries] = None


def get_timeseries() -> Optional[TimeSeries]:
    """The active time-series, or ``None`` when windowing is off."""
    return _timeseries


def set_timeseries(series: Optional[TimeSeries]) -> Optional[TimeSeries]:
    """Install (or clear, with ``None``) the series; returns the previous."""
    global _timeseries
    previous = _timeseries
    _timeseries = series
    return previous


class use_timeseries:
    """Context manager: window a region with a fresh (or given) series."""

    def __init__(self, series: Optional[TimeSeries] = None) -> None:
        self.series = series if series is not None else TimeSeries()
        self._previous: Optional[TimeSeries] = None

    def __enter__(self) -> TimeSeries:
        self._previous = set_timeseries(self.series)
        return self.series

    def __exit__(self, *exc_info: object) -> None:
        set_timeseries(self._previous)
