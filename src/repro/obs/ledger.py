"""The cross-run ledger: one summary record per instrumented run.

A crawl that runs on a schedule (the paper's Canon robot re-checked the
whole site routinely) needs run-over-run memory: was tonight's crawl
slower than last night's?  Did the error rate move?  The ledger is that
memory -- ``runs.jsonl`` under ``--state-dir`` (or ``--telemetry-dir``),
one appended JSON object per run, summarising the registry's view of
throughput, latency and errors::

    {"run": 3, "tool": "poacher", "wall_s": 12.4, "pages": 118,
     "pages_per_s": 9.5, "fetch_p95_ms": 80.1, "errors": 2, ...}

``python -m repro.tools.compare_runs`` diffs two such records and flags
throughput/latency/error-rate regressions; BENCH_*.json artefacts go
through the same comparator.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Optional, Union


def _histogram_summary(
    snapshot: dict[str, object], name: str, prefix: str
) -> dict[str, float]:
    value = snapshot.get(name)
    if not isinstance(value, dict) or "buckets" not in value:
        return {}
    return {
        f"{prefix}_p50_ms": value.get("p50", 0.0),
        f"{prefix}_p95_ms": value.get("p95", 0.0),
        f"{prefix}_p99_ms": value.get("p99", 0.0),
        f"{prefix}_mean_ms": value.get("mean", 0.0),
    }


def summarize_run(
    snapshot: dict[str, object],
    tool: str,
    wall_s: float,
    started_unix: Optional[float] = None,
) -> dict[str, object]:
    """A ledger record from one registry snapshot.

    Only scalar summaries are kept -- counts, rates and interpolated
    percentiles -- so a ledger line stays small however big the run
    was, and :mod:`repro.tools.compare_runs` can diff any two records
    numerically.
    """

    def count(name: str) -> int:
        value = snapshot.get(name, 0)
        return int(value) if isinstance(value, (int, float)) else 0

    documents = count("lint.files")
    pages = count("robot.pages.fetched")
    diagnostics = sum(
        count(f"lint.diagnostics.{category}")
        for category in ("error", "warning", "style")
    )
    errors = (
        count("lint.source_errors")
        + count("robot.fetch.failures")
        + count("robot.fetch.http_errors")
    )
    attempted = documents + count("robot.fetch.failures") + count(
        "robot.fetch.http_errors"
    )
    record: dict[str, object] = {
        "tool": tool,
        "started_unix": round(
            started_unix if started_unix is not None else time.time(), 3
        ),
        "wall_s": round(wall_s, 4),
        "documents": documents,
        "diagnostics": diagnostics,
        "pages": pages,
        "bytes_fetched": count("www.bytes_fetched"),
        "errors": errors,
        "error_rate": round(errors / attempted, 6) if attempted else 0.0,
        "cache_lint_hits": count("cache.lint.hits"),
        "revalidated": count("www.conditional.revalidated"),
        #: Pages restored from the frontier journal instead of crawled.
        "resumed_pages": count("robot.frontier.resumed_pages"),
        #: Completed pages a --resume had to fetch again (body evicted);
        #: the interrupted-crawl CI gate holds this at zero.
        "refetched_pages": count("robot.frontier.resume_refetched"),
    }
    # The streaming-report memory gauge (present only when a
    # MemorySampler ran); kilobytes keep the record readable and the
    # compare_runs ratio meaningful.
    memory = snapshot.get("report.memory.high_water_bytes")
    if isinstance(memory, dict):
        high_water = memory.get("max", memory.get("value", 0.0))
        if isinstance(high_water, (int, float)) and high_water > 0:
            record["report_high_water_kb"] = round(high_water / 1024.0, 1)
    # Daemon lifetimes: served/rejected request counts and the warm
    # request latency trio, so the sustained-QPS CI gate can diff two
    # daemon runs like any other tool's.
    requests = count("daemon.requests")
    if requests or "daemon.requests" in snapshot:
        record["requests"] = requests
        record["rejected"] = count("daemon.rejected")
        record.update(
            _histogram_summary(snapshot, "daemon.request_ms", "request")
        )
    if wall_s > 0:
        record["docs_per_s"] = round(documents / wall_s, 3)
        if pages:
            record["pages_per_s"] = round(pages / wall_s, 3)
        if requests:
            record["requests_per_s"] = round(requests / wall_s, 3)
    record.update(_histogram_summary(snapshot, "lint.check_ms", "lint"))
    record.update(_histogram_summary(snapshot, "robot.fetch.latency_ms", "fetch"))
    return record


class RunLedger:
    """Append-only ``runs.jsonl`` in a state/telemetry directory."""

    FILENAME = "runs.jsonl"

    def __init__(self, directory: Union[str, Path]) -> None:
        self.path = Path(directory) / self.FILENAME

    def append(self, record: dict[str, object]) -> dict[str, object]:
        """Append one record, stamping its 1-based ``run`` sequence."""
        existing = self.load()
        stamped = {"run": len(existing) + 1, **record}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(stamped, sort_keys=True) + "\n")
        return stamped

    def load(self) -> list[dict[str, object]]:
        """Every parseable record, oldest first (corrupt lines skipped)."""
        if not self.path.exists():
            return []
        records = []
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                records.append(record)
        return records

    def last(self, n: int = 2) -> list[dict[str, object]]:
        return self.load()[-n:]


def record_run(
    directory: Union[str, Path],
    snapshot: dict[str, object],
    tool: str,
    wall_s: float,
    clock: Callable[[], float] = time.time,
) -> dict[str, object]:
    """Convenience: summarize ``snapshot`` and append it in one step."""
    return RunLedger(directory).append(
        summarize_run(snapshot, tool, wall_s, started_unix=clock())
    )
