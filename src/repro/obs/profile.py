"""Opt-in per-rule and per-message-id profiling.

Answers "which rule is slow?" -- the question that motivated the paper's
weblint 2 rewrite ("hard to maintain and slow") and WebChecker's
per-constraint cost reporting.  Disabled by default; ``weblint
--profile`` (or :func:`set_profiler` / :class:`use_profiler`) installs a
:class:`RuleProfiler`.  The dispatch layer
(:meth:`repro.core.dispatch.DispatchTable.run_hooks`) then times every
hook invocation and attributes it to the owning rule's name, and
``CheckContext.emit`` counts message ids.  The active profiler is
resolved once per check (when the ``CheckContext`` is built), so
installing or removing one never mutates engine state mid-check.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class ProfileEntry:
    """Aggregated cost of one rule (or the engine itself)."""

    name: str
    calls: int = 0
    total_seconds: float = 0.0

    @property
    def total_ms(self) -> float:
        return self.total_seconds * 1000.0

    @property
    def per_call_us(self) -> float:
        return (self.total_seconds / self.calls) * 1e6 if self.calls else 0.0


class RuleProfiler:
    """Accumulates rule timings and message-id counts across documents."""

    def __init__(self) -> None:
        self.entries: dict[str, ProfileEntry] = {}
        self.message_counts: dict[str, int] = {}
        self.documents = 0

    # -- recording ---------------------------------------------------------

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        entry = self.entries.get(name)
        if entry is None:
            entry = self.entries[name] = ProfileEntry(name)
        entry.calls += calls
        entry.total_seconds += seconds

    def note_message(self, message_id: str) -> None:
        self.message_counts[message_id] = self.message_counts.get(message_id, 0) + 1

    def note_document(self) -> None:
        self.documents += 1

    # -- reporting ---------------------------------------------------------

    def top(self, n: int = 10) -> list[ProfileEntry]:
        """The ``n`` most expensive rules by cumulative time."""
        ranked = sorted(
            self.entries.values(), key=lambda e: e.total_seconds, reverse=True
        )
        return ranked[:n]

    def top_messages(self, n: int = 10) -> list[tuple[str, int]]:
        ranked = sorted(
            self.message_counts.items(), key=lambda item: (-item[1], item[0])
        )
        return ranked[:n]

    def render_report(self, n: int = 10) -> str:
        """The ``--profile`` table: top-N slowest rules, then message ids."""
        lines = [
            f"rule profile ({self.documents} document(s) checked)",
            f"  {'rule':24} {'calls':>8} {'total ms':>10} {'per call us':>12}",
        ]
        for entry in self.top(n):
            lines.append(
                f"  {entry.name:24} {entry.calls:>8} "
                f"{entry.total_ms:>10.2f} {entry.per_call_us:>12.1f}"
            )
        if not self.entries:
            lines.append("  (no rules profiled)")
        if self.message_counts:
            lines.append(f"  {'message id':24} {'emitted':>8}")
            for message_id, count in self.top_messages(n):
                lines.append(f"  {message_id:24} {count:>8}")
        return "\n".join(lines)

    def snapshot(self) -> dict[str, object]:
        return {
            "documents": self.documents,
            "rules": {
                entry.name: {
                    "calls": entry.calls,
                    "total_ms": round(entry.total_ms, 3),
                }
                for entry in self.top(len(self.entries) or 1)
            },
            "messages": dict(sorted(self.message_counts.items())),
        }

    def merge_snapshot(self, snapshot: dict[str, object]) -> None:
        """Fold another profiler's :meth:`snapshot` into this one.

        The batch pipeline's workers each profile their own documents;
        the parent merges them so ``--profile`` under ``--jobs N``
        reports whole-run totals.
        """
        self.documents += int(snapshot.get("documents", 0))
        for name, data in dict(snapshot.get("rules") or {}).items():
            self.add(
                name,
                float(data["total_ms"]) / 1000.0,
                calls=int(data["calls"]),
            )
        for message_id, count in dict(snapshot.get("messages") or {}).items():
            self.message_counts[message_id] = (
                self.message_counts.get(message_id, 0) + int(count)
            )


class timed_section:
    """Context manager recording one elapsed section into a profiler."""

    __slots__ = ("profiler", "name", "_start")

    def __init__(self, profiler: RuleProfiler, name: str) -> None:
        self.profiler = profiler
        self.name = name
        self._start = 0.0

    def __enter__(self) -> "timed_section":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.profiler.add(self.name, time.perf_counter() - self._start)


# -- the process-wide active profiler (None = profiling off) ---------------

_profiler: Optional[RuleProfiler] = None


def get_profiler() -> Optional[RuleProfiler]:
    """The active profiler, or ``None`` when profiling is off."""
    return _profiler


def set_profiler(profiler: Optional[RuleProfiler]) -> Optional[RuleProfiler]:
    """Install (or clear, with ``None``) the profiler; returns the previous."""
    global _profiler
    previous = _profiler
    _profiler = profiler
    return previous


class use_profiler:
    """Context manager: profile a region with a fresh (or given) profiler."""

    def __init__(self, profiler: Optional[RuleProfiler] = None) -> None:
        self.profiler = profiler if profiler is not None else RuleProfiler()
        self._previous: Optional[RuleProfiler] = None

    def __enter__(self) -> RuleProfiler:
        self._previous = set_profiler(self.profiler)
        return self.profiler

    def __exit__(self, *exc_info: object) -> None:
        set_profiler(self._previous)
