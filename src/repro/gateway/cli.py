"""``weblint-gateway`` -- run the gateway as a CGI-style command.

Reads a urlencoded form from ``QUERY_STRING``, stdin, or a command-line
argument, and writes the CGI response to stdout.  This is the "standard
gateway distribution, particularly for installation behind firewalls"
users kept asking the author for (section 4.6).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.gateway.forms import parse_query_string
from repro.gateway.gateway import Gateway
from repro.www.client import UserAgent
from repro.www.virtualweb import VirtualWeb


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="weblint-gateway",
        description="weblint CGI gateway (reads an urlencoded form)",
    )
    parser.add_argument(
        "form",
        nargs="?",
        help="urlencoded form data (default: $QUERY_STRING, then stdin)",
    )
    parser.add_argument(
        "--site-dir",
        metavar="DIR",
        help="serve DIR as http://localhost/ so url= fields resolve locally",
    )
    parser.add_argument(
        "--no-header",
        action="store_true",
        help="print only the HTML body, without the CGI header block",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="serve the gateway over HTTP instead of acting as a CGI "
        "(the 'standard gateway distribution' of paper section 4.6)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port for --serve (default: an ephemeral port)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        metavar="N",
        help="with --serve: pre-warmed lint workers (0 = one per CPU)",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        metavar="N",
        help="with --serve: max in-flight requests before 429",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    form_text = args.form
    if form_text is None:
        form_text = os.environ.get("QUERY_STRING", "")
        if not form_text and not sys.stdin.isatty():
            form_text = sys.stdin.read()

    web = VirtualWeb()
    agent = None
    if args.site_dir:
        web.add_site("http://localhost/", args.site_dir)
        agent = UserAgent(web)

    gateway = Gateway(agent=agent)

    if args.serve:
        # The served gateway is daemon-backed: warm per-options services
        # and admission control, not a LintService rebuilt per request.
        from repro.daemon.daemon import LintDaemon
        from repro.www.server import HTTPServer

        daemon = LintDaemon(jobs=args.jobs, queue_limit=args.queue_limit).start()
        gateway.service_provider = daemon.service_for
        with HTTPServer(web, port=args.port, gateway=gateway, daemon=daemon) as server:
            sys.stdout.write(
                f"weblint gateway listening on "
                f"{server.base_url}/weblint (Ctrl-C to stop)\n"
            )
            sys.stdout.flush()
            try:
                import time

                while True:
                    time.sleep(1)
            except KeyboardInterrupt:
                pass
            finally:
                daemon.shutdown()
        return 0
    response = gateway.handle(parse_query_string(form_text.strip()))
    if args.no_header:
        sys.stdout.write(response.body)
    else:
        sys.stdout.write(response.as_cgi())
    return 0 if response.status == 200 else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
