"""CGI form decoding, from scratch.

Implements ``application/x-www-form-urlencoded`` parsing (percent
decoding, ``+`` as space, repeated keys) -- the input side of a CGI
gateway.  No :mod:`urllib` involved, so the behaviour is wholly specified
and property-tested here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

_HEX = "0123456789abcdefABCDEF"


def percent_decode(text: str, plus_as_space: bool = True) -> str:
    """Decode %XX escapes (and optionally '+' as space)."""
    out: list[str] = []
    index = 0
    length = len(text)
    pending = bytearray()

    def flush() -> None:
        if pending:
            out.append(pending.decode("utf-8", errors="replace"))
            pending.clear()

    while index < length:
        char = text[index]
        if char == "%" and index + 2 < length + 1:
            hex_pair = text[index + 1 : index + 3]
            if len(hex_pair) == 2 and all(c in _HEX for c in hex_pair):
                pending.append(int(hex_pair, 16))
                index += 3
                continue
        flush()
        if char == "+" and plus_as_space:
            out.append(" ")
        else:
            out.append(char)
        index += 1
    flush()
    return "".join(out)


def percent_encode(text: str, safe: str = "-._~") -> str:
    """Encode for a query string (space becomes '+')."""
    out: list[str] = []
    for byte in text.encode("utf-8"):
        char = chr(byte)
        if char.isalnum() and char.isascii() or char in safe:
            out.append(char)
        elif char == " ":
            out.append("+")
        else:
            out.append(f"%{byte:02X}")
    return "".join(out)


@dataclass
class FormData:
    """Parsed form fields; repeated names keep every value."""

    fields: dict[str, list[str]] = field(default_factory=dict)

    def get(self, name: str, default: str = "") -> str:
        values = self.fields.get(name)
        return values[0] if values else default

    def get_all(self, name: str) -> list[str]:
        return list(self.fields.get(name, []))

    def __contains__(self, name: str) -> bool:
        return bool(self.fields.get(name))

    def add(self, name: str, value: str) -> None:
        self.fields.setdefault(name, []).append(value)


def parse_query_string(query: str) -> FormData:
    """Parse ``a=1&b=two+words&b=3`` into a :class:`FormData`."""
    form = FormData()
    if query.startswith("?"):
        query = query[1:]
    for pair in query.split("&"):
        if not pair:
            continue
        name, sep, value = pair.partition("=")
        name = percent_decode(name)
        value = percent_decode(value) if sep else ""
        form.add(name, value)
    return form


def parse_form(body: str) -> FormData:
    """Parse a POSTed urlencoded body (same syntax as a query string)."""
    return parse_query_string(body)


def encode_form(fields: dict[str, str]) -> str:
    """Inverse of :func:`parse_query_string` for single-valued fields."""
    return "&".join(
        f"{percent_encode(name)}={percent_encode(value)}"
        for name, value in fields.items()
    )
