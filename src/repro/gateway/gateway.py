"""The gateway proper: one form submission in, one HTML report out.

Form fields (mirroring the classic weblint gateways):

``url``
    Fetch this URL (through the gateway's :class:`UserAgent`) and check it.
``html``
    Pasted HTML to check directly.
``upload``
    Uploaded file content (treated like ``html`` but named).
``spec``
    HTML version to check against (``html40``, ``html32``, ``netscape``...).
``pedantic``
    Any non-empty value enables every message.
``enable`` / ``disable``
    Repeatable message ids or categories.

Exactly one of ``url``/``html``/``upload`` must be supplied.  The
response embeds the weblint warnings into a generated page -- via an
:class:`~repro.core.reporter.HTMLReporter` subclass, the customisation
hook the paper calls out in section 5.6 -- along with the WebTechs-style
page-weight table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.config.options import Options, UnknownMessageError
from repro.config.presets import apply_preset
from repro.core.diagnostics import Diagnostic
from repro.core.reporter import HTMLReporter
from repro.core.service import LintRequest, LintService, StringSource, URLSource
from repro.gateway.forms import FormData
from repro.gateway.htmlreport import (
    escape,
    estimate_page_weight,
    render_page,
    render_stats_table,
    render_table,
)
from repro.obs.metrics import get_registry
from repro.www.client import UserAgent


class GatewayReporter(HTMLReporter):
    """The gateway's warnings subclass (paper section 5.6).

    Adds a category legend suited to the web page context and links each
    message id to an explanation anchor.
    """

    name = "gateway"

    def format(self, diagnostic: Diagnostic) -> str:
        text = escape(diagnostic.text)
        category = diagnostic.category.value
        return (
            f'  <li class="weblint-{category}">'
            f"[{category}] <b>line {diagnostic.line}</b>: {text} "
            f'<a href="#msg-{diagnostic.message_id}">({diagnostic.message_id})</a>'
            f"</li>"
        )


@dataclass
class GatewayResponse:
    """What the gateway hands back to its web server."""

    status: int
    body: str
    content_type: str = "text/html"

    def as_cgi(self) -> str:
        """Render with the CGI header block."""
        return (
            f"Status: {self.status}\r\n"
            f"Content-Type: {self.content_type}\r\n"
            f"\r\n{self.body}"
        )


class Gateway:
    """Handle weblint gateway form submissions."""

    def __init__(
        self,
        agent: Optional[UserAgent] = None,
        reporter: Optional[HTMLReporter] = None,
        service_provider: Optional[Callable[[Options], LintService]] = None,
    ) -> None:
        self.agent = agent
        self.reporter = reporter if reporter is not None else GatewayReporter()
        #: Where this gateway's services come from.  The CGI mode builds
        #: one per request (the paper's one-process-per-request shape);
        #: a daemon passes ``daemon.service_for`` so repeat options hit
        #: an already-warm service with compiled dispatch tables.
        self.service_provider = service_provider

    # -- request handling -----------------------------------------------------------

    def handle(self, form: FormData) -> GatewayResponse:
        """Process one submission."""
        sources = [name for name in ("url", "html", "upload") if name in form]
        if len(sources) != 1:
            return self._error(
                400,
                "Provide exactly one of: a URL, pasted HTML, or an uploaded file.",
            )

        try:
            options = self._build_options(form)
        except (UnknownMessageError, ValueError, KeyError) as exc:
            return self._error(400, f"Bad options: {exc}")

        if self.service_provider is not None:
            service = self.service_provider(options)
        else:
            service = LintService(options=options)
        source_kind = sources[0]
        label = "pasted HTML"
        # keep_text=True shares the single fetch/read between linting and
        # the page-weight table -- the page is never fetched twice.
        if source_kind == "url":
            url = form.get("url")
            label = url
            request = LintRequest(URLSource(url, agent=self.agent), keep_text=True)
        else:
            if source_kind == "upload":
                label = form.get("filename", "uploaded file")
            request = LintRequest(
                StringSource(form.get(source_kind), name=label), keep_text=True
            )
        result = service.check(request)
        if result.error is not None:
            return self._error(502, f"Could not fetch the page: {result.error}")
        diagnostics = result.diagnostics
        body = result.text or ""

        return GatewayResponse(
            status=200,
            body=self._render_report(
                label,
                body,
                diagnostics,
                options,
                include_stats=bool(form.get("stats")),
            ),
        )

    # -- helpers -----------------------------------------------------------------------

    def _build_options(self, form: FormData) -> Options:
        options = Options.with_defaults()
        spec = form.get("spec")
        if spec:
            options.spec_name = spec
        if form.get("pedantic"):
            apply_preset(options, "pedantic")
        preset = form.get("preset")
        if preset:
            apply_preset(options, preset)
        for identifier in form.get_all("enable"):
            options.enable(identifier)
        for identifier in form.get_all("disable"):
            options.disable(identifier)
        return options

    def _render_report(
        self,
        label: str,
        body: str,
        diagnostics: list[Diagnostic],
        options: Options,
        include_stats: bool = False,
    ) -> str:
        fragments = [
            f"<p>Report for <code>{escape(label)}</code> "
            f"(checked against {escape(options.spec_name)}).</p>",
            self.reporter.report(diagnostics),
        ]
        if body:
            weight = estimate_page_weight(body)
            fragments.append("<h2>Page weight</h2>")
            fragments.append(render_table(weight.rows(), summary="page weight"))
        if include_stats:
            # The form's stats=1 field: lint/fetch metrics for this
            # gateway process (docs/observability.md).
            fragments.append("<h2>Checker statistics</h2>")
            fragments.append(render_stats_table(get_registry().snapshot()))
        return render_page("Weblint gateway report", fragments)

    def _error(self, status: int, message: str) -> GatewayResponse:
        return GatewayResponse(
            status=status,
            body=render_page("Weblint gateway error", [f"<p>{escape(message)}</p>"]),
        )
