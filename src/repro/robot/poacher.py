"""Poacher: crawl a site, weblint every page, validate every link.

The paper's poacher "can be used to invoke weblint on all accessible
pages on a site ... Poacher also performs basic link validation"
(section 4.5).  The robot for Canon's public search engine "uses weblint
to check all of Canon's public web pages" (section 5.3) -- the embedding
this class makes a one-liner::

    report = Poacher(agent).crawl("http://site/")
    report.total_problems()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Union

from repro.config.options import Options
from repro.core.diagnostics import Diagnostic
from repro.core.linter import Weblint
from repro.core.service import LintResult, LintService, StringSource
from repro.robot.frontier import FrontierJournal, shard_owns
from repro.robot.linkcheck import FragmentChecker, LinkChecker, LinkStatus
from repro.robot.traversal import CrawlProgress, Robot, TraversalPolicy
from repro.site.links import Link
from repro.site.rollup import PAGES_FILENAME, ROLLUP_FILENAME, PageSpill, SiteRollup
from repro.www.client import UserAgent
from repro.www.message import Response


@dataclass
class PageResult:
    """Everything poacher learned about one page."""

    url: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    links: list[Link] = field(default_factory=list)
    broken_links: list[tuple[Link, LinkStatus]] = field(default_factory=list)
    moved_links: list[tuple[Link, LinkStatus]] = field(default_factory=list)
    bad_fragments: list[Link] = field(default_factory=list)
    size_bytes: int = 0

    def problem_count(self) -> int:
        return (
            len(self.diagnostics)
            + len(self.broken_links)
            + len(self.bad_fragments)
        )


@dataclass
class CrawlReport:
    """Site-wide crawl summary."""

    start_url: str
    pages: list[PageResult] = field(default_factory=list)
    #: URLs that never produced an HTTP response (transport failures).
    pages_failed: int = 0
    #: URLs whose final response was a persistent non-2xx status.
    pages_http_error: int = 0
    urls_skipped_robots: int = 0
    #: (url, status) for every persistent HTTP error -- broken pages.
    broken_pages: list[tuple[str, int]] = field(default_factory=list)
    #: (url, error text) for every transport failure.
    unreachable_pages: list[tuple[str, str]] = field(default_factory=list)

    def page(self, url: str) -> Optional[PageResult]:
        for result in self.pages:
            if result.url == url:
                return result
        return None

    def total_problems(self) -> int:
        return sum(page.problem_count() for page in self.pages)

    def total_broken_links(self) -> int:
        return sum(len(page.broken_links) for page in self.pages)

    def clean_pages(self) -> list[str]:
        return [page.url for page in self.pages if page.problem_count() == 0]

    def summary_lines(self) -> list[str]:
        """A human-readable crawl summary (what the CLI prints)."""
        lines = [
            f"poacher: crawled {len(self.pages)} page(s) from {self.start_url}",
        ]
        for page in self.pages:
            lines.append(
                f"  {page.url}: {len(page.diagnostics)} weblint message(s), "
                f"{len(page.broken_links)} broken link(s)"
            )
            for link, status in page.broken_links:
                lines.append(
                    f"    line {link.line}: broken link {link.url} "
                    f"({status.describe()})"
                )
            for link, status in page.moved_links:
                lines.append(
                    f"    line {link.line}: link {link.url} has moved "
                    f"({status.describe()})"
                )
            for link in page.bad_fragments:
                lines.append(
                    f"    line {link.line}: fragment of {link.url} "
                    f"is not defined on the target page"
                )
        for url, status in self.broken_pages:
            lines.append(f"  broken page {url}: HTTP {status}")
        for url, error in self.unreachable_pages:
            lines.append(f"  unreachable page {url}: {error}")
        lines.append(
            f"total: {self.total_problems()} problem(s), "
            f"{self.total_broken_links()} broken link(s)"
        )
        return lines


class Poacher:
    """The crawling front-end to weblint."""

    def __init__(
        self,
        agent: UserAgent,
        weblint: Optional[Weblint] = None,
        options: Optional[Options] = None,
        policy: Optional[TraversalPolicy] = None,
        service: Optional[LintService] = None,
        journal: Optional[FrontierJournal] = None,
    ) -> None:
        self.agent = agent
        if service is None:
            if weblint is not None:
                service = weblint.service
            else:
                service = LintService(options=options)
        self.service = service
        self.weblint = weblint
        self.options = service.options
        self.policy = policy if policy is not None else TraversalPolicy()
        self.robot = Robot(agent, self.policy, journal=journal)
        self.link_checker = LinkChecker(agent)
        self.fragment_checker = FragmentChecker(agent)

    def crawl(
        self,
        start_url: str,
        progress: Optional[CrawlProgress] = None,
        resume: bool = False,
    ) -> CrawlReport:
        """Crawl, lint and link-check everything reachable.

        ``progress`` (built with ``CrawlProgress(poacher.robot, ...)``)
        renders a live one-line report on its stream for the duration
        of the crawl.  ``resume=True`` (requires a journal) replays a
        killed crawl's persisted frontier before fetching anything new;
        the merged report is identical to an uninterrupted crawl's.
        """
        report = CrawlReport(start_url=start_url)
        validate = self.options.follow_links

        def on_page(url: str, response: Response, links: list[Link]) -> None:
            result = PageResult(
                url=url,
                diagnostics=self.service.check(
                    StringSource(response.body, name=url)
                ).diagnostics,
                links=links,
                size_bytes=len(response.body),
            )
            if validate:
                check_fragments = self.options.is_enabled(
                    "bad-fragment"
                )
                for link in links:
                    if link.is_fragment_only:
                        if check_fragments and (
                            self.fragment_checker.fragment_defined(
                                url, link.url
                            )
                            is False
                        ):
                            result.bad_fragments.append(link)
                        continue
                    if not link.checkable:
                        continue
                    status = self.link_checker.check(url, link.url)
                    if status.broken:
                        result.broken_links.append((link, status))
                        continue
                    if status.redirected_to:
                        result.moved_links.append((link, status))
                    if check_fragments and "#" in link.url:
                        if (
                            self.fragment_checker.fragment_defined(
                                url, link.url
                            )
                            is False
                        ):
                            result.bad_fragments.append(link)
            report.pages.append(result)

        self.robot.crawl(start_url, on_page, progress=progress, resume=resume)
        # Pages arrive in completion order; the canonical report sorts
        # by URL so any worker count yields identical bytes.
        report.pages.sort(key=lambda page: page.url)
        stats = self.robot.stats
        report.pages_failed = stats.pages_failed
        report.pages_http_error = stats.pages_http_error
        report.urls_skipped_robots = stats.urls_skipped_robots
        report.broken_pages = sorted(stats.http_error_urls.items())
        report.unreachable_pages = sorted(stats.failed_urls.items())
        return report

    def crawl_stream(
        self,
        start_url: str,
        report_dir: Optional[Union[str, Path]] = None,
        progress: Optional[CrawlProgress] = None,
        resume: bool = False,
        on_result: Optional[Callable[[LintResult], None]] = None,
    ) -> SiteRollup:
        """Crawl and roll up, never holding the whole audit in memory.

        The streaming counterpart of :meth:`crawl`: each page is linted
        and link-checked the moment the frontier completes it, its link
        problems become real ``bad-link`` / ``bad-fragment``
        diagnostics, and everything folds into a bounded
        :class:`~repro.site.rollup.SiteRollup`.  With ``report_dir``
        the full per-page diagnostics spill to
        ``report_dir/pages.jsonl`` and the rollup is saved as
        ``rollup.json`` when the crawl ends.  ``on_result`` observes
        every page as a ``LintResult`` in completion order -- what
        ``poacher --format jsonl`` streams to stdout.

        With ``TraversalPolicy.shards > 1`` only the owned partition of
        pages (and of crawl failures) is rolled up; merge the shard
        report directories with ``repro.tools.merge_shards``.
        (Unlike :meth:`crawl`'s report, the rollup does not track
        merely *moved* links -- redirects are not problems.)
        """
        rollup = SiteRollup(root=start_url)
        spill: Optional[PageSpill] = None
        if report_dir is not None:
            report_dir = Path(report_dir)
            spill = PageSpill(report_dir / PAGES_FILENAME)
        validate = self.options.follow_links
        check_fragments = validate and self.options.is_enabled("bad-fragment")
        check_links = validate and self.options.is_enabled("bad-link")

        def link_findings(url: str, links: list[Link]) -> list[Diagnostic]:
            findings: list[Diagnostic] = []
            for link in links:
                if link.is_fragment_only:
                    if check_fragments and (
                        self.fragment_checker.fragment_defined(url, link.url)
                        is False
                    ):
                        findings.append(self._fragment_diagnostic(url, link))
                    continue
                if not link.checkable:
                    continue
                status = self.link_checker.check(url, link.url)
                if status.broken:
                    if check_links:
                        findings.append(Diagnostic.build(
                            "bad-link",
                            line=link.line,
                            filename=url,
                            target=link.url,
                            status=status.describe(),
                        ))
                    continue
                if check_fragments and "#" in link.url and (
                    self.fragment_checker.fragment_defined(url, link.url)
                    is False
                ):
                    findings.append(self._fragment_diagnostic(url, link))
            return findings

        def on_page(url: str, response: Response, links: list[Link]) -> None:
            diagnostics = list(
                self.service.check(
                    StringSource(response.body, name=url)
                ).diagnostics
            )
            if validate:
                diagnostics.extend(link_findings(url, links))
            rollup.add_page(url, diagnostics)
            if spill is not None:
                spill.write_page(url, diagnostics)
            if on_result is not None:
                on_result(LintResult(name=url, diagnostics=diagnostics))

        try:
            self.robot.crawl(
                start_url, on_page, progress=progress, resume=resume
            )
            # Crawl failures fold in at the end, filtered to this
            # shard's partition (every shard fetches everything, so
            # unfiltered counts would multiply under a merge).
            shards, shard = self.policy.shards, self.policy.shard
            stats = self.robot.stats
            for url, status in sorted(stats.http_error_urls.items()):
                if not shard_owns(url, shards, shard):
                    continue
                error = f"HTTP {status}"
                rollup.note_page_error()
                if spill is not None:
                    spill.write_page(url, (), error=error)
                if on_result is not None:
                    on_result(LintResult(name=url, error=error))
            for url, error in sorted(stats.failed_urls.items()):
                if not shard_owns(url, shards, shard):
                    continue
                rollup.note_page_error()
                if spill is not None:
                    spill.write_page(url, (), error=error)
                if on_result is not None:
                    on_result(LintResult(name=url, error=error))
        finally:
            if spill is not None:
                spill.close()
        if report_dir is not None:
            rollup.save(Path(report_dir) / ROLLUP_FILENAME)
        return rollup

    def _fragment_diagnostic(self, url: str, link: Link) -> Diagnostic:
        target, _, fragment = link.url.partition("#")
        return Diagnostic.build(
            "bad-fragment",
            line=link.line,
            filename=url,
            target=target or "this page",
            fragment=fragment,
        )
