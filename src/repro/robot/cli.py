"""The ``poacher`` command: crawl a site directory and report.

Since the reproduction has no live network, the command mounts a local
directory as ``http://localhost/`` on a virtual web and crawls that --
the same code path a networked poacher would follow, end to end
(robots.txt included if the directory contains one).

The resilience layer is fully scriptable: ``--retries``/``--backoff``/
``--timeout`` configure the transport-level retry policy,
``--breaker-after`` the per-host circuit breaker, ``--frontier-jobs``/
``--host-delay`` the concurrent crawl frontier, and ``--fault-rate``/
``--fault-seed`` inject deterministic transient 503s into the mounted
site so the whole stack can be exercised without a hostile network.

``--state-dir DIR`` makes the crawl *incremental*: HTTP validators,
lint results and the frontier journal persist under DIR, so a second
run revalidates unchanged pages with conditional fetches (``304 Not
Modified``) and serves their lint results from the cache -- only
changed pages pay for transfer and linting.  ``--resume`` replays the
journal of a killed crawl: completed pages are restored from the body
store without refetching and only the unfinished frontier is crawled.
See docs/caching.md and docs/user-guide.md.

Telemetry: ``--progress`` renders a live one-line crawl report on
stderr (pages done/in flight/failed, pages/s, cache-hit ratio, ETA);
``--telemetry-dir DIR`` streams events to ``DIR/events.jsonl`` and
writes ``DIR/metrics.jsonl`` + ``DIR/metrics.prom`` snapshots.  Every
run with ``--state-dir`` or ``--telemetry-dir`` appends a summary to
``runs.jsonl`` for ``python -m repro.tools.compare_runs``.  See
docs/observability.md.

Streaming audits: ``--format jsonl`` emits one JSON object per page as
it resolves (the weblint ``-f jsonl`` shape, keyed by URL) instead of
the buffered summary, and ``--shards N --shard K`` runs the bounded
streaming pipeline over the K-th of N URL partitions, writing
``rollup.json`` + ``pages.jsonl`` + ``report.txt`` + ``metrics.json``
under ``--state-dir``'s report directory.  Run every shard (they can
share the state dir -- the caches make the overlap cheap), then fold
the shard directories into one canonical report with ``python -m
repro.tools.merge_shards STATE_DIR``.  See docs/architecture.md
("Streaming reports").
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.config.options import Options
from repro.core.cache import ResultCache
from repro.core.reporter import JsonlReporter
from repro.core.service import LintService
from repro.obs import (
    MemorySampler,
    TelemetrySink,
    TimeSeries,
    record_run,
    use_event_log,
    use_registry,
    use_timeseries,
)
from repro.obs.events import NULL_EVENT_LOG
from repro.robot.frontier import FrontierJournal
from repro.robot.poacher import Poacher
from repro.robot.traversal import CrawlProgress, TraversalPolicy
from repro.site.report import render_text_report
from repro.www.client import CircuitBreaker, RetryPolicy, UserAgent
from repro.www.httpcache import HttpCache
from repro.www.virtualweb import VirtualWeb


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="poacher",
        description="crawl a site, weblint every page, validate every link",
    )
    parser.add_argument(
        "site_dir",
        help="directory served as http://localhost/ for the crawl",
    )
    parser.add_argument(
        "--start",
        default="http://localhost/index.html",
        help="start URL (default %(default)s)",
    )
    parser.add_argument(
        "--max-pages",
        type=int,
        default=1000,
        help="crawl at most this many pages",
    )
    parser.add_argument(
        "--ignore-robots",
        action="store_true",
        help="do not honour robots.txt",
    )
    parser.add_argument(
        "--no-links",
        action="store_true",
        help="skip link validation (lint only)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="retry transient failures (transport errors, 5xx, 429) up "
        "to N extra times with exponential backoff",
    )
    parser.add_argument(
        "--backoff",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="base backoff between retries (default %(default)s)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request timeout (default: none)",
    )
    parser.add_argument(
        "--breaker-after",
        type=int,
        default=0,
        metavar="N",
        help="open a per-host circuit breaker after N consecutive "
        "failures (0 = disabled)",
    )
    parser.add_argument(
        "--frontier-jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help="fetch the crawl frontier with N worker threads "
        "(default 1 = sequential; the report is identical either way)",
    )
    parser.add_argument(
        "--host-delay",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="politeness: minimum delay between fetches to one host",
    )
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        metavar="P",
        help="inject deterministic transient 503s into P of all "
        "requests (0..1; exercises the retry path)",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        metavar="N",
        help="seed for --fault-rate fault placement",
    )
    parser.add_argument(
        "--state-dir",
        metavar="DIR",
        default=None,
        help="persist crawl state (HTTP validators, lint results, the "
        "frontier journal) under DIR so a re-crawl revalidates "
        "unchanged pages instead of re-fetching and re-linting them",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue an interrupted crawl from the journal under "
        "--state-dir: completed pages are restored without refetching",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print crawl metrics (fetches, retries, latency "
        "percentiles, slowest URLs) to stderr after the report",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="render a live one-line crawl progress report on stderr "
        "(pages done/in flight/failed, pages/s, cache hits, ETA)",
    )
    parser.add_argument(
        "--telemetry-dir",
        metavar="DIR",
        default=None,
        help="stream structured events to DIR/events.jsonl and write "
        "metric snapshots to DIR/metrics.jsonl and DIR/metrics.prom",
    )
    parser.add_argument(
        "--format",
        "-f",
        choices=("summary", "jsonl"),
        default="summary",
        help="report format: the buffered crawl summary (default) or "
        "one JSON object per page streamed as each page resolves",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="streaming sharded audit: roll up only this process's "
        "partition of the site's URLs, writing rollup.json and "
        "pages.jsonl under --state-dir for repro.tools.merge_shards "
        "(N=1 streams the whole site)",
    )
    parser.add_argument(
        "--shard",
        type=int,
        default=0,
        metavar="K",
        help="which of the --shards partitions to audit (0-based)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.resume and not args.state_dir:
        parser.error("--resume requires --state-dir")
    if args.shards is not None:
        if not args.state_dir:
            parser.error("--shards requires --state-dir")
        if args.shards < 1:
            parser.error("--shards must be at least 1")
        if not 0 <= args.shard < args.shards:
            parser.error("--shard must be between 0 and --shards - 1")

    web = VirtualWeb()
    web.add_site("http://localhost/", args.site_dir)
    if args.fault_rate > 0.0:
        web.faults.seed = args.fault_seed
        web.add_fault(rate=args.fault_rate, status=503, times=None)
    http_cache = None
    result_cache = None
    journal = None
    if args.state_dir:
        state = Path(args.state_dir)
        http_cache = HttpCache(state / "http")
        http_cache.load()
        result_cache = ResultCache(state / "lint")
        # Each frontier checkpoint also persists the HTTP index, so a
        # kill between checkpoints costs at most checkpoint_every pages
        # of conditional refetches -- never completed-page bodies.
        journal = FrontierJournal(
            state / "frontier", on_checkpoint=lambda: http_cache.save()
        )
    agent = UserAgent(
        web,
        retry=RetryPolicy(max_retries=max(0, args.retries),
                          backoff_base_s=args.backoff),
        breaker=(
            CircuitBreaker(failure_threshold=args.breaker_after)
            if args.breaker_after > 0 else None
        ),
        timeout_s=args.timeout,
        http_cache=http_cache,
    )

    options = Options.with_defaults()
    options.follow_links = not args.no_links
    policy = TraversalPolicy(
        max_pages=args.max_pages,
        obey_robots_txt=not args.ignore_robots,
        concurrency=max(1, args.frontier_jobs),
        per_host_delay_s=max(0.0, args.host_delay),
        shards=args.shards or 1,
        shard=args.shard if args.shards is not None else 0,
    )
    poacher = Poacher(
        agent,
        service=LintService(options=options, cache=result_cache),
        policy=policy,
        journal=journal,
    )
    sink = TelemetrySink(args.telemetry_dir) if args.telemetry_dir else None
    event_log = sink.open_event_log() if sink is not None else NULL_EVENT_LOG
    started = time.time()
    start_perf = time.perf_counter()
    with use_registry() as registry, use_timeseries(TimeSeries()), \
            use_event_log(event_log):
        progress = (
            CrawlProgress(poacher.robot, sys.stderr)
            if args.progress else None
        )
        if args.shards is not None or args.format == "jsonl":
            return _run_stream(
                args, poacher, http_cache, registry, sink, progress,
                started, start_perf,
            )
        report = poacher.crawl(
            args.start, progress=progress, resume=args.resume
        )
        if http_cache is not None:
            http_cache.save()

        for line in report.summary_lines():
            sys.stdout.write(line + "\n")
        for page in report.pages:
            for diagnostic in page.diagnostics:
                sys.stdout.write(f"{diagnostic}\n")
        if args.stats:
            _print_stats(registry, poacher.robot.stats, sys.stderr)
        wall_s = time.perf_counter() - start_perf
        ledger_dir = args.state_dir or args.telemetry_dir
        if ledger_dir:
            record_run(
                ledger_dir, registry.snapshot(), "poacher", wall_s,
                clock=lambda: started,
            )
        if sink is not None:
            sink.close(registry)
    return 1 if report.total_problems() else 0


def _run_stream(
    args, poacher, http_cache, registry, sink, progress, started, start_perf
) -> int:
    """The streaming audit: bounded rollup, optional shard partition.

    Runs inside main()'s registry/event-log context.  The memory
    sampler is only armed for sharded audits (``--shards``): that is
    the site-scale path whose flat-memory claim the
    ``report.memory.high_water_bytes`` gauge exists to prove, and
    tracemalloc tracing is not free.
    """
    report_dir = None
    if args.state_dir:
        report_dir = Path(args.state_dir) / "report"
        shards = args.shards or 1
        if shards > 1:
            report_dir = report_dir / f"shard-{args.shard}-of-{shards}"
    sampler = MemorySampler().start() if args.shards is not None else None
    reporter = None
    on_result = None
    if args.format == "jsonl":
        reporter = JsonlReporter().begin(sys.stdout)
        on_result = reporter.emit
    rollup = poacher.crawl_stream(
        args.start,
        report_dir=report_dir,
        progress=progress,
        resume=args.resume,
        on_result=on_result,
    )
    if http_cache is not None:
        http_cache.save()
    if reporter is not None:
        reporter.end()
    else:
        sys.stdout.write(render_text_report(rollup) + "\n")
    if args.stats:
        _print_stats(registry, poacher.robot.stats, sys.stderr)
    if sampler is not None:
        sampler.stop()  # final sample lands before the snapshot below
    wall_s = time.perf_counter() - start_perf
    snapshot = registry.snapshot()
    if report_dir is not None:
        # crawl_stream saved rollup.json here already; report.txt and
        # metrics.json complete the shard's mergeable report directory.
        (report_dir / "report.txt").write_text(
            render_text_report(rollup) + "\n", encoding="utf-8"
        )
        (report_dir / "metrics.json").write_text(
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    ledger_dir = args.state_dir or args.telemetry_dir
    if ledger_dir:
        record_run(
            ledger_dir, snapshot, "poacher", wall_s, clock=lambda: started
        )
    if sink is not None:
        sink.close(registry)
    return 1 if rollup.total_messages else 0


def _print_stats(registry, crawl_stats, stream) -> None:
    stream.write("poacher stats:\n")
    for line in registry.summary_lines(
        defaults=(
            "robot.pages.fetched",
            "robot.frontier.admitted",
            "robot.frontier.resumed_pages",
            "robot.fetch.retries",
            "robot.fetch.http_errors",
            "robot.fetch.latency_ms",
            "www.retry.attempts",
            "www.conditional.revalidated",
            "cache.lint.hits",
        )
    ):
        stream.write(f"  {line}\n")
    if crawl_stats.host_slots:
        stream.write("  host slots:\n")
        for host, slot in crawl_stats.host_slots.items():
            stream.write(
                f"    {host}: {slot['fetches']:g} fetch(es), "
                f"max {slot['max_in_flight']:g} in flight, "
                f"waited {slot['wait_ms']:g} ms\n"
            )
    slowest = crawl_stats.slowest()
    if slowest:
        stream.write("  slowest fetches:\n")
        for url, latency_ms in slowest:
            stream.write(f"    {url}: {latency_ms:.2f} ms\n")


if __name__ == "__main__":  # pragma: no cover
    try:
        code = main()
    except BrokenPipeError:
        # --format jsonl piped into head/jq and the reader went away:
        # die quietly with the conventional SIGPIPE status, and point
        # stdout at devnull so the interpreter's exit-time flush does
        # not raise the same error again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        code = 128 + 13
    raise SystemExit(code)
