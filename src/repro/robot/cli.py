"""The ``poacher`` command: crawl a site directory and report.

Since the reproduction has no live network, the command mounts a local
directory as ``http://localhost/`` on a virtual web and crawls that --
the same code path a networked poacher would follow, end to end
(robots.txt included if the directory contains one).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.config.options import Options
from repro.core.service import LintService
from repro.obs import use_registry
from repro.robot.poacher import Poacher
from repro.robot.traversal import TraversalPolicy
from repro.www.client import UserAgent
from repro.www.virtualweb import VirtualWeb


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="poacher",
        description="crawl a site, weblint every page, validate every link",
    )
    parser.add_argument(
        "site_dir",
        help="directory served as http://localhost/ for the crawl",
    )
    parser.add_argument(
        "--start",
        default="http://localhost/index.html",
        help="start URL (default %(default)s)",
    )
    parser.add_argument(
        "--max-pages",
        type=int,
        default=1000,
        help="crawl at most this many pages",
    )
    parser.add_argument(
        "--ignore-robots",
        action="store_true",
        help="do not honour robots.txt",
    )
    parser.add_argument(
        "--no-links",
        action="store_true",
        help="skip link validation (lint only)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="re-fetch failing URLs up to N extra times",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print crawl metrics (fetches, retries, per-URL latency) "
        "to stderr after the report",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    web = VirtualWeb()
    web.add_site("http://localhost/", args.site_dir)
    agent = UserAgent(web)

    options = Options.with_defaults()
    options.follow_links = not args.no_links
    policy = TraversalPolicy(
        max_pages=args.max_pages,
        obey_robots_txt=not args.ignore_robots,
        max_retries=args.retries,
    )
    poacher = Poacher(
        agent, service=LintService(options=options), policy=policy
    )
    with use_registry() as registry:
        report = poacher.crawl(args.start)

        for line in report.summary_lines():
            sys.stdout.write(line + "\n")
        for page in report.pages:
            for diagnostic in page.diagnostics:
                sys.stdout.write(f"{diagnostic}\n")
        if args.stats:
            _print_stats(registry, poacher.robot.stats, sys.stderr)
    return 1 if report.total_problems() else 0


def _print_stats(registry, crawl_stats, stream) -> None:
    stream.write("poacher stats:\n")
    for line in registry.summary_lines(
        defaults=("robot.pages.fetched", "robot.fetch.retries")
    ):
        stream.write(f"  {line}\n")
    if crawl_stats.url_latency_ms:
        stream.write("  per-URL fetch latency:\n")
        for url, latency_ms in crawl_stats.url_latency_ms.items():
            stream.write(f"    {url}: {latency_ms:.2f} ms\n")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
