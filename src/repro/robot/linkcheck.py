"""Link validation -- the broken-link-robot primitive.

Paper section 3.5: "At its simplest, this merely consists of sending a
HEAD request, and reporting all URLs which result in a 404 response code.
Smarter robots will handle redirects (fixing the links)."

:class:`LinkChecker` does both: HEAD each target once (cached across the
whole crawl), classify the result, and for redirects report where the
link should now point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.www.client import FetchError, UserAgent
from repro.www.url import urljoin


@dataclass(frozen=True)
class LinkStatus:
    """Outcome of validating one absolute URL."""

    url: str
    status: int            # HTTP status, or 0 for transport failure
    ok: bool
    redirected_to: Optional[str] = None
    error: Optional[str] = None

    @property
    def broken(self) -> bool:
        return not self.ok

    def describe(self) -> str:
        if self.error:
            return f"fetch failed: {self.error}"
        if self.redirected_to:
            return f"{self.status}, moved to {self.redirected_to}"
        return f"HTTP {self.status}"


class LinkChecker:
    """HEAD-validate URLs with a shared cache."""

    def __init__(self, agent: UserAgent) -> None:
        self.agent = agent
        self._cache: dict[str, LinkStatus] = {}

    def check(self, base_url: str, link_url: str) -> LinkStatus:
        """Validate ``link_url`` as it appears on ``base_url``."""
        absolute = str(urljoin(base_url, link_url).without_fragment())
        if absolute in self._cache:
            return self._cache[absolute]
        status = self._fetch_status(absolute)
        self._cache[absolute] = status
        return status

    def _fetch_status(self, absolute: str) -> LinkStatus:
        try:
            response = self.agent.head(absolute)
        except FetchError as exc:
            return LinkStatus(url=absolute, status=0, ok=False, error=str(exc))
        redirected_to = response.url if response.redirects else None
        return LinkStatus(
            url=absolute,
            status=response.status,
            ok=response.ok,
            redirected_to=redirected_to,
        )

    @property
    def checked_count(self) -> int:
        return len(self._cache)

    def broken_links(self) -> list[LinkStatus]:
        return [status for status in self._cache.values() if status.broken]

    def moved_links(self) -> list[LinkStatus]:
        return [
            status
            for status in self._cache.values()
            if status.ok and status.redirected_to
        ]


class FragmentChecker:
    """Validate ``page.html#name`` fragments across a crawl.

    GETs each HTML target once (cached) and extracts its anchor names
    (``<A NAME>`` and ID values); a fragment that names no anchor is the
    ``bad-fragment`` condition.  Fragment knowledge requires the body, so
    this is separate from the HEAD-based :class:`LinkChecker`.
    """

    def __init__(self, agent: UserAgent) -> None:
        self.agent = agent
        self._anchors: dict[str, Optional[set[str]]] = {}

    def _anchor_names(self, absolute: str) -> Optional[set[str]]:
        """Anchor names on the page, or None when it cannot be read."""
        if absolute not in self._anchors:
            from repro.site.links import extract_anchor_names
            from repro.www.client import FetchError

            try:
                response = self.agent.get(absolute)
            except FetchError:
                self._anchors[absolute] = None
            else:
                if response.ok and response.is_html:
                    self._anchors[absolute] = extract_anchor_names(
                        response.body
                    )
                else:
                    self._anchors[absolute] = None
        return self._anchors[absolute]

    def fragment_defined(self, base_url: str, link_url: str) -> Optional[bool]:
        """Is the link's fragment defined on its target page?

        Returns None when the link has no fragment or the target cannot
        be inspected (missing page, non-HTML) -- those cases are the
        LinkChecker's business, not a fragment problem.
        """
        target, _, fragment = link_url.partition("#")
        if not fragment:
            return None
        base = target if target else base_url
        absolute = str(urljoin(base_url, base).without_fragment())
        names = self._anchor_names(absolute)
        if names is None:
            return None
        return fragment in names
