"""The poacher robot.

Paper section 4.5: "A robot can be used to invoke weblint on all
accessible pages on a site.  I have written one, called poacher, which is
included with the robot module for Perl.  Poacher also performs basic
link validation."

- :mod:`repro.robot.traversal` -- the generic traversal engine (the
  ``WWW::Robot`` analogue): streaming crawl frontier, same-host policy,
  robots.txt politeness, page hooks;
- :mod:`repro.robot.frontier` -- the scheduler underneath it:
  priority queue + request-fingerprint dupefilter + per-host
  downloader slots, with a disk-backed journal for ``--resume``;
- :mod:`repro.robot.linkcheck` -- HEAD-based link validation with
  caching and redirect reporting (section 3.5's "broken link robots");
- :mod:`repro.robot.poacher` -- :class:`Poacher`, tying traversal, lint
  and link validation into one crawl report.
"""

from repro.robot.frontier import (
    FrontierJournal,
    FrontierScheduler,
    request_fingerprint,
)
from repro.robot.linkcheck import LinkChecker, LinkStatus
from repro.robot.poacher import CrawlReport, PageResult, Poacher
from repro.robot.traversal import Robot, TraversalPolicy

__all__ = [
    "Robot",
    "TraversalPolicy",
    "FrontierScheduler",
    "FrontierJournal",
    "request_fingerprint",
    "LinkChecker",
    "LinkStatus",
    "Poacher",
    "CrawlReport",
    "PageResult",
]
