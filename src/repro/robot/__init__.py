"""The poacher robot.

Paper section 4.5: "A robot can be used to invoke weblint on all
accessible pages on a site.  I have written one, called poacher, which is
included with the robot module for Perl.  Poacher also performs basic
link validation."

- :mod:`repro.robot.traversal` -- the generic traversal engine (the
  ``WWW::Robot`` analogue): breadth-first crawl, same-host policy,
  robots.txt politeness, page hooks;
- :mod:`repro.robot.linkcheck` -- HEAD-based link validation with
  caching and redirect reporting (section 3.5's "broken link robots");
- :mod:`repro.robot.poacher` -- :class:`Poacher`, tying traversal, lint
  and link validation into one crawl report.
"""

from repro.robot.linkcheck import LinkChecker, LinkStatus
from repro.robot.poacher import CrawlReport, PageResult, Poacher
from repro.robot.traversal import Robot, TraversalPolicy

__all__ = [
    "Robot",
    "TraversalPolicy",
    "LinkChecker",
    "LinkStatus",
    "Poacher",
    "CrawlReport",
    "PageResult",
]
