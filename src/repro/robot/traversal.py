"""Generic web traversal -- the ``WWW::Robot`` analogue.

A breadth-first crawler over a :class:`~repro.www.client.UserAgent`:
maintains a frontier and a visited set, restricts itself to the starting
host by default, honours robots.txt, and hands every fetched page to a
callback.  Both poacher and ad-hoc scripts build on this engine, just as
the paper's poacher builds on the Perl robot module.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.site.links import extract_links
from repro.www.client import FetchError, UserAgent
from repro.www.message import Response
from repro.www.robotstxt import RobotsTxt
from repro.www.url import URL, urljoin, urlparse

PageCallback = Callable[[str, Response, list], None]


@dataclass
class TraversalPolicy:
    """Knobs controlling a crawl."""

    max_pages: int = 1000
    same_host_only: bool = True
    obey_robots_txt: bool = True
    follow_resources: bool = False  # also fetch img/script/... targets
    agent_name: str = "poacher-repro/2.0"
    max_retries: int = 0  # re-fetch a failing URL this many extra times


@dataclass
class CrawlStats:
    pages_fetched: int = 0
    pages_failed: int = 0
    urls_skipped_robots: int = 0
    urls_skipped_offsite: int = 0
    retries: int = 0
    bytes_fetched: int = 0
    #: wall time of the fetch (including retries), per requested URL.
    url_latency_ms: dict[str, float] = field(default_factory=dict)


class Robot:
    """Breadth-first traversal engine."""

    def __init__(
        self,
        agent: UserAgent,
        policy: Optional[TraversalPolicy] = None,
    ) -> None:
        self.agent = agent
        self.policy = policy if policy is not None else TraversalPolicy()
        self.stats = CrawlStats()
        self._robots_cache: dict[str, RobotsTxt] = {}

    # -- robots.txt politeness ---------------------------------------------------

    def _robots_for(self, url: URL) -> RobotsTxt:
        host_key = f"{url.host}:{url.effective_port()}"
        if host_key not in self._robots_cache:
            robots_url = str(
                URL(scheme=url.scheme or "http", host=url.host, port=url.port,
                    path="/robots.txt")
            )
            try:
                response = self.agent.get(robots_url)
            except FetchError:
                response = None
            if response is not None and response.ok:
                self._robots_cache[host_key] = RobotsTxt(response.body)
            else:
                self._robots_cache[host_key] = RobotsTxt("")
        return self._robots_cache[host_key]

    def allowed(self, url: str) -> bool:
        if not self.policy.obey_robots_txt:
            return True
        parsed = urlparse(url)
        return self._robots_for(parsed).allowed(
            parsed.path or "/", self.policy.agent_name
        )

    # -- the crawl ----------------------------------------------------------------------

    def crawl(
        self,
        start_url: str,
        on_page: Optional[PageCallback] = None,
    ) -> list[str]:
        """Breadth-first crawl from ``start_url``.

        ``on_page(url, response, links)`` is called for every
        successfully fetched HTML page.  Returns the list of page URLs
        visited, in crawl order.
        """
        registry = get_registry()
        start = urljoin(start_url, "")
        frontier: deque[str] = deque([str(start.without_fragment())])
        seen: set[str] = set(frontier)
        processed: set[str] = set()  # final URLs handed to on_page
        visited: list[str] = []

        with get_tracer().span("robot.crawl", start=start_url) as crawl_span:
            while frontier and self.stats.pages_fetched < self.policy.max_pages:
                url = frontier.popleft()
                parsed = urlparse(url)

                if self.policy.same_host_only and not parsed.same_host(start):
                    self.stats.urls_skipped_offsite += 1
                    continue
                if not self.allowed(url):
                    self.stats.urls_skipped_robots += 1
                    continue

                response = self._fetch(url)
                if response is None:
                    self.stats.pages_failed += 1
                    registry.inc("robot.fetch.failures")
                    continue

                if response.url in processed:
                    # A redirect landed on a page already handled (or a page
                    # both linked directly and reached via redirect earlier).
                    continue
                processed.add(response.url)
                seen.add(response.url)
                self.stats.pages_fetched += 1
                self.stats.bytes_fetched += len(response.body)
                registry.inc("robot.pages.fetched")
                registry.inc("robot.fetch.bytes", len(response.body))
                visited.append(response.url)
                if not response.is_html:
                    continue

                links = extract_links(response.body)
                if on_page is not None:
                    on_page(response.url, response, links)

                for link in links:
                    if not link.checkable:
                        continue
                    if link.kind == "resource" and not self.policy.follow_resources:
                        continue
                    absolute = str(
                        urljoin(response.url, link.url).without_fragment()
                    )
                    if absolute not in seen:
                        seen.add(absolute)
                        frontier.append(absolute)
            crawl_span.annotate(pages=self.stats.pages_fetched)
        return visited

    def _fetch(self, url: str):
        """One URL, with up to ``policy.max_retries`` re-attempts.

        Records the per-URL fetch latency (wall time across all
        attempts) into ``stats.url_latency_ms`` and the
        ``robot.fetch.latency_ms`` histogram; returns ``None`` when every
        attempt failed.
        """
        registry = get_registry()
        start = time.perf_counter()
        response = None
        try:
            # A negative max_retries must still mean one attempt.
            for attempt in range(max(0, self.policy.max_retries) + 1):
                if attempt:
                    self.stats.retries += 1
                    registry.inc("robot.fetch.retries")
                registry.inc("robot.fetch.requests")
                try:
                    candidate = self.agent.get(url)
                except FetchError:
                    continue
                if candidate.ok:
                    response = candidate
                    break
        finally:
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            self.stats.url_latency_ms[url] = elapsed_ms
            registry.observe("robot.fetch.latency_ms", elapsed_ms)
        return response
