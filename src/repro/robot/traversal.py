"""Generic web traversal -- the ``WWW::Robot`` analogue.

A breadth-first crawler over a :class:`~repro.www.client.UserAgent`:
maintains a frontier and a visited set, restricts itself to the starting
host by default, honours robots.txt, and hands every fetched page to a
callback.  Both poacher and ad-hoc scripts build on this engine, just as
the paper's poacher builds on the Perl robot module.

With ``TraversalPolicy.concurrency > 1`` the frontier runs
level-synchronously over a thread pool: each BFS wave is fetched in
parallel (bounded by per-host politeness -- a minimum delay between
fetches and a max-in-flight cap per host) while results are folded back
into the crawl **in wave order**, so the visited list, the page
callbacks and the report are byte-identical to a sequential crawl.
Only fetch latency overlaps; link extraction and callbacks stay on the
calling thread.

Fetch outcomes are classified, not collapsed: a URL that never produced
an HTTP response (connection error, timeout, truncated transfer on every
attempt) counts in ``CrawlStats.pages_failed`` / ``failed_urls``; a URL
whose final response was a non-2xx HTTP status counts in
``pages_http_error`` / ``http_error_urls``.  Retries at this level are
attempt-count only and skip deterministic 4xx -- give the agent a
:class:`~repro.www.client.RetryPolicy` for backoff and Retry-After
handling at the transport layer.
"""

from __future__ import annotations

import heapq
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import IO, Callable, Optional

from repro.obs.events import get_event_log
from repro.obs.export import Ticker
from repro.obs.metrics import get_registry
from repro.obs.timeseries import TimeSeries, get_timeseries
from repro.obs.trace import get_tracer
from repro.site.links import extract_links
from repro.www.client import (
    RETRYABLE_STATUSES,
    FetchError,
    UserAgent,
)
from repro.www.message import Response
from repro.www.robotstxt import RobotsTxt
from repro.www.url import URL, urljoin, urlparse

PageCallback = Callable[[str, Response, list], None]


@dataclass
class TraversalPolicy:
    """Knobs controlling a crawl."""

    max_pages: int = 1000
    same_host_only: bool = True
    obey_robots_txt: bool = True
    follow_resources: bool = False  # also fetch img/script/... targets
    agent_name: str = "poacher-repro/2.0"
    #: Extra fetch attempts per URL on transport errors and transient
    #: HTTP errors (5xx/429).  Deterministic 4xx are never re-fetched.
    max_retries: int = 0
    #: Frontier worker threads; 1 = the classic sequential crawl.
    concurrency: int = 1
    #: Politeness: minimum seconds between fetches to the same host.
    per_host_delay_s: float = 0.0
    #: At most this many requests in flight against one host.
    max_in_flight_per_host: int = 4


#: How many of the slowest fetches :class:`CrawlStats` keeps per crawl.
SLOWEST_FETCHES_KEPT = 10


@dataclass
class CrawlStats:
    pages_fetched: int = 0
    #: URLs that produced no HTTP response on any attempt (transport).
    pages_failed: int = 0
    #: URLs whose final response was a persistent non-2xx HTTP status.
    pages_http_error: int = 0
    urls_skipped_robots: int = 0
    urls_skipped_offsite: int = 0
    retries: int = 0
    bytes_fetched: int = 0
    #: The slowest fetches seen, as a bounded ``(latency_ms, url)`` heap.
    #: Per-URL latency is otherwise summarized into the
    #: ``robot.fetch.latency_ms`` histogram (and the windowed
    #: time-series when one is armed), so crawl memory stays flat at
    #: site scale instead of growing one dict entry per URL.
    slowest_fetches: list[tuple[float, str]] = field(default_factory=list)
    #: transport-failed URL -> last error text.
    failed_urls: dict[str, str] = field(default_factory=dict)
    #: HTTP-failed URL -> final status code.
    http_error_urls: dict[str, int] = field(default_factory=dict)

    def note_latency(self, url: str, latency_ms: float) -> None:
        """Fold one fetch's latency into the bounded slowest-N heap."""
        if len(self.slowest_fetches) < SLOWEST_FETCHES_KEPT:
            heapq.heappush(self.slowest_fetches, (latency_ms, url))
        elif latency_ms > self.slowest_fetches[0][0]:
            heapq.heappushpop(self.slowest_fetches, (latency_ms, url))

    def slowest(self) -> list[tuple[str, float]]:
        """The kept slowest fetches as ``(url, latency_ms)``, slowest first."""
        return [
            (url, latency_ms)
            for latency_ms, url in sorted(self.slowest_fetches, reverse=True)
        ]


class _HostThrottle:
    """Per-host politeness: an in-flight cap plus a minimum fetch gap."""

    __slots__ = ("_slots", "_lock", "_delay", "_next_ok")

    def __init__(self, delay_s: float, max_in_flight: int) -> None:
        self._slots = threading.BoundedSemaphore(max(1, max_in_flight))
        self._lock = threading.Lock()
        self._delay = max(0.0, delay_s)
        self._next_ok = 0.0

    def __enter__(self) -> "_HostThrottle":
        self._slots.acquire()
        if self._delay:
            with self._lock:
                now = time.monotonic()
                wait = self._next_ok - now
                self._next_ok = max(now, self._next_ok) + self._delay
            if wait > 0:
                get_registry().observe(
                    "robot.frontier.host_wait_ms", wait * 1000.0
                )
                time.sleep(wait)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._slots.release()


class CrawlProgress:
    """The ``--progress`` view: one live line summarizing the crawl.

    A background :class:`~repro.obs.export.Ticker` samples the metrics
    registry into a windowed :class:`~repro.obs.timeseries.TimeSeries`
    every ``interval_s`` and rewrites one carriage-returned status line:
    pages done / in flight / failed, the rolling pages-per-second rate,
    the cache-hit ratio and an ETA over what is still queued.

    Rendering is a pure function of (robot state, registry, series,
    clock), so with an injected clock the line is byte-deterministic --
    the golden tests in ``benchmarks/test_e18_telemetry.py`` hold that.
    """

    def __init__(
        self,
        robot: "Robot",
        stream: IO[str],
        clock: Callable[[], float] = time.monotonic,
        interval_s: float = 1.0,
        window_s: int = 10,
        series: Optional[TimeSeries] = None,
    ) -> None:
        self.robot = robot
        self.stream = stream
        self.clock = clock
        self.interval_s = interval_s
        self.window_s = window_s
        self.series = (
            series
            if series is not None
            else TimeSeries(clock=clock, window_s=max(window_s, 2))
        )
        self._ticker: Optional[Ticker] = None
        self._last_width = 0

    def render_line(self, t: Optional[float] = None) -> str:
        now = self.clock() if t is None else t
        stats = self.robot.stats
        registry = get_registry()
        done = stats.pages_fetched
        failed = stats.pages_failed + stats.pages_http_error
        in_flight = self.robot.in_flight
        queued = self.robot.frontier_size
        rate = self.series.rate(
            "robot.pages.fetched", window_s=self.window_s, t=now
        )
        hits = (
            registry.value("www.cache.hits")
            + registry.value("www.conditional.revalidated")
            + registry.value("cache.lint.hits")
        )
        misses = registry.value("www.cache.misses") + registry.value(
            "cache.lint.misses"
        )
        ratio = hits / (hits + misses) if hits + misses else 0.0
        remaining = queued + in_flight
        if not remaining:
            eta = "0s"
        elif rate > 0:
            eta = f"{remaining / rate:.0f}s"
        else:
            eta = "?"
        return (
            f"crawl: {done} done, {in_flight} in flight, {failed} failed | "
            f"{rate:.1f} pages/s | cache hits {ratio * 100:.0f}% | ETA {eta}"
        )

    def tick(self) -> None:
        now = self.clock()
        self.series.sample_registry(get_registry(), t=now)
        line = self.render_line(t=now)
        padding = " " * max(0, self._last_width - len(line))
        self._last_width = len(line)
        try:
            self.stream.write("\r" + line + padding)
            self.stream.flush()
        except OSError:  # pragma: no cover - closed stream
            pass

    def start(self) -> "CrawlProgress":
        self._ticker = Ticker(self.interval_s, self.tick).start()
        return self

    def stop(self) -> None:
        if self._ticker is not None:
            self._ticker.stop()  # fires one final tick
            self._ticker = None
            try:
                self.stream.write("\n")
                self.stream.flush()
            except OSError:  # pragma: no cover - closed stream
                pass


class Robot:
    """Breadth-first traversal engine."""

    def __init__(
        self,
        agent: UserAgent,
        policy: Optional[TraversalPolicy] = None,
    ) -> None:
        self.agent = agent
        self.policy = policy if policy is not None else TraversalPolicy()
        self.stats = CrawlStats()
        self._robots_cache: dict[str, RobotsTxt] = {}
        self._stats_lock = threading.Lock()
        self._in_flight = 0
        self._frontier: Optional[deque] = None

    @property
    def in_flight(self) -> int:
        """Fetches currently executing (0 outside a crawl)."""
        return self._in_flight

    @property
    def frontier_size(self) -> int:
        """URLs queued and not yet admitted (0 outside a crawl)."""
        frontier = self._frontier
        return len(frontier) if frontier is not None else 0

    # -- robots.txt politeness ---------------------------------------------------

    def _robots_for(self, url: URL) -> RobotsTxt:
        host_key = f"{url.host}:{url.effective_port()}"
        if host_key not in self._robots_cache:
            robots_url = str(
                URL(scheme=url.scheme or "http", host=url.host, port=url.port,
                    path="/robots.txt")
            )
            try:
                response = self.agent.get(robots_url)
            except FetchError:
                response = None
            if response is not None and response.ok:
                self._robots_cache[host_key] = RobotsTxt(response.body)
            else:
                self._robots_cache[host_key] = RobotsTxt("")
        return self._robots_cache[host_key]

    def allowed(self, url: str) -> bool:
        if not self.policy.obey_robots_txt:
            return True
        parsed = urlparse(url)
        return self._robots_for(parsed).allowed(
            parsed.path or "/", self.policy.agent_name
        )

    # -- the crawl ----------------------------------------------------------------------

    def crawl(
        self,
        start_url: str,
        on_page: Optional[PageCallback] = None,
        progress: Optional[CrawlProgress] = None,
    ) -> list[str]:
        """Breadth-first crawl from ``start_url``.

        ``on_page(url, response, links)`` is called for every
        successfully fetched HTML page.  Returns the list of page URLs
        visited, in crawl order -- the same order whether the frontier
        runs sequentially or concurrently.  ``progress`` (a
        :class:`CrawlProgress`) runs its live ticker for the duration
        of the crawl; it never affects the crawl's result.
        """
        start = urljoin(start_url, "")
        frontier: deque[str] = deque([str(start.without_fragment())])
        seen: set[str] = set(frontier)
        processed: set[str] = set()  # final URLs handed to on_page
        visited: list[str] = []
        self._frontier = frontier

        if progress is not None:
            progress.start()
        try:
            with get_tracer().span(
                "robot.crawl", start=start_url, workers=self.policy.concurrency
            ) as crawl_span:
                if self.policy.concurrency > 1:
                    self._crawl_concurrent(
                        start, frontier, seen, processed, visited, on_page
                    )
                else:
                    self._crawl_sequential(
                        start, frontier, seen, processed, visited, on_page
                    )
                crawl_span.annotate(
                    pages=self.stats.pages_fetched,
                    http_errors=self.stats.pages_http_error,
                    transport_failures=self.stats.pages_failed,
                )
        finally:
            if progress is not None:
                progress.stop()
            self._frontier = None
        return visited

    def _crawl_sequential(
        self, start, frontier, seen, processed, visited, on_page
    ) -> None:
        while frontier and self.stats.pages_fetched < self.policy.max_pages:
            url = frontier.popleft()
            if not self._admit(url, start):
                continue
            response = self._fetch(url)
            self._consume(
                url, response, frontier, seen, processed, visited, on_page
            )

    def _crawl_concurrent(
        self, start, frontier, seen, processed, visited, on_page
    ) -> None:
        """Level-synchronous BFS: fetch each wave in parallel, fold in order.

        Equivalent to the sequential crawl except for wall-clock: admit
        checks happen when a wave is formed (so the robots/offsite skip
        counters can run ahead of a ``max_pages`` cutoff) and a cutoff
        mid-wave discards already-issued fetches instead of never
        issuing them.
        """
        registry = get_registry()
        tracer = get_tracer()
        throttles: dict[str, _HostThrottle] = {}
        throttles_lock = threading.Lock()

        def fetch_one(url: str) -> Optional[Response]:
            host = urlparse(url).host
            with throttles_lock:
                throttle = throttles.get(host)
                if throttle is None:
                    throttle = throttles[host] = _HostThrottle(
                        self.policy.per_host_delay_s,
                        self.policy.max_in_flight_per_host,
                    )
            with throttle:
                return self._fetch(url)

        registry.gauge_max("robot.frontier.workers", self.policy.concurrency)
        with ThreadPoolExecutor(
            max_workers=self.policy.concurrency,
            thread_name_prefix="frontier",
        ) as pool:
            while frontier and self.stats.pages_fetched < self.policy.max_pages:
                wave = []
                while frontier:
                    url = frontier.popleft()
                    if self._admit(url, start):
                        wave.append(url)
                if not wave:
                    break
                registry.inc("robot.frontier.waves")
                registry.gauge_max("robot.frontier.wave_size", len(wave))
                with tracer.span("robot.frontier.wave", urls=len(wave)):
                    futures = [pool.submit(fetch_one, url) for url in wave]
                    for url, future in zip(wave, futures):
                        response = future.result()
                        if self.stats.pages_fetched >= self.policy.max_pages:
                            continue  # cutoff: drain remaining futures
                        self._consume(
                            url, response, frontier, seen, processed,
                            visited, on_page,
                        )

    # -- shared crawl steps ------------------------------------------------------

    def _admit(self, url: str, start: URL) -> bool:
        """Offsite and robots.txt filtering (main thread only)."""
        parsed = urlparse(url)
        if self.policy.same_host_only and not parsed.same_host(start):
            self.stats.urls_skipped_offsite += 1
            return False
        if not self.allowed(url):
            self.stats.urls_skipped_robots += 1
            return False
        return True

    def _consume(
        self, url, response, frontier, seen, processed, visited, on_page
    ) -> None:
        """Fold one fetch outcome into the crawl (main thread only)."""
        registry = get_registry()
        if response is None:
            self.stats.pages_failed += 1
            registry.inc("robot.fetch.failures")
            get_event_log().emit(
                "robot.fetch_failed", level="warn", url=url,
                error=self.stats.failed_urls.get(url, ""),
            )
            return
        if not response.ok:
            self.stats.pages_http_error += 1
            self.stats.http_error_urls[url] = response.status
            registry.inc("robot.fetch.http_errors")
            get_event_log().emit(
                "robot.http_error", level="warn", url=url,
                status=response.status,
            )
            return

        if response.url in processed:
            # A redirect landed on a page already handled (or a page
            # both linked directly and reached via redirect earlier).
            return
        processed.add(response.url)
        seen.add(response.url)
        self.stats.pages_fetched += 1
        self.stats.bytes_fetched += len(response.body)
        registry.inc("robot.pages.fetched")
        registry.inc("robot.fetch.bytes", len(response.body))
        series = get_timeseries()
        if series is not None:
            series.observe("robot.pages.fetched")
        visited.append(response.url)
        if not response.is_html:
            return

        links = extract_links(response.body)
        if on_page is not None:
            on_page(response.url, response, links)

        for link in links:
            if not link.checkable:
                continue
            if link.kind == "resource" and not self.policy.follow_resources:
                continue
            absolute = str(
                urljoin(response.url, link.url).without_fragment()
            )
            if absolute not in seen:
                seen.add(absolute)
                frontier.append(absolute)

    def _fetch(self, url: str):
        """One URL, with up to ``policy.max_retries`` re-attempts.

        Retries only outcomes that can change: transport errors and
        transient HTTP statuses (5xx/429).  The last response -- OK or
        not -- is returned so a persistent 404/500 is reported as an
        HTTP error; ``None`` means no attempt produced a response.
        The fetch's wall time (across all attempts) lands in the
        ``robot.fetch.latency_ms`` histogram, the windowed time-series
        (when armed), the slow-op event log, and the crawl's bounded
        slowest-N list.  Safe to call from frontier worker threads.
        """
        registry = get_registry()
        start = time.perf_counter()
        response = None
        last_error: Optional[FetchError] = None
        with self._stats_lock:
            self._in_flight += 1
        try:
            # A negative max_retries must still mean one attempt.
            for attempt in range(max(0, self.policy.max_retries) + 1):
                if attempt:
                    with self._stats_lock:
                        self.stats.retries += 1
                    registry.inc("robot.fetch.retries")
                registry.inc("robot.fetch.requests")
                try:
                    candidate = self.agent.get(url)
                except FetchError as error:
                    last_error = error
                    continue
                response = candidate
                if candidate.ok or candidate.status not in RETRYABLE_STATUSES:
                    break
        finally:
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            with self._stats_lock:
                self._in_flight -= 1
                self.stats.note_latency(url, elapsed_ms)
                if response is None and last_error is not None:
                    self.stats.failed_urls[url] = str(last_error)
            registry.observe("robot.fetch.latency_ms", elapsed_ms)
            series = get_timeseries()
            if series is not None:
                series.observe("robot.fetch.latency_ms", elapsed_ms)
            events = get_event_log()
            if events.enabled:
                events.note_operation("robot.fetch", elapsed_ms, url=url)
        return response
