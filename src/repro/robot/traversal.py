"""Generic web traversal -- the ``WWW::Robot`` analogue.

A crawler over a :class:`~repro.www.client.UserAgent`: maintains a
frontier and a visited set, restricts itself to the starting host by
default, honours robots.txt, and hands every fetched page to a
callback.  Both poacher and ad-hoc scripts build on this engine, just
as the paper's poacher builds on the Perl robot module.

The frontier is the continuously-fed scheduler of
:mod:`repro.robot.frontier`: a priority queue ordered by (depth,
discovery order) behind a request-fingerprint dupefilter, with per-host
downloader slots enforcing politeness (max in-flight per host plus a
minimum delay between fetch starts).  With
``TraversalPolicy.concurrency > 1`` worker threads pull the next
eligible request the moment they finish the previous one -- there are
no wave barriers, so a slow host never idles the other hosts' workers.
Link extraction and page callbacks always stay on the calling thread.

Results are consumed in completion order, so the canonical outputs --
the visited list returned by :meth:`Robot.crawl` and the poacher
report -- are sorted by URL: a crawl's result is byte-identical at any
worker count.  ``TraversalPolicy(frontier="wave")`` retains the old
level-synchronous frontier as a benchmark comparator.

``max_pages`` is an *admission* budget: the scheduler stops admitting
fetches at the cap and never discards one it has issued, so the number
of fetched pages is exact at any concurrency.

With a :class:`~repro.robot.frontier.FrontierJournal` the frontier is
resumable: every enqueue and completion is journaled to disk, and
``crawl(..., resume=True)`` replays a killed crawl's journal -- pages
already completed are restored from the HTTP cache's body store (and
re-linted via the lint cache) instead of refetched.

Fetch outcomes are classified, not collapsed: a URL that never produced
an HTTP response (connection error, timeout, truncated transfer on every
attempt) counts in ``CrawlStats.pages_failed`` / ``failed_urls``; a URL
whose final response was a non-2xx HTTP status counts in
``pages_http_error`` / ``http_error_urls``.  Retries at this level are
attempt-count only and skip deterministic 4xx -- give the agent a
:class:`~repro.www.client.RetryPolicy` for backoff and Retry-After
handling at the transport layer.
"""

from __future__ import annotations

import heapq
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import IO, Callable, Optional

from repro.obs.events import get_event_log
from repro.obs.export import Ticker
from repro.obs.metrics import get_registry
from repro.obs.timeseries import TimeSeries, get_timeseries
from repro.obs.trace import get_tracer
from repro.robot.frontier import (
    FrontierJournal,
    FrontierScheduler,
    ResumeState,
    request_fingerprint,
    shard_owns,
)
from repro.site.links import extract_links
from repro.www.client import (
    RETRYABLE_STATUSES,
    FetchError,
    UserAgent,
)
from repro.www.httpcache import body_digest
from repro.www.message import Headers, Response
from repro.www.robotstxt import RobotsTxt
from repro.www.url import URL, urljoin, urlparse

PageCallback = Callable[[str, Response, list], None]


@dataclass
class TraversalPolicy:
    """Knobs controlling a crawl."""

    max_pages: int = 1000
    same_host_only: bool = True
    obey_robots_txt: bool = True
    follow_resources: bool = False  # also fetch img/script/... targets
    agent_name: str = "poacher-repro/2.0"
    #: Extra fetch attempts per URL on transport errors and transient
    #: HTTP errors (5xx/429).  Deterministic 4xx are never re-fetched.
    max_retries: int = 0
    #: Frontier worker threads; 1 drives the same scheduler inline.
    concurrency: int = 1
    #: Politeness: minimum seconds between fetch starts to the same host.
    per_host_delay_s: float = 0.0
    #: At most this many requests in flight against one host.
    max_in_flight_per_host: int = 4
    #: ``"streaming"`` (the scheduler) or ``"wave"`` (the legacy
    #: level-synchronous frontier, kept as a benchmark comparator).
    frontier: str = "streaming"
    #: Sharded-audit partition: with ``shards > 1`` this crawl invokes
    #: ``on_page`` only for URLs whose request fingerprint falls in
    #: shard ``shard`` (``request_fingerprint % shards == shard``).
    #: Every shard still *fetches* and follows links on all pages --
    #: discovery needs the whole graph -- but the shared HTTP cache
    #: under ``--state-dir`` makes the overlap conditional-cheap.
    shards: int = 1
    shard: int = 0


#: How many of the slowest fetches :class:`CrawlStats` keeps per crawl.
SLOWEST_FETCHES_KEPT = 10


@dataclass
class CrawlStats:
    pages_fetched: int = 0
    #: URLs that produced no HTTP response on any attempt (transport).
    pages_failed: int = 0
    #: URLs whose final response was a persistent non-2xx HTTP status.
    pages_http_error: int = 0
    urls_skipped_robots: int = 0
    urls_skipped_offsite: int = 0
    retries: int = 0
    bytes_fetched: int = 0
    #: The slowest fetches seen, as a bounded ``(latency_ms, url)`` heap.
    #: Per-URL latency is otherwise summarized into the
    #: ``robot.fetch.latency_ms`` histogram (and the windowed
    #: time-series when one is armed), so crawl memory stays flat at
    #: site scale instead of growing one dict entry per URL.
    slowest_fetches: list[tuple[float, str]] = field(default_factory=list)
    #: transport-failed URL -> last error text.
    failed_urls: dict[str, str] = field(default_factory=dict)
    #: HTTP-failed URL -> final status code.
    http_error_urls: dict[str, int] = field(default_factory=dict)
    #: host -> {fetches, max_in_flight, wait_ms} from the scheduler's
    #: downloader slots, filled in when a streaming crawl ends.
    host_slots: dict[str, dict[str, float]] = field(default_factory=dict)

    def note_latency(self, url: str, latency_ms: float) -> None:
        """Fold one fetch's latency into the bounded slowest-N heap."""
        if len(self.slowest_fetches) < SLOWEST_FETCHES_KEPT:
            heapq.heappush(self.slowest_fetches, (latency_ms, url))
        elif latency_ms > self.slowest_fetches[0][0]:
            heapq.heappushpop(self.slowest_fetches, (latency_ms, url))

    def slowest(self) -> list[tuple[str, float]]:
        """The kept slowest fetches as ``(url, latency_ms)``, slowest first."""
        return [
            (url, latency_ms)
            for latency_ms, url in sorted(self.slowest_fetches, reverse=True)
        ]


class _HostThrottle:
    """Per-host politeness for the legacy wave frontier only.

    The streaming scheduler replaces this with
    :class:`repro.robot.frontier.HostSlot`, which parks ineligible
    requests instead of blocking a worker thread.
    """

    __slots__ = ("_slots", "_lock", "_delay", "_next_ok")

    def __init__(self, delay_s: float, max_in_flight: int) -> None:
        self._slots = threading.BoundedSemaphore(max(1, max_in_flight))
        self._lock = threading.Lock()
        self._delay = max(0.0, delay_s)
        self._next_ok = 0.0

    def __enter__(self) -> "_HostThrottle":
        self._slots.acquire()
        if self._delay:
            with self._lock:
                now = time.monotonic()
                wait = self._next_ok - now
                self._next_ok = max(now, self._next_ok) + self._delay
            if wait > 0:
                get_registry().observe(
                    "robot.frontier.host_wait_ms", wait * 1000.0
                )
                time.sleep(wait)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._slots.release()


class _WaveFrontier:
    """Queue + dupefilter adapter for the legacy wave driver.

    Gives the wave path the same ``mark_seen``/``push`` surface as the
    scheduler so both share :meth:`Robot._consume`.
    """

    __slots__ = ("queue", "_seen", "_next_seq")

    def __init__(self) -> None:
        self.queue: deque[tuple[str, int]] = deque()
        self._seen: set[str] = set()
        self._next_seq = 0

    def mark_seen(self, url: str) -> bool:
        fingerprint = request_fingerprint(url)
        if fingerprint in self._seen:
            return False
        self._seen.add(fingerprint)
        return True

    def push(self, url: str, depth: int) -> int:
        seq = self._next_seq
        self._next_seq += 1
        self.queue.append((url, depth))
        return seq


class CrawlProgress:
    """The ``--progress`` view: one live line summarizing the crawl.

    A background :class:`~repro.obs.export.Ticker` samples the metrics
    registry into a windowed :class:`~repro.obs.timeseries.TimeSeries`
    every ``interval_s`` and rewrites one carriage-returned status line:
    pages done / in flight / failed, the rolling pages-per-second rate,
    the cache-hit ratio, the busiest downloader slot and an ETA over
    what is still queued.

    Rendering is a pure function of (robot state, registry, series,
    clock), so with an injected clock the line is byte-deterministic --
    the golden tests in ``tests/test_telemetry.py`` hold that.
    """

    def __init__(
        self,
        robot: "Robot",
        stream: IO[str],
        clock: Callable[[], float] = time.monotonic,
        interval_s: float = 1.0,
        window_s: int = 10,
        series: Optional[TimeSeries] = None,
    ) -> None:
        self.robot = robot
        self.stream = stream
        self.clock = clock
        self.interval_s = interval_s
        self.window_s = window_s
        self.series = (
            series
            if series is not None
            else TimeSeries(clock=clock, window_s=max(window_s, 2))
        )
        self._ticker: Optional[Ticker] = None
        self._last_width = 0

    def render_line(self, t: Optional[float] = None) -> str:
        now = self.clock() if t is None else t
        stats = self.robot.stats
        registry = get_registry()
        done = stats.pages_fetched
        failed = stats.pages_failed + stats.pages_http_error
        in_flight = self.robot.in_flight
        queued = self.robot.frontier_size
        rate = self.series.rate(
            "robot.pages.fetched", window_s=self.window_s, t=now
        )
        hits = (
            registry.value("www.cache.hits")
            + registry.value("www.conditional.revalidated")
            + registry.value("cache.lint.hits")
        )
        misses = registry.value("www.cache.misses") + registry.value(
            "cache.lint.misses"
        )
        ratio = hits / (hits + misses) if hits + misses else 0.0
        busiest = self.robot.busiest_slot()
        slots = (
            f"slots {busiest[0]}:{busiest[1]}/{busiest[2]} | "
            if busiest is not None
            else ""
        )
        remaining = queued + in_flight
        if not remaining:
            eta = "0s"
        elif rate > 0:
            eta = f"{remaining / rate:.0f}s"
        else:
            eta = "?"
        return (
            f"crawl: {done} done, {in_flight} in flight, {failed} failed | "
            f"{rate:.1f} pages/s | cache hits {ratio * 100:.0f}% | "
            f"{slots}ETA {eta}"
        )

    def tick(self) -> None:
        now = self.clock()
        self.series.sample_registry(get_registry(), t=now)
        line = self.render_line(t=now)
        padding = " " * max(0, self._last_width - len(line))
        self._last_width = len(line)
        try:
            self.stream.write("\r" + line + padding)
            self.stream.flush()
        except OSError:  # pragma: no cover - closed stream
            pass

    def start(self) -> "CrawlProgress":
        self._ticker = Ticker(self.interval_s, self.tick).start()
        return self

    def stop(self) -> None:
        if self._ticker is not None:
            self._ticker.stop()  # fires one final tick
            self._ticker = None
            try:
                self.stream.write("\n")
                self.stream.flush()
            except OSError:  # pragma: no cover - closed stream
                pass


class Robot:
    """Traversal engine over the streaming frontier scheduler."""

    def __init__(
        self,
        agent: UserAgent,
        policy: Optional[TraversalPolicy] = None,
        journal: Optional[FrontierJournal] = None,
    ) -> None:
        self.agent = agent
        self.policy = policy if policy is not None else TraversalPolicy()
        self.journal = journal
        self.stats = CrawlStats()
        self._robots_cache: dict[str, RobotsTxt] = {}
        self._stats_lock = threading.Lock()
        self._in_flight = 0
        self._scheduler: Optional[FrontierScheduler] = None
        self._wave_queue: Optional[deque] = None

    @property
    def in_flight(self) -> int:
        """Fetches currently executing (0 outside a crawl)."""
        return self._in_flight

    @property
    def frontier_size(self) -> int:
        """URLs queued and not yet admitted (0 outside a crawl)."""
        scheduler = self._scheduler
        if scheduler is not None:
            return scheduler.queued
        queue = self._wave_queue
        return len(queue) if queue is not None else 0

    def busiest_slot(self) -> Optional[tuple[str, int, int]]:
        """``(host, busy, capacity)`` of the busiest downloader slot."""
        scheduler = self._scheduler
        return scheduler.busiest_slot() if scheduler is not None else None

    # -- robots.txt politeness ---------------------------------------------------

    def _robots_for(self, url: URL) -> RobotsTxt:
        host_key = f"{url.host}:{url.effective_port()}"
        if host_key not in self._robots_cache:
            robots_url = str(
                URL(scheme=url.scheme or "http", host=url.host, port=url.port,
                    path="/robots.txt")
            )
            try:
                response = self.agent.get(robots_url)
            except FetchError:
                response = None
            if response is not None and response.ok:
                self._robots_cache[host_key] = RobotsTxt(response.body)
            else:
                self._robots_cache[host_key] = RobotsTxt("")
        return self._robots_cache[host_key]

    def allowed(self, url: str) -> bool:
        if not self.policy.obey_robots_txt:
            return True
        parsed = urlparse(url)
        return self._robots_for(parsed).allowed(
            parsed.path or "/", self.policy.agent_name
        )

    # -- the crawl ----------------------------------------------------------------------

    def crawl(
        self,
        start_url: str,
        on_page: Optional[PageCallback] = None,
        progress: Optional[CrawlProgress] = None,
        resume: bool = False,
    ) -> list[str]:
        """Crawl from ``start_url``; returns the visited URLs sorted.

        ``on_page(url, response, links)`` is called for every
        successfully fetched HTML page, in completion order.  The
        returned list is the canonical (URL-sorted) set of visited
        pages -- byte-identical at any ``concurrency``.  ``progress``
        (a :class:`CrawlProgress`) runs its live ticker for the
        duration of the crawl; it never affects the crawl's result.

        With a journal, ``resume=True`` replays a previous crawl's
        persisted frontier first: completed pages are restored from the
        HTTP cache's body store (``on_page`` still runs for them) and
        only the unfinished remainder is fetched.
        """
        start = urljoin(start_url, "")
        start_str = str(start.without_fragment())
        registry = get_registry()
        processed: set[str] = set()  # final URLs handed to on_page
        visited: list[str] = []

        if self.policy.frontier == "wave":
            return self._crawl_wave(
                start_url, start, start_str, processed, visited,
                on_page, progress,
            )

        scheduler = FrontierScheduler(
            max_pages=self.policy.max_pages,
            per_host_delay_s=self.policy.per_host_delay_s,
            max_in_flight_per_host=self.policy.max_in_flight_per_host,
        )
        self._scheduler = scheduler
        restored: Optional[ResumeState] = None
        if self.journal is not None:
            if resume:
                restored = self.journal.resume(start_str)
            if restored is None:
                self.journal.start(start_str)

        if progress is not None:
            progress.start()
        try:
            with get_tracer().span(
                "robot.crawl", start=start_url, workers=self.policy.concurrency
            ) as crawl_span:
                registry.gauge_max(
                    "robot.frontier.workers", self.policy.concurrency
                )
                if restored is not None:
                    self._restore(
                        restored, scheduler, start, processed, visited, on_page
                    )
                if scheduler.mark_seen(start_str) and self._admit(
                    start_str, start
                ):
                    seq = scheduler.push(start_str, 0)
                    if self.journal is not None:
                        self.journal.enqueued(start_str, 0, seq)
                if self.policy.concurrency > 1:
                    self._drive_threaded(
                        scheduler, start, processed, visited, on_page
                    )
                else:
                    self._drive_inline(
                        scheduler, start, processed, visited, on_page
                    )
                crawl_span.annotate(
                    pages=self.stats.pages_fetched,
                    http_errors=self.stats.pages_http_error,
                    transport_failures=self.stats.pages_failed,
                )
        finally:
            scheduler.close()
            self.stats.host_slots = scheduler.host_stats()
            if self.journal is not None:
                self.journal.checkpoint()
                self.journal.close()
            if progress is not None:
                progress.stop()
            self._scheduler = None
        visited.sort()
        return visited

    def _crawl_wave(
        self, start_url, start, start_str, processed, visited,
        on_page, progress,
    ) -> list[str]:
        """The legacy level-synchronous frontier (benchmark comparator)."""
        frontier = _WaveFrontier()
        frontier.mark_seen(start_str)
        frontier.push(start_str, 0)
        self._wave_queue = frontier.queue
        if progress is not None:
            progress.start()
        try:
            with get_tracer().span(
                "robot.crawl", start=start_url, workers=self.policy.concurrency
            ) as crawl_span:
                get_registry().gauge_max(
                    "robot.frontier.workers", self.policy.concurrency
                )
                self._drive_wave(frontier, start, processed, visited, on_page)
                crawl_span.annotate(
                    pages=self.stats.pages_fetched,
                    http_errors=self.stats.pages_http_error,
                    transport_failures=self.stats.pages_failed,
                )
        finally:
            if progress is not None:
                progress.stop()
            self._wave_queue = None
        visited.sort()
        return visited

    # -- drivers ------------------------------------------------------------

    def _drive_inline(
        self, scheduler, start, processed, visited, on_page
    ) -> None:
        """One thread does everything: pop, fetch, consume, repeat."""
        while True:
            request = scheduler.next_request()
            if request is None:
                break
            response = self._fetch(request.url)
            scheduler.offer(request, response)
            item = scheduler.next_result()
            if item is None:  # pragma: no cover - offer guarantees one
                break
            request, response = item
            try:
                self._consume(
                    request.url, request.depth, response, scheduler,
                    start, processed, visited, on_page,
                )
            finally:
                scheduler.mark_done(request)

    def _drive_threaded(
        self, scheduler, start, processed, visited, on_page
    ) -> None:
        """Workers fetch continuously; this thread consumes results.

        Consumption (link extraction, callbacks, enqueueing) stays on
        the calling thread, so ``on_page`` is never entered
        concurrently.
        """

        def worker() -> None:
            while True:
                request = scheduler.next_request()
                if request is None:
                    return
                response = None
                try:
                    response = self._fetch(request.url)
                finally:
                    scheduler.offer(request, response)

        with ThreadPoolExecutor(
            max_workers=self.policy.concurrency,
            thread_name_prefix="frontier",
        ) as pool:
            futures = [
                pool.submit(worker) for _ in range(self.policy.concurrency)
            ]
            try:
                while True:
                    item = scheduler.next_result()
                    if item is None:
                        break
                    request, response = item
                    try:
                        self._consume(
                            request.url, request.depth, response, scheduler,
                            start, processed, visited, on_page,
                        )
                    finally:
                        scheduler.mark_done(request)
            finally:
                scheduler.close()  # wake any parked workers so join ends
        for future in futures:
            future.result()  # surface unexpected worker crashes

    def _drive_wave(
        self, frontier, start, processed, visited, on_page
    ) -> None:
        """Level-synchronous BFS: fetch each wave in parallel, fold in order.

        Kept only as the ``frontier="wave"`` comparator: every wave
        barriers on its slowest fetch, and a ``max_pages`` cutoff
        mid-wave discards already-issued fetches.
        """
        registry = get_registry()
        tracer = get_tracer()
        throttles: dict[str, _HostThrottle] = {}
        throttles_lock = threading.Lock()

        def fetch_one(url: str) -> Optional[Response]:
            host = urlparse(url).host
            with throttles_lock:
                throttle = throttles.get(host)
                if throttle is None:
                    throttle = throttles[host] = _HostThrottle(
                        self.policy.per_host_delay_s,
                        self.policy.max_in_flight_per_host,
                    )
            with throttle:
                return self._fetch(url)

        with ThreadPoolExecutor(
            max_workers=self.policy.concurrency,
            thread_name_prefix="frontier",
        ) as pool:
            while frontier.queue and (
                self.stats.pages_fetched < self.policy.max_pages
            ):
                wave = []
                while frontier.queue:
                    url, depth = frontier.queue.popleft()
                    if self._admit(url, start):
                        wave.append((url, depth))
                if not wave:
                    break
                registry.inc("robot.frontier.waves")
                registry.gauge_max("robot.frontier.wave_size", len(wave))
                with tracer.span("robot.frontier.wave", urls=len(wave)):
                    futures = [
                        pool.submit(fetch_one, url) for url, _ in wave
                    ]
                    for (url, depth), future in zip(wave, futures):
                        response = future.result()
                        if self.stats.pages_fetched >= self.policy.max_pages:
                            continue  # cutoff: drain remaining futures
                        self._consume(
                            url, depth, response, frontier, start,
                            processed, visited, on_page,
                        )

    # -- resume -------------------------------------------------------------

    def _restore(
        self, state, scheduler, start, processed, visited, on_page
    ) -> None:
        """Replay a journal: restore completed pages, requeue the rest.

        Completed page bodies come from the HTTP cache's
        content-addressed store; a page whose body was evicted is
        requeued for a real fetch (counted in
        ``robot.frontier.resume_refetched``).
        """
        registry = get_registry()
        cache = getattr(self.agent, "http_cache", None)
        # Seed the dupefilter first so replayed links are not re-queued
        # on top of the restored pending entries.
        scheduler.restore(state.seen, state.next_seq)
        refetch: list[tuple[int, str]] = []
        restored = 0
        for record in state.outcomes:
            kind = record.get("t")
            url = str(record.get("url", ""))
            if kind == "ok":
                body = None
                digest = record.get("sha")
                if cache is not None and digest:
                    body = cache.body_by_digest(digest)
                if body is None:
                    refetch.append((int(record.get("d", 0)), url))
                    registry.inc("robot.frontier.resume_refetched")
                    continue
                response = Response(
                    status=200,
                    url=str(record.get("final", url)),
                    body=body,
                    headers=Headers(
                        {"Content-Type": str(record.get("ct", "text/html"))}
                    ),
                )
                self._consume(
                    url, int(record.get("d", 0)), response, scheduler,
                    start, processed, visited, on_page, live=False,
                )
                registry.inc("robot.frontier.resumed_pages")
                restored += 1
            elif kind == "err":
                self.stats.pages_http_error += 1
                self.stats.http_error_urls[url] = int(record.get("status", 0))
                registry.inc("robot.fetch.http_errors")
                restored += 1
            elif kind == "fail":
                self.stats.pages_failed += 1
                self.stats.failed_urls[url] = str(record.get("error", ""))
                registry.inc("robot.fetch.failures")
                restored += 1
            elif kind == "dup":
                restored += 1
        scheduler.set_budget_used(restored)
        for depth, seq, url in state.pending:
            scheduler.push(url, depth, seq=seq)
        for depth, url in refetch:
            seq = scheduler.push(url, depth)
            if self.journal is not None:
                self.journal.enqueued(url, depth, seq)

    # -- shared crawl steps ------------------------------------------------------

    def _admit(self, url: str, start: URL) -> bool:
        """Offsite and robots.txt filtering (consumer thread only)."""
        parsed = urlparse(url)
        if self.policy.same_host_only and not parsed.same_host(start):
            self.stats.urls_skipped_offsite += 1
            return False
        if not self.allowed(url):
            self.stats.urls_skipped_robots += 1
            return False
        return True

    def _offer(self, url: str, depth: int, frontier, start: URL) -> None:
        """Run one discovered link through dupefilter + admission."""
        if not frontier.mark_seen(url):
            return
        if not self._admit(url, start):
            return
        seq = frontier.push(url, depth)
        if self.journal is not None:
            self.journal.enqueued(url, depth, seq)

    def _owns(self, url: str) -> bool:
        """Is this crawl's shard responsible for processing ``url``?"""
        return shard_owns(url, self.policy.shards, self.policy.shard)

    def _consume(
        self, url, depth, response, frontier, start, processed, visited,
        on_page, live=True,
    ) -> None:
        """Fold one fetch outcome into the crawl (consumer thread only).

        ``live=False`` is the journal-replay path: stats, metrics,
        the visited list and ``on_page`` are all restored, but nothing
        is re-journaled and no time-series samples or events are
        emitted for work this run did not do.
        """
        registry = get_registry()
        if response is None:
            self.stats.pages_failed += 1
            registry.inc("robot.fetch.failures")
            get_event_log().emit(
                "robot.fetch_failed", level="warn", url=url,
                error=self.stats.failed_urls.get(url, ""),
            )
            if live and self.journal is not None:
                self.journal.completed({
                    "t": "fail", "url": url,
                    "error": self.stats.failed_urls.get(url, ""),
                })
            return
        if not response.ok:
            self.stats.pages_http_error += 1
            self.stats.http_error_urls[url] = response.status
            registry.inc("robot.fetch.http_errors")
            get_event_log().emit(
                "robot.http_error", level="warn", url=url,
                status=response.status,
            )
            if live and self.journal is not None:
                self.journal.completed(
                    {"t": "err", "url": url, "status": response.status}
                )
            return

        if response.url in processed:
            # A redirect landed on a page already handled (or a page
            # both linked directly and reached via redirect earlier).
            if live and self.journal is not None:
                self.journal.completed({"t": "dup", "url": url})
            return
        processed.add(response.url)
        # The final URL after redirects must never be queued again.
        frontier.mark_seen(response.url)
        self.stats.pages_fetched += 1
        self.stats.bytes_fetched += len(response.body)
        registry.inc("robot.pages.fetched")
        registry.inc("robot.fetch.bytes", len(response.body))
        if live:
            series = get_timeseries()
            if series is not None:
                series.observe("robot.pages.fetched")
        visited.append(response.url)
        if not response.is_html:
            if live and self.journal is not None:
                self.journal.completed(self._ok_record(url, depth, response))
            return

        links = extract_links(response.body)
        if on_page is not None:
            # Sharded audits: only the owning shard processes the page;
            # link extraction still runs so every shard discovers the
            # whole frontier (the partition is of the *work*, not the
            # graph).  Ownership keys on the request URL -- the same
            # fingerprint the dupefilter admitted.
            if self._owns(url):
                on_page(response.url, response, links)
            else:
                registry.inc("robot.frontier.shard_skipped")

        for link in links:
            if not link.checkable:
                continue
            if link.kind == "resource" and not self.policy.follow_resources:
                continue
            absolute = str(
                urljoin(response.url, link.url).without_fragment()
            )
            self._offer(absolute, depth + 1, frontier, start)
        if live and self.journal is not None:
            self.journal.completed(self._ok_record(url, depth, response))

    @staticmethod
    def _ok_record(url: str, depth: int, response: Response) -> dict:
        return {
            "t": "ok",
            "url": url,
            "final": response.url,
            "d": depth,
            "sha": body_digest(response.body),
            "ct": response.headers.get("Content-Type", "text/html"),
            "n": len(response.body),
            "html": response.is_html,
        }

    def _fetch(self, url: str):
        """One URL, with up to ``policy.max_retries`` re-attempts.

        Retries only outcomes that can change: transport errors and
        transient HTTP statuses (5xx/429).  The last response -- OK or
        not -- is returned so a persistent 404/500 is reported as an
        HTTP error; ``None`` means no attempt produced a response.
        The fetch's wall time (across all attempts) lands in the
        ``robot.fetch.latency_ms`` histogram, the windowed time-series
        (when armed), the slow-op event log, and the crawl's bounded
        slowest-N list.  Safe to call from frontier worker threads.
        """
        registry = get_registry()
        start = time.perf_counter()
        response = None
        last_error: Optional[FetchError] = None
        with self._stats_lock:
            self._in_flight += 1
        try:
            # A negative max_retries must still mean one attempt.
            for attempt in range(max(0, self.policy.max_retries) + 1):
                if attempt:
                    with self._stats_lock:
                        self.stats.retries += 1
                    registry.inc("robot.fetch.retries")
                registry.inc("robot.fetch.requests")
                try:
                    candidate = self.agent.get(url)
                except FetchError as error:
                    last_error = error
                    continue
                response = candidate
                if candidate.ok or candidate.status not in RETRYABLE_STATUSES:
                    break
        finally:
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            with self._stats_lock:
                self._in_flight -= 1
                self.stats.note_latency(url, elapsed_ms)
                if response is None and last_error is not None:
                    self.stats.failed_urls[url] = str(last_error)
            registry.observe("robot.fetch.latency_ms", elapsed_ms)
            series = get_timeseries()
            if series is not None:
                series.observe("robot.fetch.latency_ms", elapsed_ms)
            events = get_event_log()
            if events.enabled:
                events.note_operation("robot.fetch", elapsed_ms, url=url)
        return response
