"""The streaming crawl frontier: scheduler, host slots, and journal.

The wave-synchronous frontier of earlier versions barriered every BFS
level on its slowest page.  This module replaces it with the
scheduler/dupefilter/downloader-slot shape popularised by Scrapy:

- :class:`FrontierScheduler` -- a continuously-fed priority queue
  ordered by ``(depth, discovery order)``.  Workers pull the next
  *eligible* request the moment they finish the previous one; there are
  no barriers, so one slow host never idles the other hosts' workers.
- :func:`request_fingerprint` -- the dupefilter key: each URL is
  admitted into the queue at most once per crawl, however many pages
  link to it.
- :class:`HostSlot` -- per-host politeness: at most ``max_in_flight``
  concurrent fetches against one host, and a minimum ``delay_s``
  between fetch *starts*.  A request whose host has no free slot is
  parked (per-host, still priority-ordered) while lower-priority
  requests for other hosts proceed.
- :class:`FrontierJournal` -- a disk-backed, resumable frontier under
  ``--state-dir``: an append-only JSON-lines journal (flushed per
  record, so a SIGTERM loses at most the torn last line) compacted into
  an atomic ``checkpoint.json`` written like ``httpcache``'s versioned
  index.  ``poacher --state-dir D --resume`` replays it and continues a
  killed crawl without refetching completed pages.

Ordering contract: the queue is *consumed* in completion order (that is
the whole point), so the crawl's canonical outputs -- the visited list
and the poacher report -- are sorted by URL at the end.  Sequential and
concurrent crawls of the same site therefore stay byte-identical.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import os
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, NamedTuple, Optional, Union

from repro.obs.metrics import get_registry
from repro.www.message import Response
from repro.www.url import urljoin, urlparse

#: Bump when the journal/checkpoint layout changes; old state resumes cold.
JOURNAL_VERSION = 1


def request_fingerprint(url: str) -> str:
    """The dupefilter key for ``url``: sha256 of the canonical form.

    Fragments never reach the server, so ``page.html#a`` and
    ``page.html#b`` are one request; scheme/host case and default ports
    are normalised away by :meth:`repro.www.url.URL.normalised`.
    """
    try:
        canonical = str(urljoin(url, "").without_fragment().normalised())
    except ValueError:
        canonical = url
    return hashlib.sha256(canonical.encode("utf-8", "surrogatepass")).hexdigest()


def shard_owns(url: str, shards: int, shard: int) -> bool:
    """Does ``shard`` (of ``shards``) own ``url``'s fingerprint?

    The sharded-audit partition: shard K processes exactly the URLs
    whose ``request_fingerprint % shards == K``.  The fingerprint is
    already the dupefilter's canonical identity, so a URL lands in the
    same shard however it was spelled, and the partition is stable
    across runs and machines.
    """
    if shards <= 1:
        return True
    return int(request_fingerprint(url), 16) % shards == shard


class FrontierRequest(NamedTuple):
    """One admitted fetch: priority is ``(depth, seq)``, FIFO within depth."""

    depth: int
    seq: int
    url: str


class HostSlot:
    """Politeness state for one host (scheduler-lock protected)."""

    __slots__ = ("delay_s", "max_in_flight", "in_flight", "next_ok",
                 "fetches", "max_busy", "wait_ms")

    def __init__(self, delay_s: float, max_in_flight: int) -> None:
        self.delay_s = max(0.0, delay_s)
        self.max_in_flight = max(1, max_in_flight)
        self.in_flight = 0
        self.next_ok = 0.0
        self.fetches = 0
        self.max_busy = 0
        self.wait_ms = 0.0

    def eligible(self, now: float) -> bool:
        return self.in_flight < self.max_in_flight and self.next_ok <= now

    def take(self, now: float) -> None:
        self.in_flight += 1
        self.fetches += 1
        self.max_busy = max(self.max_busy, self.in_flight)
        if self.delay_s:
            self.next_ok = max(now, self.next_ok) + self.delay_s

    def release(self) -> None:
        self.in_flight -= 1


class FrontierScheduler:
    """Priority queue + dupefilter + per-host downloader slots.

    Thread contract: any number of *worker* threads call
    :meth:`next_request` / :meth:`offer`; exactly one *consumer* thread
    (the one running the crawl) calls :meth:`mark_seen` / :meth:`push` /
    :meth:`next_result` / :meth:`mark_done`.  All state lives under one
    condition variable, so the sequential crawl can run the same
    scheduler inline with zero threads.
    """

    def __init__(
        self,
        max_pages: int = 1000,
        per_host_delay_s: float = 0.0,
        max_in_flight_per_host: int = 4,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.max_pages = max_pages
        self.per_host_delay_s = per_host_delay_s
        self.max_in_flight_per_host = max_in_flight_per_host
        self.clock = clock
        self._cond = threading.Condition()
        #: Globally eligible requests, ordered by (depth, seq).
        self._heap: list[tuple[int, int, str]] = []
        #: host -> heap of (depth, seq, url, parked_at) waiting for a slot.
        self._parked: dict[str, list[tuple[int, int, str, float]]] = {}
        self._slots: dict[str, HostSlot] = {}
        self._seen: set[str] = set()
        self._next_seq = 0
        self._queued = 0
        self._in_flight = 0
        self._admitted = 0
        #: Requests admitted but not yet settled via mark_done (includes
        #: in-flight fetches, queued results, and the one being consumed).
        self._outstanding = 0
        self._results: deque[tuple[FrontierRequest, Optional[Response]]] = deque()
        self._closed = False

    # -- feeding (consumer thread) -----------------------------------------

    def mark_seen(self, url: str) -> bool:
        """Dupefilter: ``True`` the first time this request is seen."""
        fingerprint = request_fingerprint(url)
        with self._cond:
            if fingerprint in self._seen:
                return False
            self._seen.add(fingerprint)
            return True

    def push(self, url: str, depth: int, seq: Optional[int] = None) -> int:
        """Queue a request (already past the dupefilter); returns its seq."""
        with self._cond:
            if seq is None:
                seq = self._next_seq
            self._next_seq = max(self._next_seq, seq + 1)
            heapq.heappush(self._heap, (depth, seq, url))
            self._queued += 1
            get_registry().set_gauge("robot.frontier.queue_depth", self._queued)
            self._cond.notify_all()
            return seq

    def restore(self, seen: set[str], next_seq: int) -> None:
        """Seed the dupefilter from a resumed journal (before replay)."""
        with self._cond:
            self._seen |= seen
            self._next_seq = max(self._next_seq, next_seq)

    def set_budget_used(self, admitted: int) -> None:
        """Count restored completions against the admission budget."""
        with self._cond:
            self._admitted = admitted

    # -- scheduling (worker threads) ---------------------------------------

    def next_request(self) -> Optional[FrontierRequest]:
        """Block until a request is eligible; ``None`` when the crawl is over.

        "Over" for a worker means: closed, the admission budget is
        spent, or nothing is queued and no admitted request is still
        outstanding (an outstanding one may yet discover new links).
        """
        with self._cond:
            while True:
                if self._closed:
                    return None
                if self._admitted >= self.max_pages:
                    return None
                request = self._pop_eligible()
                if request is not None:
                    return request
                if self._queued == 0 and self._outstanding == 0:
                    return None
                self._cond.wait(self._politeness_wait())

    def poll(self) -> Optional[FrontierRequest]:
        """Non-blocking :meth:`next_request` (tests and the inline driver)."""
        with self._cond:
            if self._closed or self._admitted >= self.max_pages:
                return None
            return self._pop_eligible()

    def offer(self, request: FrontierRequest, response: Optional[Response]) -> None:
        """A worker finished fetching ``request``; queue its result."""
        registry = get_registry()
        with self._cond:
            self._in_flight -= 1
            host = self._host_of(request.url)
            slot = self._slots.get(host)
            if slot is not None:
                slot.release()
                registry.set_gauge(
                    f"robot.frontier.slots_busy.{host}", slot.in_flight
                )
            registry.set_gauge(
                "robot.frontier.slots_busy",
                sum(s.in_flight for s in self._slots.values()),
            )
            self._results.append((request, response))
            self._cond.notify_all()

    # -- consuming (consumer thread) ---------------------------------------

    def next_result(self) -> Optional[tuple[FrontierRequest, Optional[Response]]]:
        """Block for the next completed fetch; ``None`` when none can come."""
        with self._cond:
            while True:
                if self._results:
                    return self._results.popleft()
                if self._in_flight == 0 and (
                    self._closed
                    or self._queued == 0
                    or self._admitted >= self.max_pages
                ):
                    return None
                self._cond.wait()

    def mark_done(self, request: FrontierRequest) -> None:
        """The consumer fully processed ``request`` (links enqueued)."""
        with self._cond:
            self._outstanding -= 1
            self._cond.notify_all()

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    # -- introspection ------------------------------------------------------

    @property
    def queued(self) -> int:
        return self._queued

    @property
    def in_flight(self) -> int:
        return self._in_flight

    @property
    def admitted(self) -> int:
        return self._admitted

    def busiest_slot(self) -> Optional[tuple[str, int, int]]:
        """``(host, busy, capacity)`` for the busiest host, if any."""
        with self._cond:
            best: Optional[tuple[str, int, int]] = None
            for host, slot in sorted(self._slots.items()):
                if best is None or slot.in_flight > best[1]:
                    best = (host, slot.in_flight, slot.max_in_flight)
            return best

    def host_stats(self) -> dict[str, dict[str, float]]:
        """Per-host slot utilisation for ``--stats``."""
        with self._cond:
            return {
                host: {
                    "fetches": slot.fetches,
                    "max_in_flight": slot.max_busy,
                    "wait_ms": round(slot.wait_ms, 3),
                }
                for host, slot in sorted(self._slots.items())
            }

    # -- internals (always called with the condition held) ------------------

    @staticmethod
    def _host_of(url: str) -> str:
        try:
            return urlparse(url).host
        except ValueError:
            return ""

    def _slot_for(self, host: str) -> HostSlot:
        slot = self._slots.get(host)
        if slot is None:
            slot = self._slots[host] = HostSlot(
                self.per_host_delay_s, self.max_in_flight_per_host
            )
        return slot

    def _pop_eligible(self) -> Optional[FrontierRequest]:
        now = self.clock()
        # The best already-parked request whose host freed up ...
        best_host: Optional[str] = None
        best_prio: Optional[tuple[int, int]] = None
        for host, parked in self._parked.items():
            if parked and self._slots[host].eligible(now):
                prio = (parked[0][0], parked[0][1])
                if best_prio is None or prio < best_prio:
                    best_prio, best_host = prio, host
        # ... competes with the global heap: pop heap entries that beat
        # it, parking any whose host is saturated or in its delay gap.
        while self._heap and (best_prio is None or self._heap[0][:2] < best_prio):
            depth, seq, url = heapq.heappop(self._heap)
            host = self._host_of(url)
            slot = self._slot_for(host)
            if slot.eligible(now):
                return self._take(FrontierRequest(depth, seq, url), host, now, None)
            heapq.heappush(
                self._parked.setdefault(host, []), (depth, seq, url, now)
            )
        if best_host is not None:
            depth, seq, url, parked_at = heapq.heappop(self._parked[best_host])
            return self._take(
                FrontierRequest(depth, seq, url), best_host, now, parked_at
            )
        return None

    def _take(
        self,
        request: FrontierRequest,
        host: str,
        now: float,
        parked_at: Optional[float],
    ) -> FrontierRequest:
        registry = get_registry()
        slot = self._slot_for(host)
        slot.take(now)
        self._queued -= 1
        self._admitted += 1
        self._in_flight += 1
        self._outstanding += 1
        if parked_at is not None:
            waited_ms = (now - parked_at) * 1000.0
            if waited_ms > 0:
                slot.wait_ms += waited_ms
                registry.observe("robot.frontier.host_wait_ms", waited_ms)
        registry.inc("robot.frontier.admitted")
        registry.set_gauge("robot.frontier.queue_depth", self._queued)
        registry.set_gauge(f"robot.frontier.slots_busy.{host}", slot.in_flight)
        registry.set_gauge(
            "robot.frontier.slots_busy",
            sum(s.in_flight for s in self._slots.values()),
        )
        return request

    def _politeness_wait(self) -> Optional[float]:
        """How long a worker may sleep: until the earliest slot opens."""
        if not any(self._parked.values()) and not self._heap:
            return None  # woken by push/offer/mark_done/close
        now = self.clock()
        soonest: Optional[float] = None
        for host, parked in self._parked.items():
            slot = self._slots[host]
            if not parked or slot.in_flight >= slot.max_in_flight:
                continue  # woken by the release that frees the slot
            wait = slot.next_ok - now
            if soonest is None or wait < soonest:
                soonest = wait
        if soonest is None:
            return None
        return max(soonest, 0.001)


# -- the resumable journal --------------------------------------------------


@dataclass
class ResumeState:
    """What a loaded journal knows: enough to continue, nothing more."""

    start: str
    #: (depth, seq, url) enqueued but never completed, priority order.
    pending: list[tuple[int, int, str]] = field(default_factory=list)
    #: Dupefilter fingerprints of every request ever enqueued.
    seen: set[str] = field(default_factory=set)
    next_seq: int = 0
    #: Completion records (``ok``/``dup``/``err``/``fail``) in crawl order.
    outcomes: list[dict] = field(default_factory=list)


class FrontierJournal:
    """Disk-backed frontier state under ``<state-dir>/frontier/``.

    Two tiers, both tolerant of a kill at any byte:

    - ``journal.jsonl`` -- append-only, flushed per record.  One
      ``enq`` line per admitted-into-queue URL and one completion line
      (``ok``/``dup``/``err``/``fail``) per settled fetch.  A torn final
      line (the usual SIGTERM artefact) is silently dropped; any other
      corruption makes :meth:`resume` return ``None`` so the crawl
      restarts clean instead of crashing.
    - ``checkpoint.json`` -- an atomic (tempfile + ``os.replace``)
      compaction of everything journaled so far, written at crawl end
      and every ``checkpoint_every`` completions; the journal is then
      truncated.  ``on_checkpoint`` lets the caller persist companion
      state (poacher saves the HTTP index) at the same instants.

    ``ok`` records carry the body's sha256, not the body: on resume the
    bytes come back from :class:`repro.www.httpcache.HttpCache`'s
    content-addressed body store, which persists bodies synchronously at
    store time -- so even a crawl killed before any index save resumes
    without refetching completed pages.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        checkpoint_every: int = 256,
        on_checkpoint: Optional[Callable[[], None]] = None,
    ) -> None:
        self.directory = Path(directory)
        self.checkpoint_every = max(1, checkpoint_every)
        self.on_checkpoint = on_checkpoint
        self._handle = None
        self._start: Optional[str] = None
        #: url -> (depth, seq) for every enqueued request.
        self._enqueued: dict[str, tuple[int, int]] = {}
        self._done: set[str] = set()
        self._outcomes: list[dict] = []
        self._since_checkpoint = 0
        self._loaded_seen: set[str] = set()
        self._loaded_next_seq = 0

    @property
    def journal_path(self) -> Path:
        return self.directory / "journal.jsonl"

    @property
    def checkpoint_path(self) -> Path:
        return self.directory / "checkpoint.json"

    # -- lifecycle ----------------------------------------------------------

    def start(self, start_url: str) -> None:
        """Begin a fresh crawl: wipe any previous frontier state."""
        self._start = start_url
        self._enqueued.clear()
        self._done.clear()
        self._outcomes.clear()
        self._since_checkpoint = 0
        self._loaded_seen = set()
        self._loaded_next_seq = 0
        self.directory.mkdir(parents=True, exist_ok=True)
        try:
            self.checkpoint_path.unlink()
        except OSError:
            pass
        self._handle = self.journal_path.open("w", encoding="utf-8")
        self._append(
            {"t": "frontier", "v": JOURNAL_VERSION, "start": start_url}
        )

    def resume(self, start_url: str) -> Optional[ResumeState]:
        """Load persisted state and reopen the journal for appending.

        Returns ``None`` -- and leaves the caller to :meth:`start`
        fresh -- when there is nothing to resume or the state is
        corrupt or belongs to a different crawl.
        """
        state = self.load(start_url)
        if state is None:
            return None
        self._start = start_url
        self._enqueued = {
            url: (depth, seq) for depth, seq, url in state.pending
        }
        self._done = set()
        self._outcomes = list(state.outcomes)
        self._since_checkpoint = 0
        self.directory.mkdir(parents=True, exist_ok=True)
        # Everything loaded is folded into the next checkpoint, so the
        # journal restarts at just a header.
        self._handle = self.journal_path.open("w", encoding="utf-8")
        self._append(
            {"t": "frontier", "v": JOURNAL_VERSION, "start": start_url}
        )
        self.checkpoint(
            pending=state.pending, seen=state.seen, next_seq=state.next_seq
        )
        return state

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None

    # -- appends (flushed immediately) --------------------------------------

    def enqueued(self, url: str, depth: int, seq: int) -> None:
        self._enqueued[url] = (depth, seq)
        self._append({"t": "enq", "url": url, "d": depth, "s": seq})

    def completed(self, record: dict) -> None:
        """One settled fetch: ``{"t": "ok"|"dup"|"err"|"fail", "url": ...}``."""
        self._done.add(record["url"])
        self._outcomes.append(record)
        self._append(record)
        self._since_checkpoint += 1
        if self._since_checkpoint >= self.checkpoint_every:
            self.checkpoint()

    def _append(self, record: dict) -> None:
        if self._handle is None:
            return
        try:
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._handle.flush()
        except (OSError, ValueError):
            get_registry().inc("robot.frontier.journal_write_errors")

    # -- checkpoints --------------------------------------------------------

    def pending(self) -> list[tuple[int, int, str]]:
        """Enqueued-but-not-completed requests, priority order."""
        return sorted(
            (depth, seq, url)
            for url, (depth, seq) in self._enqueued.items()
            if url not in self._done
        )

    def checkpoint(
        self,
        pending: Optional[list[tuple[int, int, str]]] = None,
        seen: Optional[set[str]] = None,
        next_seq: Optional[int] = None,
    ) -> None:
        """Atomically compact journal + prior checkpoint into one file."""
        if self._start is None:
            return
        if pending is None:
            pending = self.pending()
        if seen is None:
            seen = self._loaded_seen | {
                request_fingerprint(url) for url in self._enqueued
            }
        if next_seq is None:
            seqs = [seq for _, seq in self._enqueued.values()]
            next_seq = max(seqs, default=-1) + 1
            next_seq = max(next_seq, self._loaded_next_seq)
        payload = json.dumps(
            {
                "version": JOURNAL_VERSION,
                "start": self._start,
                "next_seq": next_seq,
                "pending": [list(item) for item in pending],
                "seen": sorted(seen),
                "outcomes": self._outcomes,
            },
            sort_keys=True,
        )
        self.directory.mkdir(parents=True, exist_ok=True)
        try:
            handle = tempfile.NamedTemporaryFile(
                "w",
                encoding="utf-8",
                dir=self.directory,
                prefix=".checkpoint.",
                suffix=".tmp",
                delete=False,
            )
            with handle:
                handle.write(payload)
            os.replace(handle.name, self.checkpoint_path)
        except OSError:
            get_registry().inc("robot.frontier.journal_write_errors")
            return
        get_registry().inc("robot.frontier.checkpoints")
        # The checkpoint now owns everything; restart the journal.
        if self._handle is not None:
            self.close()
            self._handle = self.journal_path.open("w", encoding="utf-8")
            self._append(
                {"t": "frontier", "v": JOURNAL_VERSION, "start": self._start}
            )
        self._since_checkpoint = 0
        if self.on_checkpoint is not None:
            self.on_checkpoint()

    # -- loading ------------------------------------------------------------

    def load(self, start_url: str) -> Optional[ResumeState]:
        """Fold checkpoint + journal into a :class:`ResumeState`.

        Pure read; does not open the journal for writing.  ``None``
        means "nothing usable": no state, corrupt state (counted in
        ``robot.frontier.journal_corrupt``), or a different start URL.
        """
        registry = get_registry()
        state = ResumeState(start=start_url)
        has_checkpoint = False
        if self.checkpoint_path.exists():
            try:
                data = json.loads(
                    self.checkpoint_path.read_text(encoding="utf-8")
                )
                if (
                    not isinstance(data, dict)
                    or data.get("version") != JOURNAL_VERSION
                    or not isinstance(data.get("outcomes"), list)
                ):
                    raise ValueError("bad checkpoint layout")
                if data.get("start") != start_url:
                    return None
                state.pending = [
                    (int(d), int(s), str(u)) for d, s, u in data["pending"]
                ]
                state.seen = set(data.get("seen", []))
                state.next_seq = int(data.get("next_seq", 0))
                state.outcomes = [
                    dict(rec) for rec in data["outcomes"]
                    if isinstance(rec, dict)
                ]
                has_checkpoint = True
            except (OSError, ValueError, TypeError, KeyError):
                registry.inc("robot.frontier.journal_corrupt")
                return None
        records: list[dict] = []
        if self.journal_path.exists():
            try:
                lines = self.journal_path.read_text(
                    encoding="utf-8"
                ).splitlines()
            except OSError:
                lines = []
            for index, line in enumerate(lines):
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                    if not isinstance(record, dict) or "t" not in record:
                        raise ValueError("bad journal record")
                except ValueError:
                    if index == len(lines) - 1:
                        break  # torn final line: the expected kill artefact
                    registry.inc("robot.frontier.journal_corrupt")
                    return None
                records.append(record)
        if records:
            header, records = records[0], records[1:]
            if (
                header.get("t") != "frontier"
                or header.get("v") != JOURNAL_VERSION
                or header.get("start") != start_url
            ):
                if not has_checkpoint:
                    return None
                registry.inc("robot.frontier.journal_corrupt")
                return None
        elif not has_checkpoint:
            return None
        enqueued = {url: (depth, seq) for depth, seq, url in state.pending}
        try:
            for record in records:
                kind = record["t"]
                if kind == "enq":
                    url = str(record["url"])
                    enqueued[url] = (int(record["d"]), int(record["s"]))
                    state.seen.add(request_fingerprint(url))
                    state.next_seq = max(state.next_seq, int(record["s"]) + 1)
                elif kind in ("ok", "dup", "err", "fail"):
                    enqueued.pop(str(record["url"]), None)
                    state.outcomes.append(record)
                else:
                    raise KeyError(kind)
        except (KeyError, TypeError, ValueError):
            registry.inc("robot.frontier.journal_corrupt")
            return None
        state.pending = sorted(
            (depth, seq, url) for url, (depth, seq) in enqueued.items()
        )
        self._loaded_seen = set(state.seen)
        self._loaded_next_seq = state.next_seq
        if not state.outcomes and not state.pending:
            return None
        return state
