"""Meta tool -- combined checking services (paper section 3.6).

"Meta tools incorporate two or more of the categories described above,
usually merging the results into a single report."  The WebTechs service
combined strict validation with optional weblint output and a page
weight; the W3C validator combined SP with weblint.

:class:`~repro.meta.checker.MetaChecker` is that service as a library:
one call runs weblint, the strict SGML-style validator, the stylesheet
and script plugins (already inside weblint), link validation (when given
a user agent) and the page-weight estimate, and merges everything into a
single structured report with per-tool sections.
"""

from repro.meta.checker import MetaChecker, MetaReport, ToolSection

__all__ = ["MetaChecker", "MetaReport", "ToolSection"]
