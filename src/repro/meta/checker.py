"""The combined checking service."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.baselines.strict import StrictValidator
from repro.config.options import Options
from repro.core.diagnostics import Diagnostic
from repro.core.linter import Weblint
from repro.gateway.htmlreport import PageWeight, estimate_page_weight
from repro.robot.linkcheck import LinkChecker, LinkStatus
from repro.site.links import Link, extract_links
from repro.www.client import UserAgent


@dataclass
class ToolSection:
    """One tool's contribution to the merged report."""

    tool: str
    title: str
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.diagnostics)


@dataclass
class MetaReport:
    """The merged report of all enabled tools."""

    source_name: str
    sections: list[ToolSection] = field(default_factory=list)
    weight: Optional[PageWeight] = None
    broken_links: list[tuple[Link, LinkStatus]] = field(default_factory=list)

    def section(self, tool: str) -> Optional[ToolSection]:
        for candidate in self.sections:
            if candidate.tool == tool:
                return candidate
        return None

    def total_problems(self) -> int:
        return (
            sum(section.count for section in self.sections)
            + len(self.broken_links)
        )

    def summary_lines(self) -> list[str]:
        lines = [f"meta report for {self.source_name}"]
        for section in self.sections:
            lines.append(f"  [{section.tool}] {section.title}: "
                         f"{section.count} message(s)")
            for diagnostic in section.diagnostics:
                lines.append(f"    line {diagnostic.line}: {diagnostic.text}")
        if self.broken_links:
            lines.append(f"  [links] {len(self.broken_links)} broken link(s)")
            for link, status in self.broken_links:
                lines.append(
                    f"    line {link.line}: {link.url} ({status.describe()})"
                )
        if self.weight is not None:
            lines.append(
                f"  [weight] {self.weight.estimated_total_bytes} bytes "
                f"estimated with {self.weight.resource_count} resource(s)"
            )
        return lines


class MetaChecker:
    """Run several checking services over one document and merge."""

    def __init__(
        self,
        options: Optional[Options] = None,
        agent: Optional[UserAgent] = None,
        include_weblint: bool = True,
        include_strict: bool = True,
        include_weight: bool = True,
        include_links: bool = True,
    ) -> None:
        self.options = options if options is not None else Options.with_defaults()
        self.agent = agent
        self.include_weblint = include_weblint
        self.include_strict = include_strict
        self.include_weight = include_weight
        self.include_links = include_links and agent is not None
        self._weblint = Weblint(options=self.options)
        self._strict = StrictValidator(self._weblint.spec)

    def check_string(
        self, source: str, source_name: str = "-", base_url: str = ""
    ) -> MetaReport:
        report = MetaReport(source_name=source_name)
        if self.include_weblint:
            report.sections.append(
                ToolSection(
                    tool="weblint",
                    title="syntax and style (weblint)",
                    diagnostics=self._weblint.check_string(source, source_name),
                )
            )
        if self.include_strict:
            report.sections.append(
                ToolSection(
                    tool="strict",
                    title="strict validation (SGML parser style)",
                    diagnostics=self._strict.check_string(source, source_name),
                )
            )
        if self.include_links and base_url:
            checker = LinkChecker(self.agent)
            for link in extract_links(source):
                if not link.checkable:
                    continue
                status = checker.check(base_url, link.url)
                if status.broken:
                    report.broken_links.append((link, status))
        if self.include_weight:
            report.weight = estimate_page_weight(source)
        return report

    def check_url(self, url: str) -> MetaReport:
        """Fetch and meta-check one page (requires an agent)."""
        if self.agent is None:
            raise ValueError("MetaChecker.check_url needs a UserAgent")
        response = self.agent.get(url)
        if not response.ok:
            raise ValueError(
                f"cannot fetch {url}: {response.status} {response.reason}"
            )
        return self.check_string(
            response.body, source_name=response.url, base_url=response.url
        )
