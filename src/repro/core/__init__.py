"""Core weblint: message catalog, stack-machine engine, rules, reporters.

The public entry point is :class:`repro.core.linter.Weblint`, re-exported
at package top level as :class:`repro.Weblint`.

``Weblint`` is imported lazily here: the linter pulls in the config
package, which itself needs the message catalog from this package, and a
module-level import would close that cycle.
"""

from repro.core.diagnostics import Diagnostic
from repro.core.messages import CATALOG, Category, Message

__all__ = ["Weblint", "Diagnostic", "CATALOG", "Category", "Message"]


def __getattr__(name: str):
    if name == "Weblint":
        from repro.core.linter import Weblint

        return Weblint
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
