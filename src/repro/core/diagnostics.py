"""Diagnostic objects -- one emitted problem.

A :class:`Diagnostic` is what the checker produces and what reporters
format.  It is deliberately dumb data: formatting belongs to
:mod:`repro.core.reporter`, enable/disable policy to
:mod:`repro.config`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.core.messages import Category, Message, message


@dataclass
class Diagnostic:
    """One reported problem in one source location."""

    message_id: str
    category: Category
    text: str
    line: int
    column: int = 0
    filename: str = "-"
    arguments: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        message_id: str,
        *,
        line: int,
        column: int = 0,
        filename: str = "-",
        **arguments: Any,
    ) -> "Diagnostic":
        msg: Message = message(message_id)
        return cls(
            message_id=message_id,
            category=msg.category,
            text=msg.format(**arguments),
            line=line,
            column=column,
            filename=filename,
            arguments=dict(arguments),
        )

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.filename, self.line, self.column, self.message_id)

    def __str__(self) -> str:
        return f"{self.filename}({self.line}): {self.text}"


def count_by_category(
    diagnostics: Iterable[Diagnostic], include_zero: bool = True
) -> dict[str, int]:
    """Diagnostics per category name, e.g. ``{"error": 2, "style": 0}``.

    The one shared tally used by ``Weblint.counts``, the reporters'
    running totals and the verbose footer.  With ``include_zero=False``
    only categories that actually occurred appear.
    """
    counts = {category.value: 0 for category in Category}
    for diagnostic in diagnostics:
        counts[diagnostic.category.value] += 1
    if not include_zero:
        counts = {name: value for name, value in counts.items() if value}
    return counts
