"""Compiled event-dispatch tables.

The seed engine invoked all 12 rules' hooks for *every* token -- the
"one big loop" shape the paper's weblint 2 rewrite exists to escape.
This module compiles a rule set's subscriptions (see
:mod:`repro.core.rules.base`) into an immutable :class:`DispatchTable`:
one handler tuple per hook, with per-element-name fan-out maps (plus a
wildcard bucket) for the tag-keyed hooks.  The engine then walks a
token stream doing one dict lookup per tag instead of ``O(rules)``
no-op calls.

Tables are cached per ``(spec, options-fingerprint, ruleset)`` so the
``Weblint`` facade, ``sitecheck``, the gateway and ``poacher`` compile
once and reuse the same table across thousands of documents.  The cache
key includes the rule *instances* (tables hold bound methods), so a
long-lived checker hits the cache on every document.

Profiling happens here, per hook invocation
(:meth:`DispatchTable.run_hooks`), replacing the old ``TimedRule``
whole-rule shim that swapped the engine's shared rule list mid-check.
All per-check state lives in the :class:`~repro.core.context.CheckContext`,
so one engine can serve interleaved or nested checks.

Metrics (see docs/observability.md):

- ``engine.dispatch.calls`` -- rule-hook invocations, incremented once
  per document with the count accumulated in ``context.hook_calls``.
  The acceptance bar for the compiled pipeline is that this stays
  strictly below ``rules x tokens``.
- ``engine.dispatch.tables.compiled`` / ``...tables.cached`` -- table
  compilations vs cache hits.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Sequence

from repro.config.options import Options
from repro.core.context import CheckContext
from repro.core.rules.base import HOOK_NAMES, Rule, TAG_KEYED_HOOKS
from repro.html.spec import HTMLSpec
from repro.obs.metrics import get_registry

#: One compiled handler: ``(rule_name, bound_hook_method)``.  The name
#: rides along so per-hook profiling can attribute time without a wrapper.
Handler = tuple[str, Callable]


class DispatchTable:
    """Immutable per-``(spec, options, ruleset)`` handler tables.

    For the tag-keyed hooks the table holds a dict mapping element name
    to the merged handler tuple (wildcard-subscribed rules and rules
    naming that element, in rule order); names absent from the dict fall
    back to the wildcard bucket.  Non-tag hooks are plain tuples.
    """

    __slots__ = (
        "rule_names",
        "start_document",
        "end_document",
        "text",
        "comment",
        "declaration",
        "start_tag",
        "start_tag_any",
        "end_tag",
        "end_tag_any",
        "element_closed",
        "element_closed_any",
    )

    def __init__(
        self,
        rule_names: tuple[str, ...],
        start_document: tuple[Handler, ...],
        end_document: tuple[Handler, ...],
        text: tuple[Handler, ...],
        comment: tuple[Handler, ...],
        declaration: tuple[Handler, ...],
        start_tag: dict[str, tuple[Handler, ...]],
        start_tag_any: tuple[Handler, ...],
        end_tag: dict[str, tuple[Handler, ...]],
        end_tag_any: tuple[Handler, ...],
        element_closed: dict[str, tuple[Handler, ...]],
        element_closed_any: tuple[Handler, ...],
    ) -> None:
        self.rule_names = rule_names
        self.start_document = start_document
        self.end_document = end_document
        self.text = text
        self.comment = comment
        self.declaration = declaration
        self.start_tag = start_tag
        self.start_tag_any = start_tag_any
        self.end_tag = end_tag
        self.end_tag_any = end_tag_any
        self.element_closed = element_closed
        self.element_closed_any = element_closed_any

    # -- invocation --------------------------------------------------------

    @staticmethod
    def run_hooks(
        handlers: tuple[Handler, ...], context: CheckContext, *args
    ) -> None:
        """Invoke ``handlers`` in order; time each one when profiling.

        ``context.profiler`` is resolved once per check by the engine;
        ``context.hook_calls`` accumulates the per-document invocation
        count that feeds the ``engine.dispatch.calls`` metric.
        """
        if not handlers:
            return
        context.hook_calls += len(handlers)
        profiler = context.profiler
        if profiler is None:
            for handler in handlers:
                handler[1](context, *args)
        else:
            add = profiler.add
            clock = time.perf_counter
            for rule_name, hook in handlers:
                started = clock()
                hook(context, *args)
                add(rule_name, clock() - started)

    # -- introspection -----------------------------------------------------

    def handler_counts(self) -> dict[str, int]:
        """Handlers per hook (wildcard bucket for tag-keyed hooks)."""
        return {
            "start_document": len(self.start_document),
            "handle_start_tag": len(self.start_tag_any),
            "handle_end_tag": len(self.end_tag_any),
            "handle_element_closed": len(self.element_closed_any),
            "handle_text": len(self.text),
            "handle_comment": len(self.comment),
            "handle_declaration": len(self.declaration),
            "end_document": len(self.end_document),
        }


def compile_table(
    spec: HTMLSpec,
    options: Options,
    rules: Sequence[Rule],
    *,
    naive: bool = False,
) -> DispatchTable:
    """Compile ``rules``' subscriptions into a :class:`DispatchTable`.

    With ``naive=True`` every rule is attached to every hook with a
    wildcard -- the seed engine's call-everything behaviour.  The naive
    table exists for the golden equivalence test and the before/after
    benchmark, not for production use.
    """
    per_hook: dict[str, list[tuple[str, Callable, Optional[frozenset[str]]]]] = {
        hook: [] for hook in HOOK_NAMES
    }
    for rule in rules:
        if naive:
            interests = {hook: None for hook in HOOK_NAMES}
        else:
            interests = rule.subscriptions(spec, options)
        for hook, interest in interests.items():
            per_hook[hook].append((rule.name, getattr(rule, hook), interest))

    def flat(hook: str) -> tuple[Handler, ...]:
        return tuple((name, method) for name, method, _ in per_hook[hook])

    def fan_out(hook: str) -> tuple[dict[str, tuple[Handler, ...]], tuple[Handler, ...]]:
        entries = per_hook[hook]
        wildcard = tuple(
            (name, method) for name, method, interest in entries if interest is None
        )
        named: set[str] = set()
        for _, _, interest in entries:
            if interest is not None:
                named.update(interest)
        table: dict[str, tuple[Handler, ...]] = {}
        for element_name in named:
            table[element_name] = tuple(
                (name, method)
                for name, method, interest in entries
                if interest is None or element_name in interest
            )
        return table, wildcard

    start_tag, start_tag_any = fan_out("handle_start_tag")
    end_tag, end_tag_any = fan_out("handle_end_tag")
    element_closed, element_closed_any = fan_out("handle_element_closed")
    return DispatchTable(
        rule_names=tuple(rule.name for rule in rules),
        start_document=flat("start_document"),
        end_document=flat("end_document"),
        text=flat("handle_text"),
        comment=flat("handle_comment"),
        declaration=flat("handle_declaration"),
        start_tag=start_tag,
        start_tag_any=start_tag_any,
        end_tag=end_tag,
        end_tag_any=end_tag_any,
        element_closed=element_closed,
        element_closed_any=element_closed_any,
    )


# -- the table cache --------------------------------------------------------

#: Compiled tables keyed by (spec id, options fingerprint, rule ids,
#: naive).  Values hold strong references to the rule instances (through
#: their bound methods), which pins the ids in the key while the entry
#: lives.  Bounded FIFO keeps pathological churn (a new Weblint per
#: document) from growing without limit.
_TABLE_CACHE: dict[tuple, DispatchTable] = {}
_TABLE_CACHE_MAX = 64


def get_table(
    spec: HTMLSpec,
    options: Options,
    rules: Sequence[Rule],
    *,
    naive: bool = False,
) -> DispatchTable:
    """Cached :func:`compile_table`; the per-document entry point."""
    key = (
        id(spec),
        options.fingerprint(),
        tuple(id(rule) for rule in rules),
        naive,
    )
    table = _TABLE_CACHE.get(key)
    registry = get_registry()
    if table is not None:
        registry.inc("engine.dispatch.tables.cached")
        return table
    table = compile_table(spec, options, rules, naive=naive)
    registry.inc("engine.dispatch.tables.compiled")
    if len(_TABLE_CACHE) >= _TABLE_CACHE_MAX:
        _TABLE_CACHE.pop(next(iter(_TABLE_CACHE)))
    _TABLE_CACHE[key] = table
    return table


def clear_table_cache() -> None:
    """Drop every cached table (tests; reconfiguration at runtime)."""
    _TABLE_CACHE.clear()
