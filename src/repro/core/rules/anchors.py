"""Anchor checks.

- ``here-anchor``: 'Use of "here" and other content-free text within
  anchors (as in "click here to read more about crêpes").  One motivation
  to fix these is that many search engines will use anchor text'
  (section 4.3, style).  The word list is configurable -- the paper's
  future-work section asks for "additional examples of content-free
  text".
- ``mailto-link``: mailto anchors whose text hides the address.
- ``heading-in-anchor``: a heading inside an anchor should be an anchor
  inside a heading.
- ``expected-attribute``: an A element with neither HREF nor NAME.
- ``container-whitespace``: leading/trailing whitespace inside the
  anchor, which some browsers underline.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.core.context import CheckContext, OpenElement
from repro.core.rules.base import Rule
from repro.html.spec import ElementDef
from repro.html.tokens import EndTag, StartTag

_HEADINGS = frozenset({"h1", "h2", "h3", "h4", "h5", "h6"})
_PUNCTUATION = re.compile(r"[\s!\"#$%&'()*+,./:;<=>?@\[\]^_`{|}~-]+")


def normalise_anchor_text(text: str) -> str:
    """Lower-case, squeeze whitespace and strip surrounding punctuation."""
    squeezed = " ".join(text.split()).lower()
    return squeezed.strip(" !\"#$%&'()*+,./:;<=>?@[]^_`{|}~-")


class AnchorRule(Rule):
    name = "anchors"
    subscribes = {
        "handle_start_tag": _HEADINGS | {"a"},
        "handle_element_closed": {"a"},
    }

    def handle_start_tag(
        self,
        context: CheckContext,
        tag: StartTag,
        elem: Optional[ElementDef],
    ) -> None:
        name = tag.lowered
        if name in _HEADINGS:
            # The anchor is still on the stack when the heading starts.
            if context.in_element("a"):
                context.emit(
                    "heading-in-anchor", line=tag.line, heading=tag.name.upper()
                )
            return
        if name != "a":
            return
        if not (
            tag.has_attribute("href")
            or tag.has_attribute("name")
            or tag.has_attribute("id")
        ):
            context.emit(
                "expected-attribute",
                line=tag.line,
                element="A",
                expected="HREF or NAME",
            )

    def handle_element_closed(
        self,
        context: CheckContext,
        open_element: OpenElement,
        end_tag: Optional[EndTag],
        implicit: bool,
    ) -> None:
        if open_element.name != "a":
            return
        raw_text = open_element.text
        text = normalise_anchor_text(raw_text)
        line = open_element.line

        if text and text in context.options.here_words():
            context.emit("here-anchor", line=line, text=text)

        href_attr = open_element.tag.get("href")
        if href_attr is not None and href_attr.value.lower().startswith("mailto:"):
            address = href_attr.value[len("mailto:"):].strip().lower()
            if address and address not in raw_text.lower():
                context.emit("mailto-link", line=line, href=href_attr.value)

        if raw_text.strip():
            if raw_text[:1].isspace():
                context.emit(
                    "container-whitespace",
                    line=line,
                    position="leading",
                    element="A",
                )
            if raw_text[-1:].isspace():
                context.emit(
                    "container-whitespace",
                    line=line,
                    position="trailing",
                    element="A",
                )
