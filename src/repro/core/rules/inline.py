"""Page-specific configuration embedded in comments.

Paper section 6.1 (future plans): "Page-specific configuration of
weblint: configuration information embedded in comments, which
traditional lint supports [11]."

Syntax -- one or more ``;``-separated directives inside a comment whose
body starts with ``weblint:``::

    <!-- weblint: disable here-anchor, img-alt -->
    <!-- weblint: enable physical-font -->
    <!-- weblint: push; disable all -->
    ... machine-generated markup nobody will fix ...
    <!-- weblint: pop -->

``enable``/``disable`` take message ids or category names and apply from
the comment onward; ``push``/``pop`` scope a block of overrides.  Unknown
identifiers are ignored (a lint must not die because of a stale
directive), as is a ``pop`` with nothing pushed.
"""

from __future__ import annotations

import re

from repro.config.options import UnknownMessageError
from repro.core.context import CheckContext
from repro.core.rules.base import Rule
from repro.html.tokens import Comment

DIRECTIVE_PREFIX = re.compile(r"^\s*weblint:\s*(.*)$", re.IGNORECASE | re.DOTALL)


def parse_directives(comment_body: str) -> list[tuple[str, list[str]]] | None:
    """Parse a comment body; None when it is not a weblint directive.

    Returns ``(verb, arguments)`` pairs, e.g.
    ``[("push", []), ("disable", ["all"])]``.
    """
    match = DIRECTIVE_PREFIX.match(comment_body)
    if match is None:
        return None
    directives: list[tuple[str, list[str]]] = []
    for clause in match.group(1).split(";"):
        clause = clause.strip()
        if not clause:
            continue
        parts = clause.replace(",", " ").split()
        verb = parts[0].lower()
        directives.append((verb, [part.lower() for part in parts[1:]]))
    return directives


class InlineConfigRule(Rule):
    """Applies ``<!-- weblint: ... -->`` directives as they stream past."""

    name = "inline-config"
    subscribes = {"handle_comment": True}

    def handle_comment(self, context: CheckContext, token: Comment) -> None:
        directives = parse_directives(token.text)
        if directives is None:
            return
        for verb, arguments in directives:
            if verb == "push":
                context.push_enabled()
            elif verb == "pop":
                context.pop_enabled()
            elif verb in ("enable", "disable"):
                try:
                    if verb == "enable":
                        context.enable_inline(arguments)
                    else:
                        context.disable_inline(arguments)
                except UnknownMessageError:
                    pass  # stale directive: ignore, never crash
            # Unknown verbs are ignored for forward compatibility.


def is_directive_comment(comment_body: str) -> bool:
    return parse_directives(comment_body) is not None
