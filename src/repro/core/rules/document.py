"""Document-level checks.

Covers the paper's whole-document messages: the DOCTYPE check that leads
the section 4.2 example output, the outer ``<HTML>`` wrapper, the required
``<TITLE>``, title length, and the weblint-2 additions for search-engine
meta information, authorship LINK and NOFRAMES content.
"""

from __future__ import annotations

from typing import Optional

from repro.core.context import CheckContext, OpenElement
from repro.core.rules.base import Rule
from repro.html.spec import ElementDef
from repro.html.tokens import EndTag, StartTag


class DocumentRule(Rule):
    name = "document"

    def start_document(self, context: CheckContext) -> None:
        self._doctype_checked = False
        self._seen_meta_description = False
        self._seen_link_rev_made = False
        self._frameset_line: Optional[int] = None
        self._seen_noframes = False

    # -- per-tag tracking ---------------------------------------------------

    def handle_start_tag(
        self,
        context: CheckContext,
        tag: StartTag,
        elem: Optional[ElementDef],
    ) -> None:
        if not self._doctype_checked:
            self._doctype_checked = True
            if not context.seen_doctype:
                context.emit("require-doctype", line=tag.line)

        name = tag.lowered
        if name == "meta":
            meta_name = tag.get("name")
            if meta_name is not None and meta_name.value.lower() in (
                "description",
                "keywords",
            ):
                self._seen_meta_description = True
        elif name == "link":
            rev = tag.get("rev")
            if rev is not None and rev.value.lower() == "made":
                self._seen_link_rev_made = True
        elif name == "frameset" and self._frameset_line is None:
            self._frameset_line = tag.line
        elif name == "noframes":
            self._seen_noframes = True

    def handle_element_closed(
        self,
        context: CheckContext,
        open_element: OpenElement,
        end_tag: Optional[EndTag],
        implicit: bool,
    ) -> None:
        if open_element.name != "title":
            return
        title = open_element.text.strip()
        if title and len(title) > context.options.max_title_length:
            line = end_tag.line if end_tag is not None else open_element.line
            context.emit(
                "title-length",
                line=line,
                length=len(title),
                limit=context.options.max_title_length,
            )
        if context.title_text is None:
            context.title_text = title

    # -- end of document -----------------------------------------------------

    def end_document(self, context: CheckContext) -> None:
        if not context.seen_any_element:
            return
        if (
            context.first_element_name != "html"
            or context.last_end_tag_name != "html"
        ):
            context.emit("html-outer", line=1)
        if not context.seen_title:
            context.emit(
                "require-title", line=context.history.get("head", 1)
            )
        if self._frameset_line is not None and not self._seen_noframes:
            context.emit("frame-noframes", line=self._frameset_line)
        if not self._seen_meta_description:
            context.emit("meta-description", line=1)
        if not self._seen_link_rev_made:
            context.emit("link-rev-made", line=1)
