"""Document-level checks.

Covers the paper's whole-document messages: the DOCTYPE check that leads
the section 4.2 example output, the outer ``<HTML>`` wrapper, the required
``<TITLE>``, title length, and the weblint-2 additions for search-engine
meta information, authorship LINK and NOFRAMES content.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.context import CheckContext, OpenElement
from repro.core.rules.base import Rule
from repro.html.spec import ElementDef
from repro.html.tokens import EndTag, StartTag


@dataclass
class _DocState:
    """Per-document tracking, kept in ``context.scratch`` so one rule
    instance can serve interleaved checks."""

    doctype_checked: bool = False
    seen_meta_description: bool = False
    seen_link_rev_made: bool = False
    frameset_line: Optional[int] = None
    seen_noframes: bool = False


class DocumentRule(Rule):
    name = "document"
    # Wildcard start tags: the require-doctype check must fire on the
    # *first* tag whatever its name; the named tracking below is cheap.
    subscribes = {
        "start_document": True,
        "handle_start_tag": "*",
        "handle_element_closed": {"title"},
        "end_document": True,
    }

    def start_document(self, context: CheckContext) -> None:
        context.scratch[self.name] = _DocState()

    def _state(self, context: CheckContext) -> _DocState:
        state = context.scratch.get(self.name)
        if state is None:
            state = context.scratch[self.name] = _DocState()
        return state

    # -- per-tag tracking ---------------------------------------------------

    def handle_start_tag(
        self,
        context: CheckContext,
        tag: StartTag,
        elem: Optional[ElementDef],
    ) -> None:
        state = self._state(context)
        if not state.doctype_checked:
            state.doctype_checked = True
            if not context.seen_doctype:
                context.emit("require-doctype", line=tag.line)

        name = tag.lowered
        if name == "meta":
            meta_name = tag.get("name")
            if meta_name is not None and meta_name.value.lower() in (
                "description",
                "keywords",
            ):
                state.seen_meta_description = True
        elif name == "link":
            rev = tag.get("rev")
            if rev is not None and rev.value.lower() == "made":
                state.seen_link_rev_made = True
        elif name == "frameset" and state.frameset_line is None:
            state.frameset_line = tag.line
        elif name == "noframes":
            state.seen_noframes = True

    def handle_element_closed(
        self,
        context: CheckContext,
        open_element: OpenElement,
        end_tag: Optional[EndTag],
        implicit: bool,
    ) -> None:
        if open_element.name != "title":
            return
        title = open_element.text.strip()
        if title and len(title) > context.options.max_title_length:
            line = end_tag.line if end_tag is not None else open_element.line
            context.emit(
                "title-length",
                line=line,
                length=len(title),
                limit=context.options.max_title_length,
            )
        if context.title_text is None:
            context.title_text = title

    # -- end of document -----------------------------------------------------

    def end_document(self, context: CheckContext) -> None:
        if not context.seen_any_element:
            return
        state = self._state(context)
        if (
            context.first_element_name != "html"
            or context.last_end_tag_name != "html"
        ):
            context.emit("html-outer", line=1)
        if not context.seen_title:
            context.emit(
                "require-title", line=context.history.get("head", 1)
            )
        if state.frameset_line is not None and not state.seen_noframes:
            context.emit("frame-noframes", line=state.frameset_line)
        if not state.seen_meta_description:
            context.emit("meta-description", line=1)
        if not state.seen_link_rev_made:
            context.emit("link-rev-made", line=1)
