"""Attribute checks.

Everything the paper says about attributes:

- unknown attributes for an element (section 4.3, errors);
- illegal attribute values, "expressed as regular expressions" in the
  HTML modules (section 5.5) -- the BGCOLOR="fffff" example;
- values that should be quoted -- the TEXT=#00ff00 example;
- single-quote delimiters, which "many clients and HTML processors
  can't handle" (section 4.3, warnings);
- repeated attributes;
- deprecated attributes (off by default);
- duplicate IDs (weblint 2 addition).

SGML allows unquoted values made purely of name characters
(letters, digits, ``.-_:``), so ``COLSPAN=2`` is not flagged; only values
with other characters (like ``#00ff00``) get the quoting warning --
matching weblint's behaviour in the paper's example.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.core.context import CheckContext
from repro.core.rules.base import Rule
from repro.html.spec import ElementDef
from repro.html.tokens import StartTag

_UNQUOTED_SAFE = re.compile(r"^[A-Za-z0-9._:-]*$")


class AttributeRule(Rule):
    # Inspects the attributes of every tag, so it subscribes to every
    # start tag; the win for this rule is skipping the other six hooks.
    name = "attributes"
    subscribes = {"handle_start_tag": "*"}

    def handle_start_tag(
        self,
        context: CheckContext,
        tag: StartTag,
        elem: Optional[ElementDef],
    ) -> None:
        element_upper = tag.name.upper()

        for attr_name in tag.duplicated_attributes():
            context.emit(
                "repeated-attribute",
                line=tag.line,
                attribute=attr_name.upper(),
                element=element_upper,
            )

        seen: set[str] = set()
        for attr in tag.attributes:
            lowered = attr.lowered
            first_occurrence = lowered not in seen
            seen.add(lowered)

            # Lexical style of the value.
            if attr.has_value:
                if attr.quote is None and not _UNQUOTED_SAFE.match(attr.value):
                    context.emit(
                        "quote-attribute-value",
                        line=attr.line or tag.line,
                        attribute=attr.name.upper(),
                        value=attr.value,
                        element=element_upper,
                    )
                elif attr.quote == "'":
                    context.emit(
                        "attribute-delimiter",
                        line=attr.line or tag.line,
                        attribute=attr.name.upper(),
                        element=element_upper,
                    )

            if lowered == "id" and attr.has_value and attr.value:
                self._check_duplicate_id(context, tag, attr.value)

            # Semantic checks need the element definition; for unknown
            # elements we stay quiet (reporting attributes of an element
            # we already flagged would be a cascade).
            if elem is None or not first_occurrence:
                continue

            definition = context.spec.attribute_def(tag.lowered, lowered)
            if definition is None:
                if context.options.is_custom_attribute(tag.lowered, lowered):
                    continue
                context.emit(
                    "unknown-attribute",
                    line=attr.line or tag.line,
                    attribute=attr.name.upper(),
                    element=element_upper,
                )
                continue
            if definition.deprecated:
                context.emit(
                    "deprecated-attribute",
                    line=attr.line or tag.line,
                    attribute=attr.name.upper(),
                    element=element_upper,
                )
            if attr.has_value and not definition.value_ok(attr.value):
                context.emit(
                    "attribute-format",
                    line=attr.line or tag.line,
                    attribute=attr.name.upper(),
                    element=element_upper,
                    value=attr.value,
                )

    def _check_duplicate_id(
        self, context: CheckContext, tag: StartTag, value: str
    ) -> None:
        first_line = context.ids_seen.get(value)
        if first_line is not None:
            context.emit(
                "duplicate-id",
                line=tag.line,
                id=value,
                first_line=first_line,
            )
        else:
            context.ids_seen[value] = tag.line
