"""Rule base class and hook protocol.

A rule is a stateless-by-default visitor over the token stream and the
structural events the engine derives from it.  All state a rule needs
across events should live either in instance attributes reset in
:meth:`Rule.start_document` or in ``context.scratch``.

Hook order for one document::

    start_document
      (per token, in document order)
      handle_start_tag / handle_end_tag / handle_text /
      handle_comment / handle_declaration
      handle_element_closed        # after the stack pops an element
    end_document
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.core.context import CheckContext, OpenElement
from repro.html.spec import ElementDef
from repro.html.tokens import Comment, Declaration, EndTag, StartTag, Text
from repro.obs.profile import RuleProfiler


class Rule:
    """Base class: all hooks are no-ops; override what you need."""

    #: Stable identifier used in scratch keys and debugging output.
    name = "rule"

    def start_document(self, context: CheckContext) -> None:
        """Called once before any token."""

    def handle_start_tag(
        self,
        context: CheckContext,
        tag: StartTag,
        elem: Optional[ElementDef],
    ) -> None:
        """Called for every start tag.

        ``elem`` is the element definition in the active spec, or ``None``
        for unknown/custom elements (the engine has already reported
        unknown elements by the time rules run).
        """

    def handle_end_tag(self, context: CheckContext, tag: EndTag) -> None:
        """Called for every end tag, before the stack is adjusted."""

    def handle_element_closed(
        self,
        context: CheckContext,
        open_element: OpenElement,
        end_tag: Optional[EndTag],
        implicit: bool,
    ) -> None:
        """Called when an element leaves the stack.

        ``end_tag`` is the tag that caused the close (``None`` at end of
        document); ``implicit`` is True when the element was closed by
        something other than its own end tag.
        """

    def handle_text(self, context: CheckContext, token: Text) -> None:
        """Called for every text run."""

    def handle_comment(self, context: CheckContext, token: Comment) -> None:
        """Called for every comment."""

    def handle_declaration(self, context: CheckContext, token: Declaration) -> None:
        """Called for every ``<!...>`` declaration."""

    def end_document(self, context: CheckContext) -> None:
        """Called once after the last token and final stack unwind."""


class TimedRule(Rule):
    """Transparent timing shim around another rule.

    Every hook invocation is timed with ``perf_counter`` and accumulated
    into a :class:`~repro.obs.profile.RuleProfiler` under the inner
    rule's ``name``.  The engine wraps its rule list in these only while
    profiling is active, so the default pipeline never pays for it.
    """

    def __init__(self, inner: Rule, profiler: RuleProfiler) -> None:
        self.inner = inner
        self.profiler = profiler
        self.name = inner.name

    def _timed(self, method, *args) -> None:
        start = time.perf_counter()
        method(*args)
        self.profiler.add(self.name, time.perf_counter() - start)

    def start_document(self, context: CheckContext) -> None:
        self._timed(self.inner.start_document, context)

    def handle_start_tag(
        self,
        context: CheckContext,
        tag: StartTag,
        elem: Optional[ElementDef],
    ) -> None:
        self._timed(self.inner.handle_start_tag, context, tag, elem)

    def handle_end_tag(self, context: CheckContext, tag: EndTag) -> None:
        self._timed(self.inner.handle_end_tag, context, tag)

    def handle_element_closed(
        self,
        context: CheckContext,
        open_element: OpenElement,
        end_tag: Optional[EndTag],
        implicit: bool,
    ) -> None:
        self._timed(
            self.inner.handle_element_closed, context, open_element, end_tag, implicit
        )

    def handle_text(self, context: CheckContext, token: Text) -> None:
        self._timed(self.inner.handle_text, context, token)

    def handle_comment(self, context: CheckContext, token: Comment) -> None:
        self._timed(self.inner.handle_comment, context, token)

    def handle_declaration(self, context: CheckContext, token: Declaration) -> None:
        self._timed(self.inner.handle_declaration, context, token)

    def end_document(self, context: CheckContext) -> None:
        self._timed(self.inner.end_document, context)


def wrap_rules(rules: Sequence[Rule], profiler: RuleProfiler) -> list[Rule]:
    """Wrap every rule in a :class:`TimedRule` (idempotent)."""
    return [
        rule if isinstance(rule, TimedRule) else TimedRule(rule, profiler)
        for rule in rules
    ]
