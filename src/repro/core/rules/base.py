"""Rule base class, hook protocol and the subscription API.

A rule is a stateless-by-default visitor over the token stream and the
structural events the engine derives from it.  All state a rule needs
across events should live in ``context.scratch`` (keyed by the rule's
``name``), initialised in :meth:`Rule.start_document`, so that one rule
instance can serve interleaved checks.

Hook order for one document (the dispatch contract)::

    start_document               # once, before any token
      (per token, in document order)
      handle_start_tag / handle_end_tag / handle_text /
      handle_comment / handle_declaration
      handle_element_closed      # after the stack pops an element;
                                 # may fire between any two tokens and
                                 # again during the final stack unwind
    end_document                 # once, after the final unwind

Subscriptions
-------------

The engine no longer calls every hook of every rule for every token.  A
rule declares *interest* through the class attribute :attr:`Rule.subscribes`,
mapping hook names to either ``True`` (every event of that hook) or, for
the tag-keyed hooks (``handle_start_tag``, ``handle_end_tag``,
``handle_element_closed``), an iterable of lower-case element names
(``"*"`` for every element)::

    class ImageRule(Rule):
        name = "images"
        subscribes = {"handle_start_tag": {"img", "input"}}

The dispatch layer (:mod:`repro.core.dispatch`) compiles these into
per-hook, per-tag-name handler tables.  Legacy rules that declare
nothing keep working: :func:`infer_subscriptions` detects which hooks a
subclass overrides and subscribes them with a wildcard, which reproduces
the old call-everything behaviour for that rule alone.  A subclass that
overrides a hook its parent did not declare also gets that hook inferred,
so third-party subclasses of the built-ins stay safe.
"""

from __future__ import annotations

import time
from typing import ClassVar, Iterable, Mapping, Optional, Sequence, Union

from repro.core.context import CheckContext, OpenElement
from repro.html.spec import ElementDef
from repro.html.tokens import Comment, Declaration, EndTag, StartTag, Text
from repro.obs.profile import RuleProfiler

#: Every hook a rule may implement, in invocation order.
HOOK_NAMES: tuple[str, ...] = (
    "start_document",
    "handle_start_tag",
    "handle_end_tag",
    "handle_element_closed",
    "handle_text",
    "handle_comment",
    "handle_declaration",
    "end_document",
)

#: Hooks whose events carry an element name the dispatch table fans out on.
TAG_KEYED_HOOKS: frozenset[str] = frozenset(
    {"handle_start_tag", "handle_end_tag", "handle_element_closed"}
)

#: Wildcard marker usable inside a ``subscribes`` value.
ANY_TAG = "*"

#: Resolved subscription map: hook name -> None (every event) or a
#: frozenset of element names (tag-keyed hooks only).
SubscriptionMap = dict[str, Optional[frozenset[str]]]


def _normalise_interest(
    hook: str, value: Union[bool, str, Iterable[str]]
) -> Optional[frozenset[str]]:
    """One declared interest -> ``None`` (wildcard) or a tag-name set."""
    if value is True or value == ANY_TAG:
        return None
    if value is False or value is None:
        raise ValueError(f"subscription for {hook!r} must be truthy; omit the key instead")
    if hook not in TAG_KEYED_HOOKS:
        # Non-tag hooks have no fan-out key; any truthy value means "all".
        return None
    names = frozenset(str(name).lower() for name in value)
    if ANY_TAG in names:
        return None
    if not names:
        raise ValueError(f"subscription for {hook!r} names no elements")
    return names


def hook_is_overridden(rule: "Rule", hook: str) -> bool:
    """Does ``rule``'s class provide its own implementation of ``hook``?"""
    return getattr(type(rule), hook, None) is not getattr(Rule, hook)


def infer_subscriptions(rule: "Rule") -> SubscriptionMap:
    """Compatibility adapter: subscribe every overridden hook, wildcard.

    This is what keeps pre-subscription third-party ``Rule`` subclasses
    working under the compiled dispatch table -- they are called exactly
    as often as the old call-everything engine called them.
    """
    return {
        hook: None for hook in HOOK_NAMES if hook_is_overridden(rule, hook)
    }


def normalise_subscriptions(
    declared: Mapping[str, object], rule: "Rule"
) -> SubscriptionMap:
    """Validate and normalise a ``subscribes`` declaration.

    Hooks the rule overrides but did not declare are merged in with a
    wildcard (see the module docstring: subclass safety).
    """
    resolved: SubscriptionMap = {}
    for hook, value in declared.items():
        if hook not in HOOK_NAMES:
            raise ValueError(
                f"unknown hook {hook!r} in {type(rule).__name__}.subscribes "
                f"(known: {', '.join(HOOK_NAMES)})"
            )
        resolved[hook] = _normalise_interest(hook, value)
    for hook, interest in infer_subscriptions(rule).items():
        resolved.setdefault(hook, interest)
    return resolved


class Rule:
    """Base class: all hooks are no-ops; override what you need."""

    #: Stable identifier used in scratch keys and debugging output.
    name = "rule"

    #: Declared interest (see module docstring).  ``None`` means "infer
    #: from overridden hooks" -- the legacy-compatibility path.
    subscribes: ClassVar[Optional[Mapping[str, object]]] = None

    def subscriptions(self, spec=None, options=None) -> SubscriptionMap:
        """Resolved interest map for this rule under ``spec``/``options``.

        The default implementation normalises :attr:`subscribes` (or
        infers interest from overridden hooks when nothing is declared).
        Rules whose interest depends on the active spec or options --
        e.g. :class:`~repro.core.rules.style.StyleRule`, which needs
        every tag only when a house case style is configured -- override
        this; the dispatch table is compiled once per
        ``(spec, options, ruleset)`` so the computation is off the hot
        path.
        """
        if self.subscribes is None:
            return infer_subscriptions(self)
        return normalise_subscriptions(self.subscribes, self)

    def start_document(self, context: CheckContext) -> None:
        """Called once before any token."""

    def handle_start_tag(
        self,
        context: CheckContext,
        tag: StartTag,
        elem: Optional[ElementDef],
    ) -> None:
        """Called for every start tag.

        ``elem`` is the element definition in the active spec, or ``None``
        for unknown/custom elements (the engine has already reported
        unknown elements by the time rules run).
        """

    def handle_end_tag(self, context: CheckContext, tag: EndTag) -> None:
        """Called for every end tag, before the stack is adjusted."""

    def handle_element_closed(
        self,
        context: CheckContext,
        open_element: OpenElement,
        end_tag: Optional[EndTag],
        implicit: bool,
    ) -> None:
        """Called when an element leaves the stack.

        ``end_tag`` is the tag that caused the close (``None`` at end of
        document); ``implicit`` is True when the element was closed by
        something other than its own end tag.
        """

    def handle_text(self, context: CheckContext, token: Text) -> None:
        """Called for every text run."""

    def handle_comment(self, context: CheckContext, token: Comment) -> None:
        """Called for every comment."""

    def handle_declaration(self, context: CheckContext, token: Declaration) -> None:
        """Called for every ``<!...>`` declaration."""

    def end_document(self, context: CheckContext) -> None:
        """Called once after the last token and final stack unwind."""


class TimedRule(Rule):
    """Transparent timing shim around another rule (legacy).

    Every hook invocation is timed with ``perf_counter`` and accumulated
    into a :class:`~repro.obs.profile.RuleProfiler` under the inner
    rule's ``name``.  The engine used to wrap its rule list in these
    while profiling; profiling now happens per hook invocation inside
    the dispatch layer (:mod:`repro.core.dispatch`), which never mutates
    the shared rule list.  The shim remains for embedders who wrap rule
    lists themselves.
    """

    def __init__(self, inner: Rule, profiler: RuleProfiler) -> None:
        self.inner = inner
        self.profiler = profiler
        self.name = inner.name

    def subscriptions(self, spec=None, options=None) -> SubscriptionMap:
        # Delegate interest to the wrapped rule so a wrapped list
        # compiles to the same dispatch table as the bare one.
        return self.inner.subscriptions(spec, options)

    def _timed(self, method, *args) -> None:
        start = time.perf_counter()
        method(*args)
        self.profiler.add(self.name, time.perf_counter() - start)

    def start_document(self, context: CheckContext) -> None:
        self._timed(self.inner.start_document, context)

    def handle_start_tag(
        self,
        context: CheckContext,
        tag: StartTag,
        elem: Optional[ElementDef],
    ) -> None:
        self._timed(self.inner.handle_start_tag, context, tag, elem)

    def handle_end_tag(self, context: CheckContext, tag: EndTag) -> None:
        self._timed(self.inner.handle_end_tag, context, tag)

    def handle_element_closed(
        self,
        context: CheckContext,
        open_element: OpenElement,
        end_tag: Optional[EndTag],
        implicit: bool,
    ) -> None:
        self._timed(
            self.inner.handle_element_closed, context, open_element, end_tag, implicit
        )

    def handle_text(self, context: CheckContext, token: Text) -> None:
        self._timed(self.inner.handle_text, context, token)

    def handle_comment(self, context: CheckContext, token: Comment) -> None:
        self._timed(self.inner.handle_comment, context, token)

    def handle_declaration(self, context: CheckContext, token: Declaration) -> None:
        self._timed(self.inner.handle_declaration, context, token)

    def end_document(self, context: CheckContext) -> None:
        self._timed(self.inner.end_document, context)


def wrap_rules(rules: Sequence[Rule], profiler: RuleProfiler) -> list[Rule]:
    """Wrap every rule in a :class:`TimedRule` (idempotent)."""
    return [
        rule if isinstance(rule, TimedRule) else TimedRule(rule, profiler)
        for rule in rules
    ]
