"""Image checks.

Two of the paper's flagship examples:

- ``img-alt``: "IMG does not have ALT text defined" -- important for
  text-only browsers, robots and accessibility (sections 2 and 4.3).
- ``img-size``: "Weblint can let you know which IMG elements don't have
  the WIDTH or HEIGHT attributes.  Use of these attributes help browsers
  to layout a page sooner" (section 4.3).

``img-alt`` is weblint's own wording even under HTML 4.0 where ALT is
formally required -- the engine leaves ALT out of the generic
required-attribute check so the message stays recognisable.
"""

from __future__ import annotations

from typing import Optional

from repro.core.context import CheckContext
from repro.core.rules.base import Rule
from repro.html.spec import ElementDef
from repro.html.tokens import StartTag


class ImageRule(Rule):
    name = "images"
    subscribes = {"handle_start_tag": {"img", "input"}}

    def handle_start_tag(
        self,
        context: CheckContext,
        tag: StartTag,
        elem: Optional[ElementDef],
    ) -> None:
        name = tag.lowered
        if name == "img":
            if not tag.has_attribute("alt"):
                context.emit("img-alt", line=tag.line)
            if not (tag.has_attribute("width") and tag.has_attribute("height")):
                context.emit("img-size", line=tag.line)
        elif name == "input":
            # An image input is an image: same accessibility rule.
            input_type = tag.get("type")
            if (
                input_type is not None
                and input_type.value.lower() == "image"
                and not tag.has_attribute("alt")
            ):
                context.emit("img-alt", line=tag.line)
