"""Per-concern check rules.

Each module contributes one or more :class:`~repro.core.rules.base.Rule`
subclasses, registered by name in the
:class:`~repro.core.registry.RuleRegistry`
(:func:`repro.core.registry.default_registry` builds the standard set).
:func:`default_rules` instantiates that registry's enabled rules in
resolved order.  The stack mechanics themselves live in
:mod:`repro.core.engine` -- rules receive the token stream plus stack
events, routed through the compiled dispatch table according to each
rule's subscriptions, and look things up in the shared
:class:`~repro.core.context.CheckContext`.
"""

from repro.core.rules.base import Rule

from repro.core.rules.anchors import AnchorRule
from repro.core.rules.attributes import AttributeRule
from repro.core.rules.comments import CommentRule
from repro.core.rules.document import DocumentRule
from repro.core.rules.forms import FormRule
from repro.core.rules.headings import HeadingRule
from repro.core.rules.inline import InlineConfigRule
from repro.core.rules.images import ImageRule
from repro.core.rules.style import StyleRule
from repro.core.rules.tables import TableRule
from repro.core.rules.text import TextRule

__all__ = ["Rule", "default_rules"]


def default_rules() -> list[Rule]:
    """The standard rule set, in registry evaluation order."""
    # Imported here: registry.py imports the rule modules above.
    from repro.core.registry import default_registry

    return default_registry().rules()
