"""Per-concern check rules.

Each module contributes one or more :class:`~repro.core.rules.base.Rule`
subclasses; :func:`default_rules` instantiates the standard set in a
stable order.  The stack mechanics themselves live in
:mod:`repro.core.engine` -- rules receive the token stream plus stack
events and look things up in the shared :class:`~repro.core.context.CheckContext`.
"""

from repro.core.rules.base import Rule

from repro.core.rules.anchors import AnchorRule
from repro.core.rules.attributes import AttributeRule
from repro.core.rules.comments import CommentRule
from repro.core.rules.document import DocumentRule
from repro.core.rules.forms import FormRule
from repro.core.rules.headings import HeadingRule
from repro.core.rules.inline import InlineConfigRule
from repro.core.rules.images import ImageRule
from repro.core.rules.style import StyleRule
from repro.core.rules.tables import TableRule
from repro.core.rules.text import TextRule


def _plugin_rule():
    # Imported lazily: the plugins package imports rule base classes from
    # this package's modules.
    from repro.plugins.base import PluginRule

    return PluginRule()

__all__ = ["Rule", "default_rules"]


def default_rules() -> list[Rule]:
    """The standard rule set, in evaluation order."""
    return [
        InlineConfigRule(),   # first: directives affect everything after
        DocumentRule(),
        AttributeRule(),
        ImageRule(),
        AnchorRule(),
        HeadingRule(),
        CommentRule(),
        TextRule(),
        TableRule(),
        FormRule(),
        StyleRule(),
        _plugin_rule(),
    ]
