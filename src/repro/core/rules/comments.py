"""Comment checks.

Paper section 4.3 (warnings): "It is perfectly legal to comment-out
markup, but this can be incorrectly parsed by parsers, particularly those
of the quick and dirty kind."  Plus nested and unterminated comments.
The lexical detection lives in the tokenizer; this rule only translates
the flags into configured messages.
"""

from __future__ import annotations

from repro.core.context import CheckContext
from repro.core.rules.base import Rule
from repro.html.tokens import Comment, LexicalIssue


class CommentRule(Rule):
    name = "comments"
    subscribes = {"handle_comment": True}

    def handle_comment(self, context: CheckContext, token: Comment) -> None:
        if token.has_issue(LexicalIssue.UNTERMINATED_COMMENT):
            context.emit(
                "unclosed-comment", line=context.last_line, open_line=token.line
            )
            # An unterminated comment swallowed the rest of the file;
            # further messages about its "content" would be a cascade.
            return
        if token.has_issue(LexicalIssue.NESTED_COMMENT):
            context.emit("nested-comment", line=token.line)
        if token.has_issue(LexicalIssue.MARKUP_IN_COMMENT):
            context.emit("markup-in-comment", line=token.line)
