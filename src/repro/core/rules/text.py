"""Text-content checks: literal metacharacters and entity references.

- ``literal-metacharacter``: a bare ``<`` or ``>`` in text should be
  written ``&lt;`` / ``&gt;`` -- lenient browsers render it, strict
  parsers and robots trip over it.
- ``unknown-entity``: ``&foo;`` where the active HTML version defines no
  such entity.  Known-ness is judged against the *spec's* entity table,
  so ``&euro;`` is fine under HTML 4.0 but flagged under HTML 3.2.
- ``unterminated-entity`` (off by default): ``&copy`` without the
  semicolon.
"""

from __future__ import annotations

from repro.core.context import CheckContext
from repro.core.rules.base import Rule
from repro.html.entities import decode_numeric
from repro.html.tokens import LexicalIssue, Text


class TextRule(Rule):
    name = "text"
    subscribes = {"handle_text": True}

    def handle_text(self, context: CheckContext, token: Text) -> None:
        if token.has_issue(LexicalIssue.BARE_LT_IN_TEXT):
            context.emit(
                "literal-metacharacter",
                line=token.line,
                char="<",
                entity="&lt;",
            )
        if token.has_issue(LexicalIssue.BARE_GT_IN_TEXT):
            # One message per source line containing a bare '>'.
            for offset, line_text in enumerate(token.text.split("\n")):
                if ">" in line_text:
                    context.emit(
                        "literal-metacharacter",
                        line=token.line + offset,
                        char=">",
                        entity="&gt;",
                    )

        for name, line, column, _known, terminated in token.entities:
            if name.startswith("#"):
                try:
                    decode_numeric(name)
                    known = True
                except ValueError:
                    known = False
            else:
                known = name in context.spec.entities
            if not known:
                context.emit(
                    "unknown-entity", line=line, column=column, entity=name
                )
            elif not terminated:
                context.emit(
                    "unterminated-entity", line=line, column=column, entity=name
                )
