"""Heading order check.

``heading-order`` warns when a document skips heading levels (an H4
directly after an H1): the document outline no longer reflects the
content structure, which hurts navigation and automatic processing.
Going *up* any number of levels (H4 back to H1) is fine -- that is how
sections end.
"""

from __future__ import annotations

from typing import Optional

from repro.core.context import CheckContext
from repro.core.rules.base import Rule
from repro.html.spec import ElementDef
from repro.html.tokens import StartTag

_HEADINGS = {"h1": 1, "h2": 2, "h3": 3, "h4": 4, "h5": 5, "h6": 6}


class HeadingRule(Rule):
    name = "headings"
    subscribes = {"handle_start_tag": frozenset(_HEADINGS)}

    def handle_start_tag(
        self,
        context: CheckContext,
        tag: StartTag,
        elem: Optional[ElementDef],
    ) -> None:
        level = _HEADINGS.get(tag.lowered)
        if level is None:
            return
        previous = context.last_heading_level
        if previous is not None and level > previous + 1:
            context.emit(
                "heading-order",
                line=tag.line,
                level=level,
                previous=previous,
            )
        context.last_heading_level = level
