"""Form checks.

``form-label`` (weblint 2, off by default; on in the ``accessibility``
preset): visible form controls should be associated with a LABEL, either
by enclosure or by id.  Hidden fields and push buttons label themselves
and are exempt.
"""

from __future__ import annotations

from typing import Optional

from repro.core.context import CheckContext
from repro.core.rules.base import Rule
from repro.html.spec import ElementDef
from repro.html.tokens import StartTag

_SELF_LABELLING_INPUTS = frozenset(
    {"hidden", "submit", "reset", "button", "image"}
)
_CONTROLS = frozenset({"input", "select", "textarea"})


class FormRule(Rule):
    name = "forms"
    subscribes = {"handle_start_tag": _CONTROLS}

    def handle_start_tag(
        self,
        context: CheckContext,
        tag: StartTag,
        elem: Optional[ElementDef],
    ) -> None:
        name = tag.lowered
        if name not in _CONTROLS:
            return
        if name == "input":
            input_type = tag.get("type")
            if (
                input_type is not None
                and input_type.value.lower() in _SELF_LABELLING_INPUTS
            ):
                return
        if context.in_element("label"):
            return
        if tag.has_attribute("id"):
            # A LABEL FOR=... elsewhere may reference it; give the benefit
            # of the doubt rather than cross-reference the whole document.
            return
        context.emit("form-label", line=tag.line, element=tag.name.upper())
