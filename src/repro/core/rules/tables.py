"""Table checks.

``table-summary`` is the accessibility check the paper attributes to
Bobby (section 3.3): "summary annotations can be added to tables, which
is useful for users with speech generating clients".  Off by default, on
in the ``accessibility`` preset.

The structural table checks (TD outside TR, TR outside TABLE...) are
content-model facts and therefore handled by the engine's context checks;
this rule only carries the advisory extras.
"""

from __future__ import annotations

from typing import Optional

from repro.core.context import CheckContext
from repro.core.rules.base import Rule
from repro.html.spec import ElementDef
from repro.html.tokens import StartTag


class TableRule(Rule):
    name = "tables"
    subscribes = {"handle_start_tag": {"table"}}

    def handle_start_tag(
        self,
        context: CheckContext,
        tag: StartTag,
        elem: Optional[ElementDef],
    ) -> None:
        if tag.lowered != "table":
            return
        summary = tag.get("summary")
        if summary is None or not summary.value.strip():
            context.emit("table-summary", line=tag.line)
