"""Style checks.

- ``physical-font``: "Use of physical markup (e.g. <B>) rather than
  logical markup (e.g. <STRONG>)" -- paper section 4.3, style examples.
- ``deprecated-element``: LISTING instead of PRE et al. (section 4.3,
  warnings).
- ``upper-case`` / ``lower-case``: house tag-name case style; each is off
  by default and enabling one selects the style.
- ``body-colors``: setting some of the BODY colour attributes but not all
  risks clashing with user-configured defaults.
"""

from __future__ import annotations

from typing import Optional

from repro.core.context import CheckContext
from repro.core.rules.base import Rule
from repro.html.spec import ElementDef
from repro.html.tokens import EndTag, StartTag

_BODY_COLOR_ATTRIBUTES = ("bgcolor", "text", "link", "vlink", "alink")


class StyleRule(Rule):
    name = "style"
    # Static fallback (used when compiled without a spec, e.g. by a bare
    # subscriptions() call): every tag.  subscriptions() narrows this.
    subscribes = {"handle_start_tag": "*", "handle_end_tag": "*"}

    def subscriptions(self, spec=None, options=None):
        """Spec/options-specialised interest.

        The case-style checks need every tag, but only when a house
        style is configured; otherwise this rule only cares about the
        spec's physical-markup elements, its deprecated elements, and
        BODY.  Compiled once per (spec, options) by the dispatch layer.
        """
        if spec is None or options is None or options.case_style:
            return super().subscriptions(spec, options)
        names = set(spec.physical_markup)
        names.update(
            name for name, elem in spec.elements.items() if elem.deprecated
        )
        names.add("body")
        return {"handle_start_tag": frozenset(names)}

    def handle_start_tag(
        self,
        context: CheckContext,
        tag: StartTag,
        elem: Optional[ElementDef],
    ) -> None:
        name = tag.lowered

        logical = context.spec.physical_markup.get(name)
        if logical is not None:
            context.emit(
                "physical-font",
                line=tag.line,
                element=tag.name.upper(),
                logical=logical.upper(),
            )

        if elem is not None and elem.deprecated:
            replacement = ""
            if elem.replacement:
                replacement = f" - use <{elem.replacement.upper()}> instead"
            context.emit(
                "deprecated-element",
                line=tag.line,
                element=tag.name.upper(),
                replacement=replacement,
            )

        self._check_case(context, tag.name, tag.line)

        if name == "body":
            self._check_body_colors(context, tag)

    def handle_end_tag(self, context: CheckContext, tag: EndTag) -> None:
        self._check_case(context, tag.name, tag.line)

    def _check_case(self, context: CheckContext, name: str, line: int) -> None:
        style = context.options.case_style
        if not name:
            return
        if style == "upper" and name != name.upper():
            context.emit("upper-case", line=line, element=name)
        elif style == "lower" and name != name.lower():
            context.emit("lower-case", line=line, element=name)

    def _check_body_colors(self, context: CheckContext, tag: StartTag) -> None:
        present = [
            attr for attr in _BODY_COLOR_ATTRIBUTES if tag.has_attribute(attr)
        ]
        if not present or len(present) == len(_BODY_COLOR_ATTRIBUTES):
            return
        missing = [
            attr for attr in _BODY_COLOR_ATTRIBUTES if not tag.has_attribute(attr)
        ]
        context.emit(
            "body-colors",
            line=tag.line,
            attribute=", ".join(attr.upper() for attr in present),
            missing=", ".join(attr.upper() for attr in missing),
        )
