"""The stack machine at the heart of weblint.

Paper section 5.1, almost line for line:

    "The file being processed is tokenised into start tags (possibly with
    attributes), text content, and end tags.  When an opening tag is seen,
    it is pushed onto the main stack.  Closing tags result in the stack
    being popped.  Certain elements require special processing, such as
    comments, SCRIPT and STYLE.

    A secondary stack comes into play when unexpected things happen, like
    overlapping elements ...  The second stack holds unresolved tags, and
    where they appeared."

The engine owns the two stacks and the structural messages that depend on
them (unclosed / overlapped / mismatched / out-of-context elements);
everything else is delegated to the pluggable rules, reached through a
compiled :class:`~repro.core.dispatch.DispatchTable`: rules declare which
hooks -- and, for tag hooks, which element names -- they care about, and
the engine performs one dict lookup per tag instead of invoking every
rule for every token.  Tokens are consumed from the tokenizer's streaming
:func:`~repro.html.tokenizer.iter_tokens` feed, so a document is never
materialised as a full token list.

``Engine.check`` is reentrancy-safe: no engine-level state is mutated
during a check (the dispatch table is immutable and cached, vendor spec
tables are built at construction, profiling state lives on the
per-invocation :class:`~repro.core.context.CheckContext`), so a rule
hook may itself call ``check`` on the same engine, and interleaved
checks do not corrupt one another.

Cascade suppression heuristics (the "ad-hoc aspects ... provided in an
effort to minimise the number of warning cascades"):

- When an end tag matches an element deeper in the stack, the elements
  skipped over are *not* all reported as errors blindly.  Optional-end
  elements close silently; elements whose legal context is the element
  being closed (TITLE inside </HEAD>) are reported once as unclosed;
  everything else is reported as an overlap and parked on the secondary
  stack so its own end tag, when it arrives, is resolved silently.
- Unknown elements are pushed as lenient containers, so their end tags
  match quietly instead of producing a second message.
- A mismatched heading close (<H1>...</H2>) closes the open heading, so
  the document does not appear nested inside a heading forever after.

The heuristics can be disabled wholesale (``cascade_heuristics=False``)
for the E9 ablation benchmark, which measures how many extra messages a
naive stack machine produces on the same input.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config.options import Options
from repro.core.context import CheckContext, OpenElement
from repro.core.dispatch import DispatchTable, get_table
from repro.core.rules import default_rules
from repro.core.rules.base import Rule
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.html.spec import ElementDef, HTMLSpec, get_spec
from repro.html.tokenizer import iter_tokens
from repro.html.tokens import (
    Comment,
    Declaration,
    EndTag,
    LexicalIssue,
    ProcessingInstruction,
    StartTag,
    Text,
)

_HEADINGS = frozenset({"h1", "h2", "h3", "h4", "h5", "h6"})

#: How much of a mangled tag to quote back at the user.
_TAG_QUOTE_LIMIT = 40


def _tag_excerpt(tag: StartTag) -> str:
    """A short, single-line rendering of a tag for message text."""
    raw = " ".join(tag.raw.split())
    if raw.startswith("<"):
        raw = raw[1:]
    raw = raw.rstrip(">")
    if len(raw) > _TAG_QUOTE_LIMIT:
        raw = raw[: _TAG_QUOTE_LIMIT - 3] + "..."
    return raw


class Engine:
    """Checks one document at a time against one spec + option set."""

    def __init__(
        self,
        spec: Optional[HTMLSpec] = None,
        options: Optional[Options] = None,
        rules: Optional[Sequence[Rule]] = None,
        cascade_heuristics: bool = True,
        naive_dispatch: bool = False,
    ) -> None:
        self.options = options if options is not None else Options.with_defaults()
        self.spec = spec if spec is not None else get_spec(self.options.spec_name)
        self.rules: list[Rule] = list(rules) if rules is not None else default_rules()
        self.cascade_heuristics = cascade_heuristics
        #: Call every rule for every event, ignoring subscriptions.  The
        #: escape hatch behind the golden equivalence test and the
        #: before/after dispatch benchmark -- not a production mode.
        self.naive_dispatch = naive_dispatch
        # Vendor specs for "X is Netscape/Microsoft specific" -- built
        # eagerly so no engine state mutates during a check, and not
        # consulted when already checking a vendor spec.
        self._vendor_specs: list[tuple[str, frozenset[str]]] = []
        standard = set(get_spec("html40").elements)
        for vendor in ("netscape", "microsoft"):
            if self.spec.name != vendor:
                vendor_only = frozenset(set(get_spec(vendor).elements) - standard)
                self._vendor_specs.append((vendor, vendor_only))

    # -- public API ------------------------------------------------------------

    def dispatch_table(self) -> DispatchTable:
        """The compiled (cached) table for this engine's configuration."""
        return get_table(
            self.spec, self.options, tuple(self.rules), naive=self.naive_dispatch
        )

    def check(self, source: str, filename: str = "-") -> CheckContext:
        """Run the stack machine over ``source``; returns the context."""
        tracer = get_tracer()
        with tracer.span("engine.tokenize", file=filename):
            # The streaming feed does its scanning lazily, interleaved
            # with dispatch; this span records stream + table setup (the
            # scan itself lands inside engine.dispatch).
            tokens = iter_tokens(source)
            table = self.dispatch_table()
        context = CheckContext(self.spec, self.options, filename)
        if context.profiler is not None:
            context.profiler.note_document()
        run_hooks = table.run_hooks

        with tracer.span("engine.dispatch", file=filename) as span:
            run_hooks(table.start_document, context)
            token_count = 0
            for token in tokens:
                token_count += 1
                context.last_line = token.line
                self._dispatch(context, token, table)
            span.annotate(tokens=token_count)
        with tracer.span("engine.finish", file=filename):
            self._finish(context, table)
            run_hooks(table.end_document, context)

        registry = get_registry()
        registry.inc("engine.documents")
        registry.inc("engine.dispatch.calls", context.hook_calls)
        registry.gauge_max("engine.stack.high_water", context.stack_high_water)
        return context

    # -- dispatch ----------------------------------------------------------------

    def _dispatch(
        self, context: CheckContext, token, table: DispatchTable
    ) -> None:
        if isinstance(token, StartTag):
            self._start_tag(context, token, table)
        elif isinstance(token, EndTag):
            self._end_tag(context, token, table)
        elif isinstance(token, Text):
            self._text(context, token, table)
        elif isinstance(token, Comment):
            table.run_hooks(table.comment, context, token)
        elif isinstance(token, Declaration):
            if token.is_doctype and not context.seen_any_element:
                context.seen_doctype = True
            table.run_hooks(table.declaration, context, token)
        elif isinstance(token, ProcessingInstruction):
            pass  # tolerated, never checked

    # -- start tags ---------------------------------------------------------------

    def _start_tag(
        self, context: CheckContext, tag: StartTag, table: DispatchTable
    ) -> None:
        name = tag.lowered
        if not name:
            return
        line = tag.line

        # Lexical anomalies attached to the tag by the tokenizer.
        if tag.has_issue(LexicalIssue.WHITESPACE_AFTER_LT):
            context.emit("leading-whitespace", line=line, element=tag.name.upper())
        if tag.has_issue(LexicalIssue.ODD_QUOTES):
            context.emit("odd-quotes", line=line, tag=_tag_excerpt(tag))
        if tag.has_issue(LexicalIssue.UNCLOSED_TAG):
            context.emit("unterminated-tag", line=line, element=tag.name)

        elem = self._resolve_element(context, tag)

        if not context.seen_any_element:
            context.seen_any_element = True
            context.first_element_name = name

        # Implicit closes (LI closes LI, block elements close P, ...).
        if elem is not None and elem.closes:
            while context.stack and context.stack[-1].name in elem.closes:
                closed = context.stack.pop()
                self._element_closed(context, closed, None, True, table)

        # This tag is content for whatever is now open.
        context.note_child()

        # Structural checks that need the stack.
        self._check_context(context, tag, elem)
        self._check_excludes(context, tag, elem)
        self._check_once_only(context, tag, elem)
        self._check_head_element(context, tag, elem)
        self._check_required_attributes(context, tag, elem)

        if name == "body":
            context.seen_body_open = True
        if name == "title":
            context.seen_title = True
        context.history.setdefault(name, line)

        if tag.self_closing:
            context.emit("self-closing-tag", line=line, element=tag.name)

        open_element: Optional[OpenElement] = None
        pushed = (
            (elem is None or elem.container)
            and not tag.self_closing
        )
        if pushed:
            open_element = OpenElement(
                name=name, tag=tag, line=line, elem=elem
            )
            context.push(open_element)

        handlers = table.start_tag.get(name)
        if handlers is None:
            handlers = table.start_tag_any
        table.run_hooks(handlers, context, tag, elem)

    def _resolve_element(
        self, context: CheckContext, tag: StartTag
    ) -> Optional[ElementDef]:
        """Look the element up, reporting unknown / vendor markup."""
        name = tag.lowered
        elem = self.spec.element(name)
        if elem is not None:
            return elem
        if context.options.is_custom_element(name):
            return None
        vendor = self._vendor_of(name)
        if vendor == "netscape":
            context.emit("netscape-markup", line=tag.line, element=tag.name.upper())
            return None
        if vendor == "microsoft":
            context.emit("microsoft-markup", line=tag.line, element=tag.name.upper())
            return None
        suggestion = ""
        if self.cascade_heuristics:
            candidate = self.spec.suggest_element(name)
            if candidate is not None:
                suggestion = f' - did you mean <{candidate.upper()}>?'
        context.emit(
            "unknown-element",
            line=tag.line,
            element=tag.name.upper(),
            suggestion=suggestion,
        )
        return None

    def _vendor_of(self, name: str) -> Optional[str]:
        """Which vendor, if any, owns this element *exclusively*.

        An element counts as vendor markup only when it exists in the
        vendor spec but not in standard HTML 4.0 -- SPAN under an HTML
        3.2 check is "too new", not "Netscape specific".
        """
        for vendor, vendor_only in self._vendor_specs:
            if name in vendor_only:
                return vendor
        return None

    def _check_context(
        self, context: CheckContext, tag: StartTag, elem: Optional[ElementDef]
    ) -> None:
        if elem is None or elem.allowed_in is None:
            return
        parent = context.top
        if parent is None:
            # No open parent at all: html-outer / require-head style
            # messages cover this; repeating it per element is a cascade.
            return
        if parent.name in elem.allowed_in:
            return
        if parent.elem is None:
            return  # unknown parent: don't guess
        legal = " or ".join(f"<{name.upper()}>" for name in sorted(elem.allowed_in))
        context.emit(
            "required-context",
            line=tag.line,
            element=tag.name.upper(),
            requirement=f"must appear in {legal} element",
        )

    def _check_excludes(
        self, context: CheckContext, tag: StartTag, elem: Optional[ElementDef]
    ) -> None:
        name = tag.lowered
        for ancestor in reversed(context.stack):
            if ancestor.elem is None:
                continue
            if name in ancestor.elem.excludes:
                if ancestor.name == name:
                    context.emit(
                        "nested-element",
                        line=tag.line,
                        element=tag.name.upper(),
                        open_line=ancestor.line,
                    )
                else:
                    context.emit(
                        "required-context",
                        line=tag.line,
                        element=tag.name.upper(),
                        requirement=f"not allowed inside <{ancestor.name.upper()}>",
                    )
                return

    def _check_once_only(
        self, context: CheckContext, tag: StartTag, elem: Optional[ElementDef]
    ) -> None:
        if elem is None or not elem.once_per_document:
            return
        name = tag.lowered
        if name in context.history:
            context.emit(
                "once-only",
                line=tag.line,
                element=tag.name.upper(),
                first_line=context.history[name],
            )

    def _check_head_element(
        self, context: CheckContext, tag: StartTag, elem: Optional[ElementDef]
    ) -> None:
        if elem is None or not elem.is_head:
            return
        if tag.lowered in ("head", "script"):
            return
        if context.seen_body_open or context.seen_head_close:
            context.emit("head-element", line=tag.line, element=tag.name.upper())

    def _check_required_attributes(
        self, context: CheckContext, tag: StartTag, elem: Optional[ElementDef]
    ) -> None:
        if elem is None:
            return
        for attr_name in elem.required_attributes():
            if tag.lowered == "img" and attr_name == "alt":
                continue  # ImageRule owns img-alt wording
            if not tag.has_attribute(attr_name):
                context.emit(
                    "required-attribute",
                    line=tag.line,
                    attribute=attr_name.upper(),
                    element=tag.name.upper(),
                )

    # -- end tags --------------------------------------------------------------------

    def _end_tag(
        self, context: CheckContext, tag: EndTag, table: DispatchTable
    ) -> None:
        name = tag.lowered
        if not name:
            return
        line = tag.line

        if tag.has_issue(LexicalIssue.ATTRIBUTES_IN_END_TAG):
            context.emit("closing-attribute", line=line, element=tag.name.upper())
        if tag.has_issue(LexicalIssue.UNCLOSED_TAG):
            context.emit("unterminated-tag", line=line, element="/" + tag.name)

        handlers = table.end_tag.get(name)
        if handlers is None:
            handlers = table.end_tag_any
        table.run_hooks(handlers, context, tag)

        if name == "head":
            context.seen_head_close = True
        context.last_end_tag_name = name

        elem = self.spec.element(name)

        # Heading mismatch heuristic: </H2> closing an open <H1>.
        if self.cascade_heuristics and name in _HEADINGS:
            top = context.top
            if top is not None and top.name in _HEADINGS and top.name != name:
                context.emit(
                    "heading-mismatch",
                    line=line,
                    open_heading=top.name.upper(),
                    close_heading=tag.name.upper(),
                )
                closed = context.stack.pop()
                self._element_closed(context, closed, tag, False, table)
                return

        if elem is not None and elem.empty:
            context.emit("illegal-closing", line=line, element=tag.name.upper())
            return

        index = context.find_open(name)
        if index == -1:
            self._unmatched_end_tag(context, tag, elem, table)
            return

        # Unwind everything above the match, then close the match itself.
        matched = context.stack[index]
        skipped = context.stack[index + 1 :]
        del context.stack[index:]
        for entry in reversed(skipped):
            self._skipped_element(context, tag, elem, entry, table)
        self._element_closed(context, matched, tag, False, table)

    def _unmatched_end_tag(
        self,
        context: CheckContext,
        tag: EndTag,
        elem: Optional[ElementDef],
        table: DispatchTable,
    ) -> None:
        name = tag.lowered
        unresolved_index = context.find_unresolved(name)
        if unresolved_index != -1:
            entry = context.unresolved.pop(unresolved_index)
            self._element_closed(context, entry, tag, False, table)
            return
        if elem is None and not context.options.is_custom_element(name):
            suggestion = ""
            if self.cascade_heuristics:
                candidate = self.spec.suggest_element(name)
                if candidate is not None:
                    suggestion = f' - did you mean </{candidate.upper()}>?'
            context.emit(
                "unknown-element",
                line=tag.line,
                element="/" + tag.name.upper(),
                suggestion=suggestion,
            )
            return
        context.emit("illegal-closing", line=tag.line, element=tag.name.upper())

    def _skipped_element(
        self,
        context: CheckContext,
        tag: EndTag,
        closing_elem: Optional[ElementDef],
        entry: OpenElement,
        table: DispatchTable,
    ) -> None:
        """Handle one element skipped over by an end tag deeper in the stack."""
        name = tag.lowered
        if entry.elem is None or entry.elem.optional_end:
            self._element_closed(context, entry, tag, True, table)
            return
        parental = (
            entry.elem.allowed_in is not None and name in entry.elem.allowed_in
        )
        structural = closing_elem is not None and (
            closing_elem.is_block
            or closing_elem.is_head
            or closing_elem.once_per_document
        )
        if not self.cascade_heuristics:
            # Naive mode: every skipped strict container is an overlap.
            parental = structural = False
        if parental or structural:
            context.emit(
                "unclosed-element",
                line=tag.line,
                element=entry.name.upper(),
                open_line=entry.line,
            )
            self._element_closed(context, entry, tag, True, table)
        else:
            context.emit(
                "overlapped-element",
                line=tag.line,
                closed=tag.name.upper(),
                close_line=tag.line,
                open_element=entry.name.upper(),
                open_line=entry.line,
            )
            if self.cascade_heuristics:
                context.unresolved.append(entry)
            else:
                self._element_closed(context, entry, tag, True, table)

    # -- shared close path ------------------------------------------------------------

    def _element_closed(
        self,
        context: CheckContext,
        entry: OpenElement,
        end_tag: Optional[EndTag],
        implicit: bool,
        table: DispatchTable,
    ) -> None:
        if (
            not implicit
            and entry.elem is not None
            and entry.elem.container
            and not entry.had_content
            and entry.name not in ("script", "style", "textarea", "td", "th")
        ):
            line = end_tag.line if end_tag is not None else entry.line
            context.emit("empty-container", line=line, element=entry.name.upper())
        handlers = table.element_closed.get(entry.name)
        if handlers is None:
            handlers = table.element_closed_any
        table.run_hooks(handlers, context, entry, end_tag, implicit)

    # -- text -----------------------------------------------------------------------------

    def _text(
        self, context: CheckContext, token: Text, table: DispatchTable
    ) -> None:
        if token.has_issue(LexicalIssue.EMPTY_TAG):
            context.emit("empty-tag", line=token.line)
        context.note_text(token.text)
        table.run_hooks(table.text, context, token)

    # -- end of document ---------------------------------------------------------------------

    def _finish(self, context: CheckContext, table: DispatchTable) -> None:
        while context.stack:
            entry = context.stack.pop()
            if entry.elem is not None and entry.elem.strict_container:
                context.emit(
                    "unclosed-element",
                    line=context.last_line,
                    element=entry.name.upper(),
                    open_line=entry.line,
                )
            self._element_closed(context, entry, None, True, table)
        while context.unresolved:
            entry = context.unresolved.pop()
            self._element_closed(context, entry, None, True, table)
