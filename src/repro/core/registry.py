"""The named rule registry.

The paper's weblint 2 exists because version 1's "one big loop that every
check lives inside" stopped scaling; the registry is the repro's answer
on the rules axis.  Instead of a hard-coded list (with a special case
for the plugin rule), every check is *registered* under a stable name
with optional ordering constraints, and front-ends (CLI ``--list-rules``
/ ``--enable-rule`` / ``--disable-rule``, :class:`~repro.core.linter.Weblint`,
the gateway, ``sitecheck`` and ``poacher``) consume the registry.

Registrations hold *factories*, not instances: each call to
:meth:`RuleRegistry.rules` builds a fresh rule set, matching the old
``default_rules()`` contract, while the registry itself stays immutable
configuration.

Ordering
--------

The baseline order is registration order.  ``before=`` / ``after=``
constraints adjust it via a stable topological sort, so a third-party
rule can say "run me after inline-config" without knowing the whole
list.  Constraints naming unregistered rules are ignored (a site config
must not break when an optional rule is absent); cycles raise
:class:`RegistryError`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterable, Optional

from repro.core.rules.base import Rule


class RegistryError(ValueError):
    """Invalid registry operation: duplicate name, unknown rule, cycle."""


@dataclass(frozen=True)
class Registration:
    """One named rule: how to build it and where it runs."""

    name: str
    factory: Callable[[], Rule]
    after: tuple[str, ...] = ()
    before: tuple[str, ...] = ()
    enabled: bool = True
    description: str = ""


class RuleRegistry:
    """Named, ordered, switchable collection of rule factories."""

    def __init__(self) -> None:
        self._registrations: dict[str, Registration] = {}
        self._order: Optional[list[str]] = None  # resolved-order cache

    # -- registration ------------------------------------------------------

    def register(
        self,
        name: str,
        factory: Callable[[], Rule],
        *,
        after: Iterable[str] = (),
        before: Iterable[str] = (),
        enabled: bool = True,
        description: str = "",
        replace: bool = False,
    ) -> None:
        """Register ``factory`` (a Rule subclass or zero-arg callable).

        ``name`` must be unique unless ``replace=True``; a replaced rule
        keeps its position in the baseline order.
        """
        name = name.strip().lower()
        if not name:
            raise RegistryError("rule name must be non-empty")
        if name in self._registrations and not replace:
            raise RegistryError(f"rule {name!r} is already registered")
        if not description:
            doc = getattr(factory, "__doc__", None) or ""
            description = doc.strip().splitlines()[0] if doc.strip() else ""
        self._registrations[name] = Registration(
            name=name,
            factory=factory,
            after=tuple(a.strip().lower() for a in after),
            before=tuple(b.strip().lower() for b in before),
            enabled=enabled,
            description=description,
        )
        self._order = None

    def unregister(self, name: str) -> None:
        try:
            del self._registrations[name.strip().lower()]
        except KeyError:
            raise RegistryError(f"unknown rule {name!r}") from None
        self._order = None

    # -- enable / disable --------------------------------------------------

    def _get(self, name: str) -> Registration:
        registration = self._registrations.get(name.strip().lower())
        if registration is None:
            known = ", ".join(sorted(self._registrations)) or "(none)"
            raise RegistryError(f"unknown rule {name!r}; registered: {known}")
        return registration

    def enable(self, *names: str) -> None:
        for name in names:
            registration = self._get(name)
            self._registrations[registration.name] = replace(registration, enabled=True)

    def disable(self, *names: str) -> None:
        for name in names:
            registration = self._get(name)
            self._registrations[registration.name] = replace(registration, enabled=False)

    def is_enabled(self, name: str) -> bool:
        return self._get(name).enabled

    # -- resolved views ----------------------------------------------------

    def names(self) -> list[str]:
        """All registered rule names in resolved evaluation order."""
        return list(self._resolve_order())

    def registrations(self) -> list[Registration]:
        """Registrations in resolved evaluation order."""
        return [self._registrations[name] for name in self._resolve_order()]

    def rules(self) -> list[Rule]:
        """Fresh instances of every *enabled* rule, in evaluation order."""
        built: list[Rule] = []
        for name in self._resolve_order():
            registration = self._registrations[name]
            if not registration.enabled:
                continue
            rule = registration.factory()
            if not isinstance(rule, Rule):
                raise RegistryError(
                    f"factory for {name!r} built {type(rule).__name__}, not a Rule"
                )
            built.append(rule)
        return built

    def __contains__(self, name: str) -> bool:
        return name.strip().lower() in self._registrations

    def __len__(self) -> int:
        return len(self._registrations)

    # -- ordering ----------------------------------------------------------

    def _resolve_order(self) -> list[str]:
        if self._order is not None:
            return self._order
        names = list(self._registrations)
        index = {name: position for position, name in enumerate(names)}
        # Edge u -> v means u runs before v.  Unknown names in
        # constraints are skipped by the `in index` guards.
        successors: dict[str, set[str]] = {name: set() for name in names}
        indegree = dict.fromkeys(names, 0)
        for name, registration in self._registrations.items():
            for other in registration.after:
                if other in index and name not in successors[other]:
                    successors[other].add(name)
                    indegree[name] += 1
            for other in registration.before:
                if other in index and other not in successors[name]:
                    successors[name].add(other)
                    indegree[other] += 1
        # Kahn's algorithm, always taking the earliest-registered ready
        # node, so unconstrained rules keep registration order exactly.
        ready = sorted(
            (name for name in names if indegree[name] == 0), key=index.__getitem__
        )
        order: list[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            changed = False
            for successor in successors[name]:
                indegree[successor] -= 1
                if indegree[successor] == 0:
                    ready.append(successor)
                    changed = True
            if changed:
                ready.sort(key=index.__getitem__)
        if len(order) != len(names):
            stuck = sorted(set(names) - set(order))
            raise RegistryError(
                f"ordering constraints form a cycle involving: {', '.join(stuck)}"
            )
        self._order = order
        return order


def default_registry() -> RuleRegistry:
    """The standard 12-rule registry in the seed evaluation order."""
    from repro.core.rules.anchors import AnchorRule
    from repro.core.rules.attributes import AttributeRule
    from repro.core.rules.comments import CommentRule
    from repro.core.rules.document import DocumentRule
    from repro.core.rules.forms import FormRule
    from repro.core.rules.headings import HeadingRule
    from repro.core.rules.images import ImageRule
    from repro.core.rules.inline import InlineConfigRule
    from repro.core.rules.style import StyleRule
    from repro.core.rules.tables import TableRule
    from repro.core.rules.text import TextRule

    def plugin_rule() -> Rule:
        # Imported lazily: the plugins package imports rule base classes
        # from repro.core.rules modules.
        from repro.plugins.base import PluginRule

        return PluginRule()

    registry = RuleRegistry()
    registry.register(
        "inline-config",
        InlineConfigRule,
        description="apply <!-- weblint: ... --> directives as they stream past",
    )
    # Every other rule runs after inline-config so directives take effect
    # before the checks that follow them in the same token's fan-out.
    after_config = ("inline-config",)
    registry.register(
        "document", DocumentRule, after=after_config,
        description="whole-document structure: DOCTYPE, TITLE, HEAD/BODY",
    )
    registry.register(
        "attributes", AttributeRule, after=after_config,
        description="attribute checks: unknown, duplicate, delimiters, values",
    )
    registry.register(
        "images", ImageRule, after=after_config,
        description="IMG accessibility and performance: ALT, WIDTH/HEIGHT",
    )
    registry.register(
        "anchors", AnchorRule, after=after_config,
        description="anchor quality: here-anchors, empty or nested links",
    )
    registry.register(
        "headings", HeadingRule, after=after_config,
        description="heading structure: levels in order, body starts with H1",
    )
    registry.register(
        "comments", CommentRule, after=after_config,
        description="comment hygiene: markup or SSI inside comments",
    )
    registry.register(
        "text", TextRule, after=after_config,
        description="running text: literal metacharacters, entity problems",
    )
    registry.register(
        "tables", TableRule, after=after_config,
        description="TABLE accessibility: SUMMARY, header cells",
    )
    registry.register(
        "forms", FormRule, after=after_config,
        description="form controls: NAME/LABEL requirements, TEXTAREA size",
    )
    registry.register(
        "style", StyleRule, after=after_config,
        description="style preferences: physical markup, deprecated elements, case",
    )
    registry.register(
        "plugins",
        plugin_rule,
        after=after_config,
        description="feed claimed element content and attribute values to plugins",
    )
    return registry
