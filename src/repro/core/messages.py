"""The weblint message catalog -- the ``Weblint::Warnings`` tables.

Paper section 4.3: "Weblint 1.020 supports 50 different output messages,
42 of which are enabled by default ... There are three categories of
output message: Errors ... Warnings ... Style comments."  And: "All
output messages have an identifier, which is used when enabling or
disabling it.  Weblint 2 will let users enable and disable all messages
of a given category."

This module reproduces that catalog: exactly 50 messages carry
``since="1.020"`` (the heritage set), of which exactly 42 are enabled by
default; further messages added by "weblint 2" carry ``since="2.0"``.
Experiment E2 asserts those counts.

Message templates are ``str.format`` strings; the wording follows the
paper's sample output where the paper shows it (section 4.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Category(enum.Enum):
    """The three categories of output message (paper section 4.3)."""

    ERROR = "error"
    WARNING = "warning"
    STYLE = "style"

    @classmethod
    def parse(cls, text: str) -> "Category":
        lowered = text.strip().lower()
        if lowered.endswith("s") and lowered != "s":
            lowered_singular = lowered[:-1]
        else:
            lowered_singular = lowered
        for member in cls:
            if member.value in (lowered, lowered_singular):
                return member
        raise ValueError(f"unknown message category: {text!r}")


@dataclass(frozen=True)
class Message:
    """One entry in the message catalog."""

    id: str
    category: Category
    template: str
    enabled_default: bool = True
    since: str = "1.020"
    description: str = ""

    def format(self, **arguments: object) -> str:
        return self.template.format(**arguments)


def _msg(
    id: str,
    category: Category,
    template: str,
    *,
    default: bool = True,
    since: str = "1.020",
    description: str = "",
) -> Message:
    return Message(
        id=id,
        category=category,
        template=template,
        enabled_default=default,
        since=since,
        description=description,
    )


E, W, S = Category.ERROR, Category.WARNING, Category.STYLE

_MESSAGES: tuple[Message, ...] = (
    # ------------------------------------------------------------------ errors
    _msg(
        "unclosed-element", E,
        "no closing </{element}> seen for <{element}> on line {open_line}",
        description="A container element requiring a close tag was never closed.",
    ),
    _msg(
        "illegal-closing", E,
        "unmatched </{element}> (no <{element}> seen)",
        description="A close tag appeared with no corresponding open element.",
    ),
    _msg(
        "unknown-element", E,
        "unknown element <{element}>{suggestion}",
        description="Element is not defined by the HTML version being checked; "
        "mis-typed element names like BLOCKQOUTE are suggested a fix.",
    ),
    _msg(
        "unknown-attribute", E,
        "unknown attribute \"{attribute}\" for element <{element}>",
        description="Attribute is not legal for this element in this HTML version.",
    ),
    _msg(
        "required-attribute", E,
        "the {attribute} attribute is required for the <{element}> element",
        description="A mandatory attribute is missing, e.g. ROWS and COLS on TEXTAREA.",
    ),
    _msg(
        "heading-mismatch", E,
        "malformed heading - open tag is <{open_heading}>, "
        "but closing is </{close_heading}>",
        description="A heading was closed with a different level, e.g. <H1>...</H2>.",
    ),
    _msg(
        "odd-quotes", E,
        "odd number of quotes in element <{tag}>",
        description="An attribute value's closing quote is missing.",
    ),
    _msg(
        "overlapped-element", E,
        "</{closed}> on line {close_line} seems to overlap <{open_element}>, "
        "opened on line {open_line}",
        description="Elements overlap instead of nesting, e.g. <B><A>...</B></A>.",
    ),
    _msg(
        "required-context", E,
        "illegal context for <{element}> - {requirement}",
        description="Element used outside its legal parents, e.g. LI outside a list.",
    ),
    _msg(
        "once-only", E,
        "multiple copies of element <{element}> is not allowed "
        "(first seen on line {first_line})",
        description="HTML, HEAD, BODY and TITLE may appear only once.",
    ),
    _msg(
        "head-element", E,
        "<{element}> can only appear in the HEAD element",
        description="Head-only elements (TITLE, META, BASE, LINK...) found in BODY.",
    ),
    _msg(
        "closing-attribute", E,
        "closing tag </{element}> should not have any attributes specified",
        description="End tags take no attributes.",
    ),
    _msg(
        "attribute-format", E,
        "illegal value for {attribute} attribute of {element} ({value})",
        description="Attribute value does not match its legal format, "
        "e.g. BGCOLOR=\"fffff\".",
    ),
    _msg(
        "nested-element", E,
        "<{element}> cannot be nested - </{element}> not yet seen "
        "for <{element}> on line {open_line}",
        description="Element illegally nested inside itself, e.g. A inside A.",
    ),
    _msg(
        "unclosed-comment", E,
        "unclosed comment, comment opened on line {open_line}",
        description="A comment was still open at end of document.",
    ),
    _msg(
        "unterminated-tag", E,
        "unterminated <{element}> tag - no '>' seen",
        description="End of input (or a new tag) arrived inside a tag.",
    ),
    _msg(
        "bad-link", E,
        "target {target} for link not found ({status})",
        description="A hyperlink target does not exist (file or URL).",
    ),
    _msg(
        "empty-tag", E,
        "empty tag \"<>\" is not valid markup",
        description="A bare <> appeared in the document.",
    ),
    _msg(
        "expected-attribute", E,
        "expected an attribute for <{element}> ({expected})",
        description="Element is useless without one of these attributes, "
        "e.g. an A with neither HREF nor NAME.",
    ),
    # --------------------------------------------------------------- warnings
    _msg(
        "require-doctype", W,
        "first element was not DOCTYPE specification",
        description="Documents should start by declaring their HTML version.",
    ),
    _msg(
        "html-outer", W,
        "outer tags of document should be <HTML> .. </HTML>",
        description="The whole document should be wrapped in HTML tags.",
    ),
    _msg(
        "require-title", W,
        "no <TITLE> in HEAD element",
        description="Every document should have a title.",
    ),
    _msg(
        "img-alt", W,
        "IMG does not have ALT text defined",
        description="Images need alternative text for text-only browsers, "
        "robots and accessibility.",
    ),
    _msg(
        "img-size", W,
        "IMG does not have WIDTH and HEIGHT attributes defined",
        description="WIDTH/HEIGHT let browsers lay out the page before the "
        "image loads (paper section 4.3).",
    ),
    _msg(
        "quote-attribute-value", W,
        "value for attribute {attribute} ({value}) of element {element} "
        "should be quoted (i.e. {attribute}=\"{value}\")",
        description="Unquoted attribute values are fragile.",
    ),
    _msg(
        "attribute-delimiter", W,
        "use of ' for attribute value delimiter is not supported by all "
        "browsers (attribute {attribute} of element {element})",
        description="Single-quoted values break some clients and HTML "
        "processors (paper section 4.3).",
    ),
    _msg(
        "repeated-attribute", W,
        "attribute {attribute} is repeated in element <{element}>",
        description="The same attribute appears more than once in one tag.",
    ),
    _msg(
        "unknown-entity", W,
        "unknown entity reference \"&{entity};\"",
        description="Entity is not defined by this HTML version.",
    ),
    _msg(
        "unterminated-entity", W,
        "entity reference \"&{entity}\" missing trailing semicolon",
        default=False,
        description="Pedantic: entities should end with ';'.",
    ),
    _msg(
        "literal-metacharacter", W,
        "metacharacter \"{char}\" should be represented as \"{entity}\"",
        description="Literal < > & in text confuse parsers.",
    ),
    _msg(
        "heading-order", W,
        "bad style - heading <H{level}> follows <H{previous}>, "
        "skipping level(s)",
        description="Heading levels should not jump, e.g. H1 then H4.",
    ),
    _msg(
        "markup-in-comment", W,
        "markup embedded in a comment can confuse some browsers",
        description="Commented-out markup is legal but incorrectly parsed by "
        "quick-and-dirty parsers (paper section 4.3).",
    ),
    _msg(
        "nested-comment", W,
        "comments cannot be nested - \"<!--\" seen inside a comment",
        description="SGML comments do not nest.",
    ),
    _msg(
        "deprecated-element", W,
        "use of deprecated element <{element}>{replacement}",
        description="Deprecated markup such as LISTING; use PRE instead "
        "(paper section 4.3).",
    ),
    _msg(
        "deprecated-attribute", W,
        "use of deprecated attribute {attribute} for element <{element}>",
        default=False,
        description="Pedantic: presentation attributes deprecated in HTML 4.0.",
    ),
    _msg(
        "netscape-markup", W,
        "<{element}> is Netscape specific markup",
        description="Element only understood by Netscape Navigator.",
    ),
    _msg(
        "microsoft-markup", W,
        "<{element}> is Microsoft specific markup",
        description="Element only understood by Internet Explorer.",
    ),
    _msg(
        "leading-whitespace", W,
        "should not have whitespace between \"<\" and \"{element}\"",
        description="Whitespace after < stops some browsers recognising the tag.",
    ),
    _msg(
        "directory-index", W,
        "directory {directory} does not have an index file ({expected})",
        description="-R site check: every directory should have an index page.",
    ),
    _msg(
        "orphan-page", W,
        "page {page} is not referenced by any other page checked",
        description="-R site check: orphan pages are unreachable by browsing.",
    ),
    _msg(
        "mailto-link", W,
        "text of mailto: link should give the e-mail address ({href})",
        description="Readers of printed or text pages cannot follow a bare "
        "'contact me' mailto link.",
    ),
    _msg(
        "empty-container", W,
        "empty container element <{element}>",
        description="Container element with no content, e.g. <TITLE></TITLE>.",
    ),
    _msg(
        "container-whitespace", W,
        "{position} whitespace in content of container element <{element}>",
        default=False,
        description="Pedantic: whitespace at the edges of container content "
        "renders inconsistently (classically: inside <A>).",
    ),
    # ------------------------------------------------------------------- style
    _msg(
        "here-anchor", S,
        "use of \"{text}\" as anchor text is content-free; "
        "anchor text should be meaningful",
        default=False,
        description="Search engines use anchor text (paper section 4.3).",
    ),
    _msg(
        "physical-font", S,
        "<{element}> is physical font markup - use logical "
        "(e.g. <{logical}>)",
        default=False,
        description="Use STRONG/EM rather than B/I (paper section 4.3).",
    ),
    _msg(
        "upper-case", S,
        "tag <{element}> is not in upper case",
        default=False,
        description="House style: element names in upper case.",
    ),
    _msg(
        "lower-case", S,
        "tag <{element}> is not in lower case",
        default=False,
        description="House style: element names in lower case.",
    ),
    _msg(
        "heading-in-anchor", S,
        "heading <{heading}> inside anchor - the anchor should be in the heading",
        description="<A><H1>..</H1></A> should be <H1><A>..</A></H1>.",
    ),
    _msg(
        "body-colors", S,
        "setting {attribute} on BODY without setting {missing}",
        default=False,
        description="Setting some BODY colours but not all risks unreadable "
        "combinations with user defaults.",
    ),
    _msg(
        "title-length", S,
        "TITLE is {length} characters long - keep it under {limit}",
        description="Long titles are truncated by browsers and search engines.",
    ),
    # --------------------------------------------- weblint 2 additions (2.0)
    _msg(
        "duplicate-id", E,
        "ID \"{id}\" already used on line {first_line} - IDs must be unique",
        since="2.0",
        description="Duplicate ID attributes break fragment links and scripts.",
    ),
    _msg(
        "frame-noframes", W,
        "FRAMESET without NOFRAMES content penalises non-frame browsers",
        since="2.0",
        description="Provide NOFRAMES content for accessibility.",
    ),
    _msg(
        "self-closing-tag", W,
        "XML-style self-closing tag <{element}/> is not HTML",
        default=False,
        since="2.0",
        description="XHTML syntax in an HTML document.",
    ),
    _msg(
        "table-summary", S,
        "TABLE without SUMMARY attribute - summaries help speech clients",
        default=False,
        since="2.0",
        description="Accessibility annotation for tables (the Bobby check the "
        "paper cites in section 3.3).",
    ),
    _msg(
        "form-label", S,
        "form control <{element}> has no associated LABEL",
        default=False,
        since="2.0",
        description="Accessibility: label your form fields.",
    ),
    _msg(
        "meta-description", S,
        "no META description/keywords - search engines use them",
        default=False,
        since="2.0",
        description="Paper section 2: META tags provide the abstract shown by "
        "search engines.",
    ),
    _msg(
        "bad-fragment", W,
        "target {target} exists, but fragment \"#{fragment}\" is not "
        "defined there",
        since="2.0",
        description="The page a link points at has no such anchor "
        "(<A NAME> or ID).",
    ),
    _msg(
        "css-syntax", W,
        "stylesheet syntax: {problem}",
        since="2.0",
        description="Malformed CSS in a STYLE element or style attribute "
        "(the plugin framework of paper section 6.1).",
    ),
    _msg(
        "css-unknown-property", W,
        "unknown style property \"{property}\"{suggestion}",
        since="2.0",
        description="Style property not defined by CSS1/CSS2.",
    ),
    _msg(
        "css-unknown-color", W,
        "unknown colour \"{value}\" for style property \"{property}\"",
        since="2.0",
        description="Colour value is neither #rgb/#rrggbb nor a named colour.",
    ),
    _msg(
        "script-syntax", W,
        "script looks malformed: {problem}",
        since="2.0",
        description="Unbalanced brackets or quotes inside a SCRIPT element.",
    ),
    _msg(
        "link-rev-made", S,
        "no <LINK REV=MADE HREF=\"mailto:...\"> - readers cannot contact the author",
        default=False,
        since="2.0",
        description="Classic authorship metadata.",
    ),
)

CATALOG: dict[str, Message] = {m.id: m for m in _MESSAGES}

if len(CATALOG) != len(_MESSAGES):  # pragma: no cover - build-time sanity
    raise AssertionError("duplicate message identifiers in catalog")


def message(message_id: str) -> Message:
    """Look up a message by identifier, raising ``KeyError`` with help."""
    try:
        return CATALOG[message_id]
    except KeyError:
        raise KeyError(
            f"unknown message id {message_id!r}; "
            f"see repro.core.messages.CATALOG for the full list"
        ) from None


def all_ids() -> list[str]:
    return list(CATALOG)


def ids_in_category(category: Category) -> list[str]:
    return [m.id for m in _MESSAGES if m.category is category]


def default_enabled_ids() -> set[str]:
    return {m.id for m in _MESSAGES if m.enabled_default}


def heritage_messages() -> list[Message]:
    """The 50-message weblint 1.020 catalog the paper describes."""
    return [m for m in _MESSAGES if m.since == "1.020"]


def catalog_statistics() -> dict[str, int]:
    """Counts used by experiment E2 (paper: 50 messages, 42 default)."""
    heritage = heritage_messages()
    return {
        "total": len(_MESSAGES),
        "heritage_total": len(heritage),
        "heritage_default_enabled": sum(1 for m in heritage if m.enabled_default),
        "errors": len(ids_in_category(Category.ERROR)),
        "warnings": len(ids_in_category(Category.WARNING)),
        "style": len(ids_in_category(Category.STYLE)),
    }
