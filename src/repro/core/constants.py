"""Shared constants -- the ``Weblint::Constants`` module.

Small, dependency-free values used across the core packages.
"""

from __future__ import annotations

#: Version of the reproduced tool (weblint 2 development line).
WEBLINT_VERSION = "2.0.0a1"

#: The weblint 1 release whose catalog statistics the paper quotes:
#: "Weblint 1.020 supports 50 different output messages, 42 of which are
#: enabled by default."
HERITAGE_RELEASE = "1.020"
HERITAGE_MESSAGE_COUNT = 50
HERITAGE_DEFAULT_ENABLED = 42

#: Default HTML language to check against (paper section 5.5).
DEFAULT_SPEC = "html40"

#: Names browsers treat as a directory index, for the -R directory check.
INDEX_FILENAMES = ("index.html", "index.htm", "index.shtml", "default.htm")

#: File extensions that look like HTML pages when recursing.
HTML_EXTENSIONS = (".html", ".htm", ".shtml", ".xhtml")

#: TITLE length beyond which the (off-by-default) title-length message
#: fires; 64 is the classic weblint limit.
MAX_TITLE_LENGTH = 64

#: Exit codes for the command-line script: lint convention is non-zero
#: when problems were found.
EXIT_CLEAN = 0
EXIT_WARNINGS = 1
EXIT_USAGE = 2

#: Content-free anchor texts for the here-anchor style check.  The paper:
#: 'Use of "here" and other content-free text within anchors.'
CONTENT_FREE_ANCHOR_TEXT = (
    "here",
    "click here",
    "click",
    "this",
    "link",
    "this link",
    "click this link",
    "more",
    "read more",
    "page",
    "web page",
    "follow this link",
)
