"""The batch lint service: one contract for every front end.

The paper's weblint 2 is an embeddable class checking one document at a
time; :class:`~repro.core.linter.Weblint` reproduces that shape.  Every
front end, though -- the CLI, the ``-R`` site checker, the gateway, the
poacher robot, the sample-corpus harness -- needs the same three steps
around it: obtain a document (file, string, URL, stdin), check it, and
survive the documents that cannot be read.  This module owns those steps
once:

- :class:`DocumentSource` -- where a document comes from.  Sources read
  lazily and exactly once; the text is cached so a caller can lint *and*
  post-process (link extraction, page weight) from a single read.
- :class:`LintRequest` / :class:`LintResult` -- one unit of batch work.
  A failed read or fetch becomes a structured ``LintResult.error``
  instead of an exception, so one bad document never aborts a batch.
- :class:`LintService` -- owns options + spec + registry + compiled
  dispatch tables once, and exposes ``check(request)`` plus
  ``check_many(requests, jobs=N)``.  Give it a
  :class:`repro.core.cache.ResultCache` (``cache=``) and results are
  reused across documents, runs and processes: a document whose bytes
  and service configuration both match a cached entry skips the engine
  entirely (``cache.lint.hits``), which is what makes a warm site
  re-check near-free.  Runs that exist to observe the engine
  (``--trace``, ``--profile``) bypass the cache so their artefacts
  stay truthful.
- :class:`ParallelExecutor` -- the ``jobs > 1`` path: chunked submission
  over a ``ProcessPoolExecutor`` whose per-worker initializer builds the
  service (and compiles dispatch tables) once per worker.  Each worker's
  metrics / tracer / profiler snapshots are merged into the parent's, so
  ``--stats``, ``--trace`` and ``--profile`` stay truthful under
  parallelism.

The pipeline is a generator end to end: ``iter_check`` yields each
:class:`LintResult` the moment its worker finishes (completion order),
with cache hits and source errors short-circuited inline, and
``check_many`` is the buffered view over it (results re-ordered back to
input order).  Streaming consumers -- the JSON-lines reporter, the site
rollup -- never hold a whole batch in memory.
"""

from __future__ import annotations

import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Optional, Sequence, Union

from repro.config.options import Options
from repro.core.diagnostics import Diagnostic
from repro.core.engine import Engine
from repro.core.registry import RuleRegistry, default_registry
from repro.core.rules.base import Rule
from repro.html.spec import HTMLSpec, get_spec
from repro.obs.events import get_event_log
from repro.obs.metrics import MetricsRegistry, get_registry, set_registry, use_registry
from repro.obs.profile import RuleProfiler, get_profiler, set_profiler, use_profiler
from repro.obs.timeseries import get_timeseries
from repro.obs.trace import Tracer, get_tracer, set_tracer, use_tracer


class SourceError(Exception):
    """A document source could not be read or fetched."""


# -- document sources -------------------------------------------------------


class DocumentSource:
    """One checkable document, read lazily and exactly once.

    ``text()`` performs the read on first call and caches it, so the
    pipeline can share a single read between linting and any follow-up
    analysis (link extraction, page weight).  Failures raise
    :class:`SourceError`; the service converts that into a structured
    ``LintResult.error``.
    """

    #: Label used as the diagnostics' filename.
    name: str = "-"
    #: Whether instances can be pickled into a worker process unchanged.
    #: Non-portable sources (stdin handles, URL sources bound to a live
    #: agent) are materialised in the parent before fan-out.
    portable = False

    def text(self) -> str:
        cached = getattr(self, "_text", None)
        if cached is None:
            cached = self._read()
            self._text = cached
        return cached

    def _read(self) -> str:
        raise NotImplementedError


class PathSource(DocumentSource):
    """A file on disk; read in whichever process checks it."""

    portable = True

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.name = str(path)

    def _read(self) -> str:
        try:
            return self.path.read_text(encoding="utf-8", errors="replace")
        except OSError as exc:
            raise SourceError(f"cannot read {self.path}: {exc}") from exc


class StringSource(DocumentSource):
    """HTML already in memory (pasted, uploaded, fetched by a crawler)."""

    portable = True

    def __init__(self, text: str, name: str = "-") -> None:
        self._text = text
        self.name = name

    def _read(self) -> str:  # pragma: no cover - _text is always set
        return self._text


class StdinSource(DocumentSource):
    """The ``-`` path: standard input, read once in the parent."""

    def __init__(self, stream=None, name: str = "stdin") -> None:
        self.stream = stream
        self.name = name

    def _read(self) -> str:
        stream = self.stream if self.stream is not None else sys.stdin
        try:
            return stream.read()
        except OSError as exc:
            raise SourceError(f"cannot read stdin: {exc}") from exc


class URLSource(DocumentSource):
    """A page fetched through a :class:`repro.www.client.UserAgent`.

    After a successful fetch ``name`` becomes the *final* URL (after
    redirects), matching ``Weblint.check_url``'s historical labelling.
    """

    def __init__(self, url: str, agent=None) -> None:
        self.url = url
        self.agent = agent
        self.name = url

    def _read(self) -> str:
        from repro.www.client import FetchError, UserAgent

        agent = self.agent
        if agent is None:
            agent = UserAgent()
        try:
            response = agent.get(self.url)
        except FetchError as exc:
            raise SourceError(f"cannot fetch {self.url}: {exc}") from exc
        if not response.ok:
            raise SourceError(
                f"cannot fetch {self.url}: {response.status} {response.reason}"
            )
        self.name = response.url
        return response.body


# -- requests and results ---------------------------------------------------


@dataclass
class LintRequest:
    """One document to check.

    ``keep_text`` asks the pipeline to return the document text on the
    result -- the single-read contract for callers that need the source
    for further analysis (the site checker's link extraction, the
    gateway's page-weight table).
    """

    source: DocumentSource
    keep_text: bool = False


@dataclass
class LintResult:
    """What checking one document produced.

    Exactly one of two shapes: diagnostics (``error is None``), or a
    structured error string for a document that could not be read or
    fetched.  Errors never abort the batch.
    """

    name: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    error: Optional[str] = None
    text: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


# -- the service ------------------------------------------------------------


@dataclass(frozen=True)
class ServiceSpecification:
    """A picklable recipe for rebuilding a :class:`LintService`.

    Shipped to every pool worker exactly once (as the initializer
    argument), so workers compile their dispatch tables once and reuse
    them for every chunk.  Rule factories are not picklable, so the
    recipe carries the *state* of the default registry (which rules are
    enabled) rather than the registry itself.
    """

    options: Options
    spec_name: str
    rule_state: tuple[tuple[str, bool], ...]
    cascade_heuristics: bool = True
    naive_dispatch: bool = False


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: ``0``/``None`` means one per CPU."""
    import os

    if not jobs:
        return os.cpu_count() or 1
    return max(1, jobs)


class LintService:
    """Configuration + engine, shared by every document in a batch.

    Owns the options, the HTML spec, the rule set and (through the
    engine) the compiled dispatch tables -- built once, reused for every
    ``check``.  Thread- and reentrancy-safe per document because the
    engine keeps all per-check state on the check context.
    """

    def __init__(
        self,
        options: Optional[Options] = None,
        spec: Optional[Union[str, HTMLSpec]] = None,
        rules: Optional[Sequence[Rule]] = None,
        registry: Optional[RuleRegistry] = None,
        cascade_heuristics: bool = True,
        naive_dispatch: bool = False,
        cache=None,
    ) -> None:
        self.options = options if options is not None else Options.with_defaults()
        if isinstance(spec, str):
            spec = get_spec(spec)
        self.spec = spec if spec is not None else get_spec(self.options.spec_name)
        self.cascade_heuristics = cascade_heuristics
        self.naive_dispatch = naive_dispatch
        self._explicit_rules = rules is not None
        if rules is None:
            if registry is None:
                registry = default_registry()
            rules = registry.rules()
        self.registry = registry
        self.rules = list(rules)
        #: Optional :class:`repro.core.cache.ResultCache`.  Only a
        #: registry-described rule set can be cached: a raw ``rules=``
        #: list has no stable identity to key on, so the cache is
        #: silently ignored for it (same contract as worker fan-out).
        self.cache = cache if not self._explicit_rules else None
        self._fingerprint: Optional[bytes] = None
        self.engine = Engine(
            spec=self.spec,
            options=self.options,
            rules=self.rules,
            cascade_heuristics=cascade_heuristics,
            naive_dispatch=naive_dispatch,
        )

    # -- worker portability ------------------------------------------------

    @property
    def portable(self) -> bool:
        """Can workers rebuild this service from a specification?

        Requires the rule set to be registry-described (not a raw rule
        list) and every registered name to exist in the default registry
        -- otherwise ``check_many`` silently degrades to the sequential
        path rather than checking with a different rule set.
        """
        if self._explicit_rules or self.registry is None:
            return False
        known = default_registry()
        return all(name in known for name in self.registry.names())

    def specification(self) -> ServiceSpecification:
        if not self.portable:
            raise ValueError(
                "this service's rule set cannot be rebuilt in a worker; "
                "check_many will run sequentially"
            )
        return ServiceSpecification(
            options=self.options.copy(),
            spec_name=self.spec.name,
            rule_state=tuple(
                (registration.name, registration.enabled)
                for registration in self.registry.registrations()
            ),
            cascade_heuristics=self.cascade_heuristics,
            naive_dispatch=self.naive_dispatch,
        )

    @classmethod
    def from_specification(cls, spec: ServiceSpecification) -> "LintService":
        registry = default_registry()
        for name, enabled in spec.rule_state:
            if name not in registry:
                continue
            if enabled:
                registry.enable(name)
            else:
                registry.disable(name)
        return cls(
            options=spec.options,
            spec=spec.spec_name,
            registry=registry,
            cascade_heuristics=spec.cascade_heuristics,
            naive_dispatch=spec.naive_dispatch,
        )

    def warm(self) -> None:
        """Compile (and cache) the dispatch tables now, not on first use."""
        self.engine.dispatch_table()

    # -- result caching ----------------------------------------------------

    def cache_fingerprint(self) -> bytes:
        """Digest of every configuration axis that can change lint output.

        Combined with the document bytes this forms the
        :class:`~repro.core.cache.ResultCache` key; see docs/caching.md
        for the invalidation rules it implies.
        """
        if self._fingerprint is None:
            from repro.core.cache import service_fingerprint

            rule_state: tuple[tuple[str, bool], ...]
            if self.registry is not None:
                rule_state = tuple(
                    (registration.name, registration.enabled)
                    for registration in self.registry.registrations()
                )
            else:  # explicit rules: names only (cache is disabled anyway)
                rule_state = tuple((rule.name, True) for rule in self.rules)
            self._fingerprint = service_fingerprint(
                self.options.fingerprint(),
                self.spec.name,
                rule_state,
                self.cascade_heuristics,
                self.naive_dispatch,
            )
        return self._fingerprint

    def _cache_key(self, text: str) -> Optional[str]:
        """The cache key for ``text`` -- or ``None`` when caching is off.

        Observability runs that exist to watch the engine work
        (an enabled tracer or an installed profiler) bypass the cache:
        a span tree or rule profile served from cache would be a lie.
        """
        if self.cache is None:
            return None
        if get_profiler() is not None or getattr(get_tracer(), "enabled", False):
            get_registry().inc("cache.lint.bypassed")
            return None
        from repro.core.cache import result_key

        return result_key(text, self.cache_fingerprint())

    # -- checking ----------------------------------------------------------

    def check(self, request: Union[LintRequest, DocumentSource]) -> LintResult:
        """Check one document in this process; never raises for bad I/O."""
        if isinstance(request, DocumentSource):
            request = LintRequest(request)
        source = request.source
        try:
            text = source.text()
        except SourceError as exc:
            get_registry().inc("lint.source_errors")
            get_event_log().emit(
                "lint.source_error", level="error", file=source.name,
                error=str(exc),
            )
            return LintResult(name=source.name, error=str(exc))
        registry = get_registry()
        key = self._cache_key(text)
        if key is not None:
            cached = self.cache.get(key, filename=source.name)
            if cached is not None:
                registry.inc("lint.files")
                for diagnostic in cached:
                    registry.inc(f"lint.diagnostics.{diagnostic.category.value}")
                return LintResult(
                    name=source.name,
                    diagnostics=cached,
                    text=text if request.keep_text else None,
                )
        start = time.perf_counter()
        with get_tracer().span("lint.file", file=source.name):
            context = self.engine.check(text, source.name)
        diagnostics = context.sorted_diagnostics()
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        registry.inc("lint.files")
        registry.observe("lint.check_ms", elapsed_ms)
        # Continuous-telemetry feeds: both are no-ops (one global read,
        # one test) unless a run armed them.
        series = get_timeseries()
        if series is not None:
            series.observe("lint.check_ms", elapsed_ms)
        events = get_event_log()
        if events.enabled:
            events.note_operation("lint.file", elapsed_ms, file=source.name)
            events.emit(
                "lint.file",
                level="debug",
                file=source.name,
                diagnostics=len(diagnostics),
                duration_ms=round(elapsed_ms, 3),
            )
        for diagnostic in diagnostics:
            registry.inc(f"lint.diagnostics.{diagnostic.category.value}")
        if key is not None:
            self.cache.put(key, diagnostics)
        return LintResult(
            name=source.name,
            diagnostics=diagnostics,
            text=text if request.keep_text else None,
        )

    def check_many(
        self,
        requests: Iterable[Union[LintRequest, DocumentSource]],
        jobs: int = 1,
    ) -> list[LintResult]:
        """Check a batch; results come back in input order.

        ``jobs > 1`` fans documents out over a process pool (``0`` means
        one worker per CPU).  The parallel path produces byte-identical
        diagnostics to the sequential one; services whose rule set
        cannot be rebuilt in a worker run sequentially regardless of
        ``jobs``.
        """
        batch = [
            request if isinstance(request, LintRequest) else LintRequest(request)
            for request in requests
        ]
        results: list[Optional[LintResult]] = [None] * len(batch)
        for index, result in self._iter_indexed(batch, resolve_jobs(jobs)):
            results[index] = result
        return results  # type: ignore[return-value]

    def iter_check(
        self,
        requests: Iterable[Union[LintRequest, DocumentSource]],
        jobs: int = 1,
    ) -> "Iterator[LintResult]":
        """Check a batch, yielding each result the moment it resolves.

        The streaming face of :meth:`check_many`: results arrive in
        *completion* order (cache hits and unreadable sources resolve
        inline, parallel chunks as their workers finish), so a consumer
        can report or roll up each document without the pipeline ever
        holding the whole batch.  The set of results is identical to
        ``check_many``'s; only the order differs.
        """
        batch = [
            request if isinstance(request, LintRequest) else LintRequest(request)
            for request in requests
        ]
        for _, result in self._iter_indexed(batch, resolve_jobs(jobs)):
            yield result

    def _iter_indexed(
        self, batch: list[LintRequest], jobs: int
    ) -> "Iterator[tuple[int, LintResult]]":
        """Yield ``(input_index, result)`` pairs in completion order."""
        if jobs <= 1 or len(batch) < 2 or not self.portable:
            for index, request in enumerate(batch):
                yield index, self.check(request)
            return
        if self.cache is not None:
            yield from self._iter_indexed_cached(batch, jobs)
            return
        executor = ParallelExecutor(self.specification(), jobs=jobs)
        yield from executor.iter_run(batch, fallback=self.check)

    def _iter_indexed_cached(
        self, batch: list[LintRequest], jobs: int
    ) -> "Iterator[tuple[int, LintResult]]":
        """The parallel path when a result cache is attached.

        Worker processes cannot share the parent's cache tiers, so hits
        are resolved *here*, before fan-out: read each document, hash
        it, serve matching cached results directly.  Only the misses
        ship to the pool (as already-read strings -- one read total, as
        ever), and their fresh results are stored as they stream back.
        """
        registry = get_registry()
        misses: list[tuple[int, LintRequest, Optional[str]]] = []
        for index, request in enumerate(batch):
            source = request.source
            try:
                text = source.text()
            except SourceError as exc:
                registry.inc("lint.source_errors")
                yield index, LintResult(name=source.name, error=str(exc))
                continue
            key = self._cache_key(text)
            if key is not None:
                cached = self.cache.get(key, filename=source.name)
                if cached is not None:
                    registry.inc("lint.files")
                    for diagnostic in cached:
                        registry.inc(
                            f"lint.diagnostics.{diagnostic.category.value}"
                        )
                    yield index, LintResult(
                        name=source.name,
                        diagnostics=cached,
                        text=text if request.keep_text else None,
                    )
                    continue
            misses.append((
                index,
                LintRequest(
                    StringSource(text, name=source.name),
                    keep_text=request.keep_text,
                ),
                key,
            ))
        if not misses:
            return
        if len(misses) == 1:
            checked: Iterable[tuple[int, LintResult]] = (
                (0, self.check(misses[0][1])),
            )
        else:
            executor = ParallelExecutor(self.specification(), jobs=jobs)
            checked = executor.iter_run(
                [request for _, request, _ in misses], fallback=self.check
            )
        for miss_index, result in checked:
            index, _, key = misses[miss_index]
            if key is not None and result is not None and result.ok:
                self.cache.put(key, result.diagnostics)
            yield index, result


# -- the process-pool executor ----------------------------------------------

#: The worker's service, built once by :func:`_worker_init`.
_WORKER_SERVICE: Optional[LintService] = None


def _worker_init(specification: ServiceSpecification) -> None:
    """Per-worker initializer: build the service, compile tables once.

    Also installs fresh observability state: under the ``fork`` start
    method the worker inherits the parent's registry (with all its
    historical counts), and everything the worker records is shipped
    back explicitly per chunk.
    """
    global _WORKER_SERVICE
    set_registry(MetricsRegistry())
    set_tracer(None)
    set_profiler(None)
    _WORKER_SERVICE = LintService.from_specification(specification)
    _WORKER_SERVICE.warm()


def _worker_run_chunk(
    requests: list[LintRequest],
    collect_trace: bool,
    collect_profile: bool,
) -> tuple[list[LintResult], dict, Optional[list], Optional[dict]]:
    """Check one chunk; return results plus observability snapshots."""
    service = _WORKER_SERVICE
    assert service is not None, "worker used before _worker_init ran"
    tracer = Tracer() if collect_trace else None
    profiler = RuleProfiler() if collect_profile else None
    with use_registry() as registry:
        if tracer is not None:
            with use_tracer(tracer):
                if profiler is not None:
                    with use_profiler(profiler):
                        results = [service.check(r) for r in requests]
                else:
                    results = [service.check(r) for r in requests]
        elif profiler is not None:
            with use_profiler(profiler):
                results = [service.check(r) for r in requests]
        else:
            results = [service.check(r) for r in requests]
    return (
        results,
        registry.snapshot(),
        tracer.to_records() if tracer is not None else None,
        profiler.snapshot() if profiler is not None else None,
    )


class ParallelExecutor:
    """Chunked fan-out of lint requests over a process pool.

    Submission is chunked (several documents per task) to amortise
    pickling overhead; completion order is irrelevant because every
    result is placed back at its input index.  If the platform cannot
    spawn worker processes at all, the executor degrades to the
    sequential fallback rather than failing the batch.
    """

    def __init__(
        self,
        specification: ServiceSpecification,
        jobs: int,
        chunk_size: Optional[int] = None,
    ) -> None:
        self.specification = specification
        self.jobs = max(1, jobs)
        self.chunk_size = chunk_size

    def run(
        self,
        requests: list[LintRequest],
        fallback: Callable[[LintRequest], LintResult],
    ) -> list[LintResult]:
        results: list[Optional[LintResult]] = [None] * len(requests)
        for index, result in self.iter_run(requests, fallback):
            results[index] = result
        return results  # type: ignore[return-value]

    def iter_run(
        self,
        requests: list[LintRequest],
        fallback: Callable[[LintRequest], LintResult],
    ) -> Iterator[tuple[int, LintResult]]:
        """Yield ``(input_index, result)`` as worker chunks complete."""
        # Materialise non-portable sources (stdin handles, URL sources
        # bound to a live agent) in the parent: read failures become
        # error results immediately, successes ship as strings.
        portable: list[tuple[int, LintRequest]] = []
        for index, request in enumerate(requests):
            source = request.source
            if not source.portable:
                try:
                    text = source.text()
                except SourceError as exc:
                    get_registry().inc("lint.source_errors")
                    yield index, LintResult(name=source.name, error=str(exc))
                    continue
                request = LintRequest(
                    StringSource(text, name=source.name),
                    keep_text=request.keep_text,
                )
            portable.append((index, request))
        if not portable:
            return

        chunk_size = self.chunk_size or max(
            1, -(-len(portable) // (self.jobs * 4))
        )
        chunks = [
            portable[offset : offset + chunk_size]
            for offset in range(0, len(portable), chunk_size)
        ]
        collect_trace = bool(getattr(get_tracer(), "enabled", False))
        collect_profile = get_profiler() is not None

        try:
            pool = ProcessPoolExecutor(
                max_workers=min(self.jobs, len(chunks)),
                initializer=_worker_init,
                initargs=(self.specification,),
            )
        except (OSError, ValueError):  # pragma: no cover - no multiprocessing
            for index, request in portable:
                yield index, fallback(request)
            return

        registry = get_registry()
        broken: list[int] = []
        with pool:
            futures = {
                pool.submit(
                    _worker_run_chunk,
                    [request for _, request in chunk],
                    collect_trace,
                    collect_profile,
                ): [index for index, _ in chunk]
                for chunk in chunks
            }
            for future in as_completed(futures):
                indices = futures[future]
                try:
                    chunk_results, metrics, spans, profile = future.result()
                except BrokenProcessPool:  # pragma: no cover - worker died
                    broken.extend(indices)
                    continue
                registry.merge_snapshot(metrics)
                if spans:
                    tracer = get_tracer()
                    if getattr(tracer, "enabled", False):
                        tracer.merge_records(spans)
                if profile:
                    profiler = get_profiler()
                    if profiler is not None:
                        profiler.merge_snapshot(profile)
                for index, result in zip(indices, chunk_results):
                    yield index, result
        # Requests lost to a broken pool re-run sequentially, so a dying
        # worker degrades throughput, never correctness.
        request_at = dict(portable)
        for index in broken:  # pragma: no cover - worker died
            yield index, fallback(request_at[index])
