"""Check context -- the state the stack machine and rules share.

Paper section 5.1: "For each token type, a number of checks are made.
These may involve just the token itself, or its context, which can include
the current state of the stack, the secondary stack, and the history of
elements seen."

:class:`CheckContext` is exactly that context: the main stack of open
elements, the secondary (unresolved) stack, element history, plus the
document-level flags rules need (seen DOCTYPE, head/body phase ...) and
the :meth:`emit` gateway through which every diagnostic flows so that
configuration is enforced in one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.config.options import Options
from repro.core.diagnostics import Diagnostic
from repro.obs.profile import get_profiler
from repro.html.spec import ElementDef, HTMLSpec
from repro.html.tokens import StartTag

#: Elements whose text content the context accumulates, because some rule
#: needs to look at it (anchor text, title text, heading text).
TEXT_TRACKED_ELEMENTS = frozenset(
    {"a", "title", "h1", "h2", "h3", "h4", "h5", "h6", "option", "textarea"}
)


@dataclass
class OpenElement:
    """One entry on the main (or secondary) stack."""

    name: str                     # lower-cased element name
    tag: StartTag                 # the start tag as written
    line: int
    elem: Optional[ElementDef]    # None for unknown/custom elements
    had_content: bool = False
    text_parts: list[str] = field(default_factory=list)

    @property
    def text(self) -> str:
        return "".join(self.text_parts)


class CheckContext:
    """Mutable state for checking one document."""

    def __init__(
        self,
        spec: HTMLSpec,
        options: Options,
        filename: str = "-",
    ) -> None:
        self.spec = spec
        self.options = options
        self.filename = filename
        self.diagnostics: list[Diagnostic] = []
        self.suppressed_count = 0

        # Effective enabled set.  Starts as the configured set; inline
        # configuration comments (<!-- weblint: disable x -->) adjust it
        # mid-document, with a push/pop stack for scoped overrides --
        # the paper's section 6.1 "page-specific configuration" plan.
        self.enabled_now: set[str] = set(options.enabled)
        self._enabled_stack: list[set[str]] = []

        # The two stacks of section 5.1.
        self.stack: list[OpenElement] = []
        self.unresolved: list[OpenElement] = []

        # History: first line each element name was seen on.
        self.history: dict[str, int] = {}

        # Document phase flags.
        self.seen_doctype = False
        self.seen_any_element = False
        self.first_element_name: Optional[str] = None
        self.last_end_tag_name: Optional[str] = None
        self.seen_head_close = False
        self.seen_body_open = False
        self.seen_title = False
        self.title_text: Optional[str] = None
        self.last_heading_level: Optional[int] = None
        self.ids_seen: dict[str, int] = {}
        self.last_line = 1

        # Scratch space rules may use to coordinate (keyed by rule name).
        self.scratch: dict[str, object] = {}

        # Deepest the main stack got; the engine reports it to the
        # metrics registry (engine.stack.high_water) after the check.
        self.stack_high_water = 0

        # Dispatch bookkeeping: the profiler active for this check
        # (resolved once at construction, so profiling state is
        # per-invocation) and the rule-hook invocation count that feeds
        # the engine.dispatch.calls metric.
        self.profiler = get_profiler()
        self.hook_calls = 0

    # -- emission ----------------------------------------------------------------

    def emit(self, message_id: str, *, line: int, column: int = 0, **arguments: object) -> bool:
        """Emit a diagnostic if the message is enabled.

        Returns True when the diagnostic was recorded; rules can use the
        result to avoid follow-on work.
        """
        if message_id not in self.enabled_now:
            self.suppressed_count += 1
            return False
        limit = self.options.stop_after
        if limit is not None and len(self.diagnostics) >= limit:
            self.suppressed_count += 1
            return False
        self.diagnostics.append(
            Diagnostic.build(
                message_id,
                line=line,
                column=column,
                filename=self.filename,
                **arguments,
            )
        )
        if self.profiler is not None:
            self.profiler.note_message(message_id)
        return True

    # -- inline configuration ------------------------------------------------------

    def enable_inline(self, identifiers: list[str]) -> None:
        """Apply an inline ``enable`` directive from this point on."""
        from repro.config.options import expand_identifier

        for identifier in identifiers:
            self.enabled_now.update(expand_identifier(identifier))

    def disable_inline(self, identifiers: list[str]) -> None:
        from repro.config.options import expand_identifier

        for identifier in identifiers:
            self.enabled_now.difference_update(expand_identifier(identifier))

    def push_enabled(self) -> None:
        self._enabled_stack.append(set(self.enabled_now))

    def pop_enabled(self) -> bool:
        """Restore the last pushed enabled set; False if none was pushed."""
        if not self._enabled_stack:
            return False
        self.enabled_now = self._enabled_stack.pop()
        return True

    # -- stack helpers -----------------------------------------------------------

    @property
    def top(self) -> Optional[OpenElement]:
        return self.stack[-1] if self.stack else None

    def push(self, open_element: OpenElement) -> None:
        self.stack.append(open_element)
        if len(self.stack) > self.stack_high_water:
            self.stack_high_water = len(self.stack)

    def find_open(self, name: str) -> int:
        """Index of the topmost open element with this name, or -1."""
        for index in range(len(self.stack) - 1, -1, -1):
            if self.stack[index].name == name:
                return index
        return -1

    def in_element(self, name: str) -> bool:
        return self.find_open(name) != -1

    def open_ancestors(self) -> list[str]:
        return [entry.name for entry in self.stack]

    def find_unresolved(self, name: str) -> int:
        for index in range(len(self.unresolved) - 1, -1, -1):
            if self.unresolved[index].name == name:
                return index
        return -1

    # -- content tracking ------------------------------------------------------------

    def note_child(self) -> None:
        """Record that the current open element received a child element."""
        if self.top is not None:
            self.top.had_content = True

    def note_text(self, text: str) -> None:
        """Record text content.

        Whitespace-only runs do not count as content (an element holding
        only a newline is still "empty" for the empty-container check) but
        are still accumulated for text-tracked elements, because rules
        like container-whitespace care about it.
        """
        if self.top is not None and text.strip():
            self.top.had_content = True
        for entry in self.stack:
            if entry.name in TEXT_TRACKED_ELEMENTS:
                entry.text_parts.append(text)

    # -- results ------------------------------------------------------------------------

    def sorted_diagnostics(self) -> list[Diagnostic]:
        """Diagnostics in document order (stable within a line)."""
        return sorted(
            self.diagnostics, key=lambda d: (d.filename, d.line)
        )
