"""Reporters -- the pluggable output side of ``Weblint::Warnings``.

Paper section 5.6: "The warnings module can be sub-classed, and the new
warnings class installed in Weblint.  This might change the wording of
warnings (e.g. verbose warnings), or change the way warnings are emitted.
The gateway script uses a subclass to provide warnings more appropriate
to the web page context."

Formats:

- :class:`LintReporter` -- "the default traditional lint style of
  messages: ``test.html(1): blah blah blah``" (section 4.2).
- :class:`ShortReporter` -- the ``-s`` switch: ``line 1: ...``.
- :class:`VerboseReporter` -- message id, category and help text.
- :class:`HTMLReporter` -- the gateway subclass: warnings as an HTML list.
- :class:`JSONReporter` -- machine-readable, for robots and CI.
"""

from __future__ import annotations

import html as _html
import json
from typing import IO, Iterable, Optional

from repro.core.diagnostics import Diagnostic
from repro.core.messages import message


class Reporter:
    """Base reporter: format one diagnostic, or report a whole list."""

    name = "base"

    def format(self, diagnostic: Diagnostic) -> str:
        raise NotImplementedError

    def header(self) -> str:
        return ""

    def footer(self, diagnostics: list[Diagnostic]) -> str:
        return ""

    def report(
        self,
        diagnostics: Iterable[Diagnostic],
        stream: Optional[IO[str]] = None,
    ) -> str:
        """Render all diagnostics; write to ``stream`` if given."""
        items = list(diagnostics)
        parts: list[str] = []
        head = self.header()
        if head:
            parts.append(head)
        parts.extend(self.format(d) for d in items)
        foot = self.footer(items)
        if foot:
            parts.append(foot)
        text = "\n".join(parts)
        if stream is not None and text:
            stream.write(text + "\n")
        return text


class LintReporter(Reporter):
    """Traditional lint format: ``file(line): message``."""

    name = "lint"

    def format(self, diagnostic: Diagnostic) -> str:
        return f"{diagnostic.filename}({diagnostic.line}): {diagnostic.text}"


class ShortReporter(Reporter):
    """The ``-s`` format shown in the paper: ``line N: message``."""

    name = "short"

    def format(self, diagnostic: Diagnostic) -> str:
        return f"line {diagnostic.line}: {diagnostic.text}"


class VerboseReporter(Reporter):
    """Message id + category + description, for learning HTML."""

    name = "verbose"

    def format(self, diagnostic: Diagnostic) -> str:
        lines = [
            f"{diagnostic.filename}({diagnostic.line}): "
            f"[{diagnostic.category.value}/{diagnostic.message_id}] "
            f"{diagnostic.text}"
        ]
        description = message(diagnostic.message_id).description
        if description:
            lines.append(f"    {description}")
        return "\n".join(lines)

    def footer(self, diagnostics: list[Diagnostic]) -> str:
        if not diagnostics:
            return ""
        by_category: dict[str, int] = {}
        for diagnostic in diagnostics:
            key = diagnostic.category.value
            by_category[key] = by_category.get(key, 0) + 1
        summary = ", ".join(
            f"{count} {name}{'s' if count != 1 else ''}"
            for name, count in sorted(by_category.items())
        )
        return f"{len(diagnostics)} message(s): {summary}"


class HTMLReporter(Reporter):
    """Warnings as an HTML fragment, for embedding by the gateway.

    Produces a ``<ul class="weblint-report">`` with one ``<li>`` per
    diagnostic, classed by category so gateways can style them.
    """

    name = "html"

    def report(
        self,
        diagnostics: Iterable[Diagnostic],
        stream: Optional[IO[str]] = None,
    ) -> str:
        items = list(diagnostics)
        if not items:
            # No empty <ul>: the report page must itself lint clean.
            text = "<p>No problems found - nice page!</p>"
            if stream is not None:
                stream.write(text + "\n")
            return text
        return super().report(items, stream=stream)

    def header(self) -> str:
        return '<ul class="weblint-report">'

    def format(self, diagnostic: Diagnostic) -> str:
        text = _html.escape(diagnostic.text)
        return (
            f'  <li class="weblint-{diagnostic.category.value}">'
            f"<b>line {diagnostic.line}</b>: {text}</li>"
        )

    def footer(self, diagnostics: list[Diagnostic]) -> str:
        return f"</ul>\n<p>{len(diagnostics)} problem(s) found.</p>"


class JSONReporter(Reporter):
    """One JSON object per run: machine-readable output."""

    name = "json"

    def format(self, diagnostic: Diagnostic) -> str:  # pragma: no cover
        return json.dumps(self._as_dict(diagnostic))

    @staticmethod
    def _as_dict(diagnostic: Diagnostic) -> dict[str, object]:
        return {
            "id": diagnostic.message_id,
            "category": diagnostic.category.value,
            "file": diagnostic.filename,
            "line": diagnostic.line,
            "column": diagnostic.column,
            "message": diagnostic.text,
        }

    def report(
        self,
        diagnostics: Iterable[Diagnostic],
        stream: Optional[IO[str]] = None,
    ) -> str:
        payload = json.dumps(
            [self._as_dict(d) for d in diagnostics], indent=2
        )
        if stream is not None:
            stream.write(payload + "\n")
        return payload


_REPORTERS = {
    cls.name: cls
    for cls in (LintReporter, ShortReporter, VerboseReporter, HTMLReporter, JSONReporter)
}


def get_reporter(name: str) -> Reporter:
    """Instantiate a reporter by name ('lint', 'short', 'verbose', ...)."""
    try:
        return _REPORTERS[name.lower()]()
    except KeyError:
        raise KeyError(
            f"unknown reporter {name!r}; available: {', '.join(sorted(_REPORTERS))}"
        ) from None


def available_reporters() -> list[str]:
    return sorted(_REPORTERS)
