"""Reporters -- the pluggable output side of ``Weblint::Warnings``.

Paper section 5.6: "The warnings module can be sub-classed, and the new
warnings class installed in Weblint.  This might change the wording of
warnings (e.g. verbose warnings), or change the way warnings are emitted.
The gateway script uses a subclass to provide warnings more appropriate
to the web page context."

Formats:

- :class:`LintReporter` -- "the default traditional lint style of
  messages: ``test.html(1): blah blah blah``" (section 4.2).
- :class:`ShortReporter` -- the ``-s`` switch: ``line 1: ...``.
- :class:`VerboseReporter` -- message id, category and help text.
- :class:`HTMLReporter` -- the gateway subclass: warnings as an HTML list.
- :class:`JSONReporter` -- machine-readable, for robots and CI.
- :class:`JsonlReporter` -- one JSON object per document, written the
  moment the document resolves (the streaming pipeline's native format).

Beyond the classic "render a list" contract, every reporter speaks an
incremental one -- ``begin(stream)`` / ``emit(result)`` / ``end()`` --
fed by ``LintService.iter_check``'s completion-order stream, so output
starts the moment the first document is linted and no reporter needs
the whole batch in memory (batch formats like JSON still buffer, by
design: their output is one document per run).
"""

from __future__ import annotations

import html as _html
import json
from typing import IO, Iterable, Optional

from repro.core.diagnostics import Diagnostic, count_by_category
from repro.core.messages import message
from repro.obs.metrics import get_registry


class Reporter:
    """Base reporter: format one diagnostic, or report a whole list.

    Output contract (every subclass, and every caller, can rely on it):

    - With diagnostics: header (if any), one ``format`` line per
      diagnostic, footer (if any), joined by newlines.
    - Without diagnostics: :meth:`empty` is rendered instead -- the
      header/footer frame is *never* emitted around nothing, so a
      header-only reporter still produces either its empty text or a
      complete frame, not a dangling header.
    - Whenever the rendered text is non-empty and a stream was given, it
      is written with exactly one trailing newline.

    Reporters also tally what they have reported: :attr:`count` holds
    per-category totals (plus ``"total"``) accumulated across calls,
    which ``weblint --stats`` reuses for its summary.
    """

    name = "base"

    #: True for reporters whose output is one machine-readable document
    #: per *run* (JSON, stats): the CLI collects every path's diagnostics
    #: and calls :meth:`report` once, instead of once per path -- so a
    #: multi-path run emits a single parseable document.
    batch_output = False

    #: True for reporters that write one self-contained record per
    #: document as :meth:`emit` is called.  The CLI feeds these from
    #: ``LintService.iter_check`` in completion order instead of
    #: buffering the whole batch.
    streams_incrementally = False

    def __init__(self) -> None:
        self._counts: dict[str, int] = {"total": 0}
        self._stream: Optional[IO[str]] = None
        self._pending: list[Diagnostic] = []

    def format(self, diagnostic: Diagnostic) -> str:
        raise NotImplementedError

    def header(self) -> str:
        return ""

    def footer(self, diagnostics: list[Diagnostic]) -> str:
        return ""

    def empty(self) -> str:
        """Rendered when there is nothing to report (default: nothing)."""
        return ""

    @property
    def count(self) -> dict[str, int]:
        """Diagnostics reported so far, by category, plus ``"total"``."""
        return dict(self._counts)

    def _record(self, items: list[Diagnostic]) -> None:
        self._counts["total"] = self._counts.get("total", 0) + len(items)
        for key, value in count_by_category(items, include_zero=False).items():
            self._counts[key] = self._counts.get(key, 0) + value

    def report(
        self,
        diagnostics: Iterable[Diagnostic],
        stream: Optional[IO[str]] = None,
    ) -> str:
        """Render all diagnostics; write to ``stream`` if given."""
        items = list(diagnostics)
        self._record(items)
        if not items:
            text = self.empty()
        else:
            parts: list[str] = []
            head = self.header()
            if head:
                parts.append(head)
            parts.extend(self.format(d) for d in items)
            foot = self.footer(items)
            if foot:
                parts.append(foot)
            text = "\n".join(parts)
        if stream is not None and text:
            stream.write(text + "\n")
        return text

    # -- the incremental contract -------------------------------------

    def begin(self, stream: Optional[IO[str]] = None) -> "Reporter":
        """Start an incremental report writing to ``stream``."""
        self._stream = stream
        self._pending = []
        return self

    def emit(self, result) -> None:
        """Fold one resolved document into the report.

        ``result`` is anything shaped like a ``LintResult`` (``name``,
        ``diagnostics`` and optionally ``error`` attributes).  The
        default keeps each format's framing: per-document reporters
        render the document's diagnostics immediately (exactly what the
        buffered CLI produced per path); ``batch_output`` reporters
        accumulate and render once at :meth:`end`.  Unreadable
        documents are skipped -- the caller owns error reporting.
        """
        if getattr(result, "error", None) is not None:
            return
        diagnostics = list(result.diagnostics)
        if self.batch_output:
            self._pending.extend(diagnostics)
        else:
            self.report(diagnostics, stream=self._stream)

    def end(self) -> str:
        """Finish an incremental report; returns any final rendering."""
        if self.batch_output:
            pending, self._pending = self._pending, []
            return self.report(pending, stream=self._stream)
        return ""


class LintReporter(Reporter):
    """Traditional lint format: ``file(line): message``."""

    name = "lint"

    def format(self, diagnostic: Diagnostic) -> str:
        return f"{diagnostic.filename}({diagnostic.line}): {diagnostic.text}"


class ShortReporter(Reporter):
    """The ``-s`` format shown in the paper: ``line N: message``."""

    name = "short"

    def format(self, diagnostic: Diagnostic) -> str:
        return f"line {diagnostic.line}: {diagnostic.text}"


class VerboseReporter(Reporter):
    """Message id + category + description, for learning HTML."""

    name = "verbose"

    def format(self, diagnostic: Diagnostic) -> str:
        lines = [
            f"{diagnostic.filename}({diagnostic.line}): "
            f"[{diagnostic.category.value}/{diagnostic.message_id}] "
            f"{diagnostic.text}"
        ]
        description = message(diagnostic.message_id).description
        if description:
            lines.append(f"    {description}")
        return "\n".join(lines)

    def footer(self, diagnostics: list[Diagnostic]) -> str:
        if not diagnostics:
            return ""
        by_category = count_by_category(diagnostics, include_zero=False)
        summary = ", ".join(
            f"{count} {name}{'s' if count != 1 else ''}"
            for name, count in sorted(by_category.items())
        )
        return f"{len(diagnostics)} message(s): {summary}"


class HTMLReporter(Reporter):
    """Warnings as an HTML fragment, for embedding by the gateway.

    Produces a ``<ul class="weblint-report">`` with one ``<li>`` per
    diagnostic, classed by category so gateways can style them.
    """

    name = "html"

    def empty(self) -> str:
        # No empty <ul>: the report page must itself lint clean.
        return "<p>No problems found - nice page!</p>"

    def header(self) -> str:
        return '<ul class="weblint-report">'

    def format(self, diagnostic: Diagnostic) -> str:
        text = _html.escape(diagnostic.text)
        return (
            f'  <li class="weblint-{diagnostic.category.value}">'
            f"<b>line {diagnostic.line}</b>: {text}</li>"
        )

    def footer(self, diagnostics: list[Diagnostic]) -> str:
        return f"</ul>\n<p>{len(diagnostics)} problem(s) found.</p>"


class JSONReporter(Reporter):
    """One JSON object per run: machine-readable output."""

    name = "json"
    batch_output = True

    def format(self, diagnostic: Diagnostic) -> str:  # pragma: no cover
        return json.dumps(self._as_dict(diagnostic))

    @staticmethod
    def _as_dict(diagnostic: Diagnostic) -> dict[str, object]:
        return {
            "id": diagnostic.message_id,
            "category": diagnostic.category.value,
            "file": diagnostic.filename,
            "line": diagnostic.line,
            "column": diagnostic.column,
            "message": diagnostic.text,
        }

    def report(
        self,
        diagnostics: Iterable[Diagnostic],
        stream: Optional[IO[str]] = None,
    ) -> str:
        items = list(diagnostics)
        self._record(items)
        payload = json.dumps([self._as_dict(d) for d in items], indent=2)
        if stream is not None:
            stream.write(payload + "\n")
        return payload


class JsonlReporter(Reporter):
    """One JSON object per *document*, written the moment it resolves.

    The streaming face of :class:`JSONReporter`: ``weblint -f jsonl``
    and ``poacher --format jsonl`` write one line per page as the
    pipeline completes it, so a site-scale audit can be tailed and
    filtered while it runs, and the run never holds more than one
    document's diagnostics.  Lines arrive in *completion* order; sort
    by ``file`` for a canonical view.  Unreadable documents become
    ``{"file": ..., "error": ...}`` records so the stream stays an
    exact account of the batch.
    """

    name = "jsonl"
    streams_incrementally = True

    def format(self, diagnostic: Diagnostic) -> str:  # pragma: no cover
        return json.dumps(self._as_item(diagnostic), sort_keys=True)

    @staticmethod
    def _as_item(diagnostic: Diagnostic) -> dict[str, object]:
        return {
            "id": diagnostic.message_id,
            "category": diagnostic.category.value,
            "line": diagnostic.line,
            "column": diagnostic.column,
            "message": diagnostic.text,
        }

    def _document(self, filename: str, items: list[Diagnostic]) -> str:
        return json.dumps(
            {
                "file": filename,
                "count": len(items),
                "diagnostics": [self._as_item(d) for d in items],
            },
            sort_keys=True,
        )

    def _write(self, line: str) -> None:
        if self._stream is None:
            return
        self._stream.write(line + "\n")
        flush = getattr(self._stream, "flush", None)
        if flush is not None:  # a tail -f consumer must see it now
            try:
                flush()
            except OSError:  # pragma: no cover - closed pipe
                pass

    def emit(self, result) -> None:
        error = getattr(result, "error", None)
        if error is not None:
            self._write(json.dumps(
                {"file": result.name, "error": str(error)}, sort_keys=True
            ))
            return
        diagnostics = list(result.diagnostics)
        self._record(diagnostics)
        self._write(self._document(result.name, diagnostics))

    def report(
        self,
        diagnostics: Iterable[Diagnostic],
        stream: Optional[IO[str]] = None,
    ) -> str:
        """The buffered contract: one line per distinct filename."""
        items = list(diagnostics)
        self._record(items)
        by_file: dict[str, list[Diagnostic]] = {}
        for diagnostic in items:
            by_file.setdefault(diagnostic.filename, []).append(diagnostic)
        text = "\n".join(
            self._document(filename, group)
            for filename, group in by_file.items()
        )
        if stream is not None and text:
            stream.write(text + "\n")
        return text


class StatsReporter(Reporter):
    """Diagnostics summary plus the metrics-registry snapshot, as JSON.

    The machine-readable face of the observability layer: CI jobs and
    benchmark harnesses run ``weblint -f stats`` and get category totals
    *and* every ``lint.*`` / ``tokenizer.*`` / ``engine.*`` metric the
    run recorded, in one parseable object.
    """

    name = "stats"
    batch_output = True

    def report(
        self,
        diagnostics: Iterable[Diagnostic],
        stream: Optional[IO[str]] = None,
    ) -> str:
        items = list(diagnostics)
        self._record(items)
        payload = json.dumps(
            {
                "diagnostics": self.count,
                "metrics": get_registry().snapshot(),
            },
            indent=2,
        )
        if stream is not None:
            stream.write(payload + "\n")
        return payload


_REPORTERS = {
    cls.name: cls
    for cls in (
        LintReporter,
        ShortReporter,
        VerboseReporter,
        HTMLReporter,
        JSONReporter,
        JsonlReporter,
        StatsReporter,
    )
}


def get_reporter(name: str) -> Reporter:
    """Instantiate a reporter by name ('lint', 'short', 'verbose', ...)."""
    try:
        return _REPORTERS[name.lower()]()
    except KeyError:
        raise KeyError(
            f"unknown reporter {name!r}; available: {', '.join(sorted(_REPORTERS))}"
        ) from None


def available_reporters() -> list[str]:
    return sorted(_REPORTERS)
