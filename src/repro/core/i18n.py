"""Internationalisation of weblint messages.

Paper section 6.1 (future plans): "Internationalisation and localisation.
Masayasu Ishikawa has done a lot of work in this area, which is being
folded into Weblint 2."

The mechanism: diagnostics carry their template *arguments* (not just the
rendered text), so a localised reporter can re-render any diagnostic from
a translated template.  Translations keep the exact placeholder set of
the English original -- a property the test-suite enforces for every
entry -- and missing translations fall back to English, so a partial
catalog degrades gracefully.

Shipped locales: ``en`` (the catalog itself), ``fr``, ``de``.
"""

from __future__ import annotations

import string
from typing import Optional

from repro.core.diagnostics import Diagnostic
from repro.core.messages import CATALOG
from repro.core.reporter import LintReporter

# -- translated templates ------------------------------------------------------

FRENCH: dict[str, str] = {
    "unclosed-element":
        "balise fermante </{element}> introuvable pour <{element}> "
        "ouverte à la ligne {open_line}",
    "illegal-closing":
        "balise fermante </{element}> sans <{element}> ouvrante",
    "unknown-element":
        "élément inconnu <{element}>{suggestion}",
    "unknown-attribute":
        "attribut \"{attribute}\" inconnu pour l'élément <{element}>",
    "required-attribute":
        "l'attribut {attribute} est obligatoire pour l'élément <{element}>",
    "heading-mismatch":
        "titre mal formé - la balise ouvrante est <{open_heading}>, "
        "mais la fermante est </{close_heading}>",
    "odd-quotes":
        "nombre impair de guillemets dans l'élément <{tag}>",
    "overlapped-element":
        "</{closed}> à la ligne {close_line} semble chevaucher "
        "<{open_element}>, ouvert à la ligne {open_line}",
    "required-context":
        "contexte illégal pour <{element}> - {requirement}",
    "once-only":
        "l'élément <{element}> ne peut apparaître qu'une seule fois "
        "(vu d'abord à la ligne {first_line})",
    "head-element":
        "<{element}> ne peut apparaître que dans l'élément HEAD",
    "closing-attribute":
        "la balise fermante </{element}> ne doit pas porter d'attributs",
    "attribute-format":
        "valeur illégale pour l'attribut {attribute} de {element} ({value})",
    "nested-element":
        "<{element}> ne peut pas être imbriqué - </{element}> pas encore "
        "vu pour <{element}> de la ligne {open_line}",
    "unclosed-comment":
        "commentaire non fermé, ouvert à la ligne {open_line}",
    "unterminated-tag":
        "balise <{element}> non terminée - aucun '>' trouvé",
    "bad-link":
        "cible {target} du lien introuvable ({status})",
    "empty-tag":
        "la balise vide \"<>\" n'est pas du HTML valide",
    "expected-attribute":
        "un attribut était attendu pour <{element}> ({expected})",
    "require-doctype":
        "le premier élément n'était pas une déclaration DOCTYPE",
    "html-outer":
        "les balises extérieures du document devraient être "
        "<HTML> .. </HTML>",
    "require-title":
        "pas de <TITLE> dans l'élément HEAD",
    "img-alt":
        "IMG sans texte ALT",
    "img-size":
        "IMG sans attributs WIDTH et HEIGHT",
    "quote-attribute-value":
        "la valeur de l'attribut {attribute} ({value}) de l'élément "
        "{element} devrait être entre guillemets "
        "(c.-à-d. {attribute}=\"{value}\")",
    "attribute-delimiter":
        "l'apostrophe comme délimiteur de valeur n'est pas comprise par "
        "tous les navigateurs (attribut {attribute} de l'élément {element})",
    "repeated-attribute":
        "l'attribut {attribute} est répété dans l'élément <{element}>",
    "unknown-entity":
        "référence d'entité inconnue \"&{entity};\"",
    "unterminated-entity":
        "référence d'entité \"&{entity}\" sans point-virgule final",
    "literal-metacharacter":
        "le métacaractère \"{char}\" devrait s'écrire \"{entity}\"",
    "heading-order":
        "mauvais style - le titre <H{level}> suit <H{previous}> en "
        "sautant des niveaux",
    "markup-in-comment":
        "du balisage dans un commentaire peut dérouter certains navigateurs",
    "nested-comment":
        "les commentaires ne peuvent pas être imbriqués - \"<!--\" vu "
        "dans un commentaire",
    "deprecated-element":
        "utilisation de l'élément déconseillé <{element}>{replacement}",
    "deprecated-attribute":
        "utilisation de l'attribut déconseillé {attribute} pour "
        "l'élément <{element}>",
    "netscape-markup":
        "<{element}> est un balisage propre à Netscape",
    "microsoft-markup":
        "<{element}> est un balisage propre à Microsoft",
    "leading-whitespace":
        "pas d'espace entre \"<\" et \"{element}\"",
    "directory-index":
        "le répertoire {directory} n'a pas de fichier index ({expected})",
    "orphan-page":
        "la page {page} n'est référencée par aucune autre page vérifiée",
    "mailto-link":
        "le texte d'un lien mailto: devrait donner l'adresse ({href})",
    "empty-container":
        "élément conteneur vide <{element}>",
    "container-whitespace":
        "espace {position} dans le contenu de l'élément <{element}>",
    "here-anchor":
        "\"{text}\" comme texte d'ancre n'apporte rien ; le texte "
        "devrait être parlant",
    "physical-font":
        "<{element}> est un balisage physique - préférez le logique "
        "(p. ex. <{logical}>)",
    "upper-case":
        "la balise <{element}> n'est pas en majuscules",
    "lower-case":
        "la balise <{element}> n'est pas en minuscules",
    "heading-in-anchor":
        "titre <{heading}> dans une ancre - l'ancre devrait être dans "
        "le titre",
    "body-colors":
        "{attribute} est défini sur BODY sans définir {missing}",
    "title-length":
        "le TITLE fait {length} caractères - restez sous {limit}",
    "duplicate-id":
        "l'ID \"{id}\" est déjà utilisé à la ligne {first_line} - les "
        "ID doivent être uniques",
    "frame-noframes":
        "FRAMESET sans contenu NOFRAMES pénalise les navigateurs sans "
        "cadres",
    "self-closing-tag":
        "la balise auto-fermante <{element}/> de style XML n'est pas "
        "du HTML",
    "table-summary":
        "TABLE sans attribut SUMMARY - les résumés aident les clients "
        "vocaux",
    "form-label":
        "le champ de formulaire <{element}> n'a pas de LABEL associé",
    "meta-description":
        "pas de META description/keywords - les moteurs de recherche "
        "les utilisent",
    "link-rev-made":
        "pas de <LINK REV=MADE HREF=\"mailto:...\"> - les lecteurs ne "
        "peuvent pas contacter l'auteur",
    "bad-fragment":
        "la cible {target} existe, mais le fragment \"#{fragment}\" n'y "
        "est pas défini",
    "css-syntax":
        "syntaxe de feuille de style : {problem}",
    "css-unknown-property":
        "propriété de style inconnue \"{property}\"{suggestion}",
    "css-unknown-color":
        "couleur inconnue \"{value}\" pour la propriété \"{property}\"",
    "script-syntax":
        "le script semble mal formé : {problem}",
}

GERMAN: dict[str, str] = {
    "unclosed-element":
        "kein schließendes </{element}> für <{element}> aus Zeile "
        "{open_line} gefunden",
    "illegal-closing":
        "</{element}> ohne passendes <{element}>",
    "unknown-element":
        "unbekanntes Element <{element}>{suggestion}",
    "unknown-attribute":
        "unbekanntes Attribut \"{attribute}\" für Element <{element}>",
    "required-attribute":
        "das Attribut {attribute} ist für das Element <{element}> "
        "erforderlich",
    "heading-mismatch":
        "fehlerhafte Überschrift - geöffnet mit <{open_heading}>, "
        "geschlossen mit </{close_heading}>",
    "odd-quotes":
        "ungerade Anzahl Anführungszeichen im Element <{tag}>",
    "overlapped-element":
        "</{closed}> in Zeile {close_line} überlappt anscheinend "
        "<{open_element}>, geöffnet in Zeile {open_line}",
    "required-context":
        "unzulässiger Kontext für <{element}> - {requirement}",
    "once-only":
        "mehrere <{element}>-Elemente sind nicht erlaubt (zuerst in "
        "Zeile {first_line})",
    "head-element":
        "<{element}> darf nur im HEAD-Element vorkommen",
    "closing-attribute":
        "das schließende Tag </{element}> darf keine Attribute tragen",
    "attribute-format":
        "unzulässiger Wert für Attribut {attribute} von {element} "
        "({value})",
    "nested-element":
        "<{element}> darf nicht verschachtelt werden - </{element}> für "
        "<{element}> aus Zeile {open_line} fehlt noch",
    "unclosed-comment":
        "nicht geschlossener Kommentar, geöffnet in Zeile {open_line}",
    "unterminated-tag":
        "unvollständiges <{element}>-Tag - kein '>' gefunden",
    "bad-link":
        "Linkziel {target} nicht gefunden ({status})",
    "empty-tag":
        "das leere Tag \"<>\" ist kein gültiges HTML",
    "expected-attribute":
        "für <{element}> wurde ein Attribut erwartet ({expected})",
    "require-doctype":
        "das erste Element war keine DOCTYPE-Deklaration",
    "html-outer":
        "die äußeren Tags des Dokuments sollten <HTML> .. </HTML> sein",
    "require-title":
        "kein <TITLE> im HEAD-Element",
    "img-alt":
        "IMG ohne ALT-Text",
    "img-size":
        "IMG ohne WIDTH- und HEIGHT-Attribute",
    "quote-attribute-value":
        "der Wert des Attributs {attribute} ({value}) von {element} "
        "sollte in Anführungszeichen stehen (d. h. {attribute}=\"{value}\")",
    "attribute-delimiter":
        "einfache Anführungszeichen als Begrenzer versteht nicht jeder "
        "Browser (Attribut {attribute} von {element})",
    "repeated-attribute":
        "Attribut {attribute} im Element <{element}> wiederholt",
    "unknown-entity":
        "unbekannte Entity-Referenz \"&{entity};\"",
    "unterminated-entity":
        "Entity-Referenz \"&{entity}\" ohne abschließendes Semikolon",
    "literal-metacharacter":
        "Metazeichen \"{char}\" sollte als \"{entity}\" geschrieben werden",
    "heading-order":
        "schlechter Stil - Überschrift <H{level}> folgt auf "
        "<H{previous}> und überspringt Ebenen",
    "markup-in-comment":
        "Markup in einem Kommentar kann manche Browser verwirren",
    "nested-comment":
        "Kommentare dürfen nicht verschachtelt werden - \"<!--\" im "
        "Kommentar gefunden",
    "deprecated-element":
        "veraltetes Element <{element}> verwendet{replacement}",
    "deprecated-attribute":
        "veraltetes Attribut {attribute} für Element <{element}> verwendet",
    "netscape-markup":
        "<{element}> ist Netscape-spezifisches Markup",
    "microsoft-markup":
        "<{element}> ist Microsoft-spezifisches Markup",
    "leading-whitespace":
        "zwischen \"<\" und \"{element}\" gehört kein Leerraum",
    "directory-index":
        "Verzeichnis {directory} hat keine Indexdatei ({expected})",
    "orphan-page":
        "Seite {page} wird von keiner anderen geprüften Seite verlinkt",
    "mailto-link":
        "der Text eines mailto:-Links sollte die Adresse nennen ({href})",
    "empty-container":
        "leeres Containerelement <{element}>",
    "container-whitespace":
        "{position} Leerraum im Inhalt des Elements <{element}>",
    "here-anchor":
        "\"{text}\" als Ankertext sagt nichts aus; der Text sollte "
        "aussagekräftig sein",
    "physical-font":
        "<{element}> ist physisches Markup - besser logisch "
        "(z. B. <{logical}>)",
    "upper-case":
        "Tag <{element}> ist nicht in Großbuchstaben",
    "lower-case":
        "Tag <{element}> ist nicht in Kleinbuchstaben",
    "heading-in-anchor":
        "Überschrift <{heading}> im Anker - der Anker gehört in die "
        "Überschrift",
    "body-colors":
        "{attribute} auf BODY gesetzt, ohne {missing} zu setzen",
    "title-length":
        "TITLE ist {length} Zeichen lang - bleiben Sie unter {limit}",
    "duplicate-id":
        "ID \"{id}\" wurde bereits in Zeile {first_line} verwendet - "
        "IDs müssen eindeutig sein",
    "frame-noframes":
        "FRAMESET ohne NOFRAMES-Inhalt benachteiligt Browser ohne Frames",
    "self-closing-tag":
        "selbstschließendes Tag <{element}/> im XML-Stil ist kein HTML",
    "table-summary":
        "TABLE ohne SUMMARY-Attribut - Zusammenfassungen helfen "
        "Sprachausgaben",
    "form-label":
        "Formularfeld <{element}> hat kein zugeordnetes LABEL",
    "meta-description":
        "keine META description/keywords - Suchmaschinen nutzen sie",
    "link-rev-made":
        "kein <LINK REV=MADE HREF=\"mailto:...\"> - Leser können den "
        "Autor nicht erreichen",
    "bad-fragment":
        "Ziel {target} existiert, aber das Fragment \"#{fragment}\" ist "
        "dort nicht definiert",
    "css-syntax":
        "Stylesheet-Syntax: {problem}",
    "css-unknown-property":
        "unbekannte Stileigenschaft \"{property}\"{suggestion}",
    "css-unknown-color":
        "unbekannte Farbe \"{value}\" für Stileigenschaft \"{property}\"",
    "script-syntax":
        "Skript wirkt fehlerhaft: {problem}",
}

TRANSLATIONS: dict[str, dict[str, str]] = {
    "fr": FRENCH,
    "de": GERMAN,
}


def available_locales() -> list[str]:
    return ["en", *sorted(TRANSLATIONS)]


def template_for(message_id: str, locale: str) -> Optional[str]:
    """The template for ``message_id`` in ``locale``; None = fall back."""
    if locale in ("", "en", "en-us", "en-gb", "c"):
        return None
    base = locale.lower().split("-", 1)[0].split("_", 1)[0]
    return TRANSLATIONS.get(base, {}).get(message_id)


def placeholders(template: str) -> set[str]:
    """The named format fields a template consumes."""
    return {
        field
        for _text, field, _spec, _conv in string.Formatter().parse(template)
        if field
    }


def localise(diagnostic: Diagnostic, locale: str) -> str:
    """Render ``diagnostic`` in ``locale``, falling back to its text."""
    template = template_for(diagnostic.message_id, locale)
    if template is None:
        return diagnostic.text
    try:
        return template.format(**diagnostic.arguments)
    except (KeyError, IndexError):  # pragma: no cover - catalog bug guard
        return diagnostic.text


class LocalisedReporter(LintReporter):
    """A lint-format reporter rendering messages in another language.

    The Warnings-subclass mechanism of paper section 5.6 put to its
    natural use.
    """

    name = "localised"

    def __init__(self, locale: str) -> None:
        super().__init__()
        self.locale = locale

    def format(self, diagnostic: Diagnostic) -> str:
        text = localise(diagnostic, self.locale)
        return f"{diagnostic.filename}({diagnostic.line}): {text}"


def coverage(locale: str) -> float:
    """Fraction of catalog messages this locale translates."""
    base = locale.lower().split("-", 1)[0]
    table = TRANSLATIONS.get(base)
    if table is None:
        return 1.0 if base == "en" else 0.0
    return len(set(table) & set(CATALOG)) / len(CATALOG)
