"""Persistent, content-addressed lint-result cache.

The ROADMAP's north star names caching explicitly: a re-audit of a site
that changed three pages out of three hundred should pay for three
lints, not three hundred.  This module is the lint half of that story
(the HTTP half -- conditional fetches -- lives in
:mod:`repro.www.httpcache`): a :class:`ResultCache` that
:meth:`repro.core.service.LintService.check` consults before dispatching
a document to the engine and populates afterwards.

Correctness rests entirely on the key.  An entry is addressed by::

    sha256( service fingerprint || 0x00 || document bytes )

where the *service fingerprint* digests everything that can change what
the engine would emit: the options fingerprint (every semantic field --
see :meth:`repro.config.options.Options.fingerprint`), the HTML spec
name, the rule set (registry names + enabled flags, in order), the
cascade-heuristics and naive-dispatch switches, the weblint version and
the on-disk format version.  Change any of them and every key changes,
so invalidation is automatic -- there is no "stale entry" state to
manage, only misses.

Two tiers:

- an in-memory LRU (``memory_entries`` strong entries) for repeated
  checks inside one process -- the site checker re-linting a template
  shared by many pages hits this tier;
- an optional disk tier (``directory=``): one JSON file per entry,
  sharded by the first two hex digits of the key, written atomically
  (temp file + ``os.replace``) so a crashed or concurrent run can never
  leave a torn entry.  Loads are corruption-tolerant: an unreadable,
  unparseable or wrong-version file is treated as a miss (and counted
  in ``cache.lint.corrupt``), never an error.

Diagnostics are stored *filename-free* and re-bound to the requesting
document's name on every hit, so two identical files at different paths
share one entry and still report their own names.

Metrics (see docs/observability.md and docs/caching.md):
``cache.lint.hits`` / ``misses`` / ``stores`` / ``evictions`` (memory
tier) / ``corrupt`` / ``unserialisable``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.core import constants
from repro.core.diagnostics import Diagnostic
from repro.core.messages import Category
from repro.obs.metrics import get_registry

#: Bump when the on-disk entry layout changes; old entries become misses.
FORMAT_VERSION = 1

#: Filename placeholder stored on disk; re-bound on every hit.
_UNBOUND = "-"


def _stable(value: object) -> object:
    """A deterministic, order-independent projection of ``value``.

    ``Options.fingerprint()`` contains frozensets, whose ``repr`` order
    is arbitrary between processes; keys must not depend on it.
    """
    if isinstance(value, (set, frozenset)):
        return ("set",) + tuple(sorted((repr(_stable(v)) for v in value)))
    if isinstance(value, dict):
        return ("dict",) + tuple(
            sorted((repr(_stable(k)), repr(_stable(v))) for k, v in value.items())
        )
    if isinstance(value, (list, tuple)):
        return tuple(_stable(v) for v in value)
    return value


def service_fingerprint(
    options_fingerprint: tuple,
    spec_name: str,
    rule_state: Sequence[tuple[str, bool]],
    cascade_heuristics: bool,
    naive_dispatch: bool,
) -> bytes:
    """Digest every configuration axis that can change lint output."""
    payload = repr(
        (
            FORMAT_VERSION,
            constants.WEBLINT_VERSION,
            spec_name,
            _stable(options_fingerprint),
            tuple(rule_state),
            cascade_heuristics,
            naive_dispatch,
        )
    ).encode("utf-8")
    return hashlib.sha256(payload).digest()


def result_key(text: str, fingerprint: bytes) -> str:
    """The content-addressed cache key for one (document, service) pair."""
    digest = hashlib.sha256()
    digest.update(fingerprint)
    digest.update(b"\x00")
    digest.update(text.encode("utf-8", errors="surrogatepass"))
    return digest.hexdigest()


def _diagnostic_to_dict(diagnostic: Diagnostic) -> dict:
    return {
        "id": diagnostic.message_id,
        "category": diagnostic.category.value,
        "text": diagnostic.text,
        "line": diagnostic.line,
        "column": diagnostic.column,
        "arguments": diagnostic.arguments,
    }


def _diagnostic_from_dict(raw: dict, filename: str) -> Diagnostic:
    return Diagnostic(
        message_id=raw["id"],
        category=Category(raw["category"]),
        text=raw["text"],
        line=raw["line"],
        column=raw.get("column", 0),
        filename=filename,
        arguments=dict(raw.get("arguments", {})),
    )


class ResultCache:
    """Two-tier (memory LRU + disk) store of lint results by content key.

    Thread-safe: the site checker and the batch pipeline may consult one
    instance from several threads.  Disk writes are atomic per entry;
    two processes sharing a directory race benignly (last write wins,
    both wrote identical bytes for identical keys).
    """

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        memory_entries: int = 256,
    ) -> None:
        self.directory = Path(directory) if directory is not None else None
        self.memory_entries = max(1, memory_entries)
        self._memory: OrderedDict[str, list[dict]] = OrderedDict()
        self._lock = threading.Lock()

    # -- lookup ------------------------------------------------------------

    def get(self, key: str, filename: str = _UNBOUND) -> Optional[list[Diagnostic]]:
        """The cached diagnostics for ``key``, re-bound to ``filename``.

        Returns ``None`` on a miss; a corrupt or wrong-version disk
        entry is a miss, never an error.
        """
        registry = get_registry()
        with self._lock:
            rows = self._memory.get(key)
            if rows is not None:
                self._memory.move_to_end(key)
        if rows is None:
            rows = self._load(key)
            if rows is not None:
                self._remember(key, rows)
        if rows is None:
            registry.inc("cache.lint.misses")
            return None
        registry.inc("cache.lint.hits")
        try:
            return [_diagnostic_from_dict(row, filename) for row in rows]
        except (KeyError, TypeError, ValueError):
            # A hand-edited or future-format entry that parsed as JSON
            # but does not describe diagnostics degrades to a miss too.
            registry.inc("cache.lint.corrupt")
            registry.inc("cache.lint.misses")
            return None

    def put(self, key: str, diagnostics: Sequence[Diagnostic]) -> None:
        """Store ``diagnostics`` under ``key`` (memory, then disk)."""
        registry = get_registry()
        rows = [_diagnostic_to_dict(d) for d in diagnostics]
        try:
            payload = json.dumps(
                {"version": FORMAT_VERSION, "diagnostics": rows},
                sort_keys=True,
            )
        except (TypeError, ValueError):
            # A plugin rule put something non-JSON in arguments; caching
            # this entry would lose information, so skip it.
            registry.inc("cache.lint.unserialisable")
            return
        self._remember(key, rows)
        registry.inc("cache.lint.stores")
        if self.directory is None:
            return
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            handle = tempfile.NamedTemporaryFile(
                "w",
                encoding="utf-8",
                dir=path.parent,
                prefix=f".{key[:8]}.",
                suffix=".tmp",
                delete=False,
            )
            with handle:
                handle.write(payload)
            os.replace(handle.name, path)
        except OSError:
            # A read-only or full cache directory degrades to memory-only.
            registry.inc("cache.lint.write_errors")

    def clear(self) -> int:
        """Drop every entry (both tiers); returns entries removed on disk."""
        with self._lock:
            self._memory.clear()
        removed = 0
        if self.directory is None or not self.directory.is_dir():
            return removed
        for shard in sorted(self.directory.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.glob("*.json")):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:  # pragma: no cover - concurrent removal
                    pass
        return removed

    # -- internals ---------------------------------------------------------

    def _remember(self, key: str, rows: list[dict]) -> None:
        with self._lock:
            self._memory[key] = rows
            self._memory.move_to_end(key)
            while len(self._memory) > self.memory_entries:
                self._memory.popitem(last=False)
                get_registry().inc("cache.lint.evictions")

    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / key[:2] / f"{key}.json"

    def _load(self, key: str) -> Optional[list[dict]]:
        if self.directory is None:
            return None
        path = self._path(key)
        try:
            payload = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            data = json.loads(payload)
        except ValueError:
            get_registry().inc("cache.lint.corrupt")
            return None
        if (
            not isinstance(data, dict)
            or data.get("version") != FORMAT_VERSION
            or not isinstance(data.get("diagnostics"), list)
        ):
            get_registry().inc("cache.lint.corrupt")
            return None
        return data["diagnostics"]
