"""The ``Weblint`` class -- the paper's embeddable module.

Paper section 5.4:

    use Weblint;
    $weblint = Weblint->new();
    $weblint->check_file($filename);

    "In addition to the check_file method above, it provides check_string
    and check_url methods.  The latter requires the LWP modules ..."

The Python equivalent::

    from repro import Weblint
    weblint = Weblint()
    diagnostics = weblint.check_file("test.html")

``Weblint`` keeps the paper's one-document-at-a-time, raise-on-failure
shape; internally it is a thin facade over
:class:`repro.core.service.LintService`, which owns the batch pipeline
that every front end (CLI, site checker, gateway, robot, harness) now
shares.  ``check_url`` talks to a :class:`repro.www.client.UserAgent`;
by default that agent has no live network (this reproduction substitutes
LWP with an in-memory virtual web -- see DESIGN.md section 4), so
callers pass an agent bound to a :class:`repro.www.virtualweb.VirtualWeb`
or any object with a compatible ``get`` method.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Union

from repro.config.options import Options
from repro.core.diagnostics import Diagnostic, count_by_category
from repro.core.messages import Category
from repro.core.registry import RuleRegistry
from repro.core.reporter import LintReporter, Reporter, ShortReporter
from repro.core.rules.base import Rule
from repro.core.service import (
    LintService,
    PathSource,
    StringSource,
    URLSource,
)
from repro.html.spec import HTMLSpec


class WeblintError(Exception):
    """A document could not be checked (missing file, bad URL...)."""


class Weblint:
    """HTML checker facade: configuration + engine + reporting."""

    def __init__(
        self,
        options: Optional[Options] = None,
        spec: Optional[Union[str, HTMLSpec]] = None,
        rules: Optional[Sequence[Rule]] = None,
        reporter: Optional[Reporter] = None,
        cascade_heuristics: bool = True,
        registry: Optional[RuleRegistry] = None,
        naive_dispatch: bool = False,
    ) -> None:
        self.service = LintService(
            options=options,
            spec=spec,
            rules=rules,
            registry=registry,
            cascade_heuristics=cascade_heuristics,
            naive_dispatch=naive_dispatch,
        )
        self.options = self.service.options
        self.spec = self.service.spec
        self.registry = registry
        self._engine = self.service.engine
        if reporter is None:
            reporter = ShortReporter() if self.options.short_format else LintReporter()
        self.reporter = reporter

    # -- checking -----------------------------------------------------------------

    def check_string(self, source: str, filename: str = "-") -> list[Diagnostic]:
        """Check HTML given as a string."""
        return self.service.check(StringSource(source, name=filename)).diagnostics

    def check_file(self, path: Union[str, Path]) -> list[Diagnostic]:
        """Check one HTML file on disk."""
        result = self.service.check(PathSource(path))
        if result.error is not None:
            raise WeblintError(result.error)
        return result.diagnostics

    def check_url(self, url: str, agent=None) -> list[Diagnostic]:
        """Fetch a URL with ``agent`` and check the response body.

        ``agent`` is any object with ``get(url) -> response`` where the
        response has ``status``, ``body`` and ``url`` attributes --
        normally a :class:`repro.www.client.UserAgent`.
        """
        result = self.service.check(URLSource(url, agent=agent))
        if result.error is not None:
            raise WeblintError(result.error)
        return result.diagnostics

    # -- reporting ---------------------------------------------------------------------

    def report(self, diagnostics: Sequence[Diagnostic], stream=None) -> str:
        """Format diagnostics with the configured reporter."""
        return self.reporter.report(diagnostics, stream=stream)

    def run_file(self, path: Union[str, Path], stream=None) -> list[Diagnostic]:
        """check_file + report in one call (what the script does)."""
        diagnostics = self.check_file(path)
        self.report(diagnostics, stream=stream)
        return diagnostics

    # -- small conveniences --------------------------------------------------------------

    @staticmethod
    def counts(diagnostics: Sequence[Diagnostic]) -> dict[str, int]:
        """Count diagnostics per category name."""
        return count_by_category(diagnostics)

    @staticmethod
    def worst_category(diagnostics: Sequence[Diagnostic]) -> Optional[Category]:
        for category in (Category.ERROR, Category.WARNING, Category.STYLE):
            if any(d.category is category for d in diagnostics):
                return category
        return None
