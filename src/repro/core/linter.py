"""The ``Weblint`` class -- the paper's embeddable module.

Paper section 5.4:

    use Weblint;
    $weblint = Weblint->new();
    $weblint->check_file($filename);

    "In addition to the check_file method above, it provides check_string
    and check_url methods.  The latter requires the LWP modules ..."

The Python equivalent::

    from repro import Weblint
    weblint = Weblint()
    diagnostics = weblint.check_file("test.html")

``check_url`` talks to a :class:`repro.www.client.UserAgent`; by default
that agent has no live network (this reproduction substitutes LWP with an
in-memory virtual web -- see DESIGN.md section 4), so callers pass an
agent bound to a :class:`repro.www.virtualweb.VirtualWeb` or any object
with a compatible ``get`` method.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.config.options import Options
from repro.core.diagnostics import Diagnostic
from repro.core.engine import Engine
from repro.core.messages import Category
from repro.core.registry import RuleRegistry
from repro.core.reporter import LintReporter, Reporter, ShortReporter
from repro.core.rules.base import Rule
from repro.html.spec import HTMLSpec, get_spec
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer


class WeblintError(Exception):
    """A document could not be checked (missing file, bad URL...)."""


class Weblint:
    """HTML checker facade: configuration + engine + reporting."""

    def __init__(
        self,
        options: Optional[Options] = None,
        spec: Optional[Union[str, HTMLSpec]] = None,
        rules: Optional[Sequence[Rule]] = None,
        reporter: Optional[Reporter] = None,
        cascade_heuristics: bool = True,
        registry: Optional[RuleRegistry] = None,
        naive_dispatch: bool = False,
    ) -> None:
        self.options = options if options is not None else Options.with_defaults()
        if isinstance(spec, str):
            spec = get_spec(spec)
        self.spec = spec if spec is not None else get_spec(self.options.spec_name)
        self.registry = registry
        if rules is None and registry is not None:
            rules = registry.rules()
        self._engine = Engine(
            spec=self.spec,
            options=self.options,
            rules=rules,
            cascade_heuristics=cascade_heuristics,
            naive_dispatch=naive_dispatch,
        )
        if reporter is None:
            reporter = ShortReporter() if self.options.short_format else LintReporter()
        self.reporter = reporter

    # -- checking -----------------------------------------------------------------

    def check_string(self, source: str, filename: str = "-") -> list[Diagnostic]:
        """Check HTML given as a string."""
        start = time.perf_counter()
        with get_tracer().span("lint.file", file=filename):
            context = self._engine.check(source, filename)
        diagnostics = context.sorted_diagnostics()
        registry = get_registry()
        registry.inc("lint.files")
        registry.observe("lint.check_ms", (time.perf_counter() - start) * 1000.0)
        for diagnostic in diagnostics:
            registry.inc(f"lint.diagnostics.{diagnostic.category.value}")
        return diagnostics

    def check_file(self, path: Union[str, Path]) -> list[Diagnostic]:
        """Check one HTML file on disk."""
        path = Path(path)
        try:
            source = path.read_text(encoding="utf-8", errors="replace")
        except OSError as exc:
            raise WeblintError(f"cannot read {path}: {exc}") from exc
        return self.check_string(source, filename=str(path))

    def check_url(self, url: str, agent=None) -> list[Diagnostic]:
        """Fetch a URL with ``agent`` and check the response body.

        ``agent`` is any object with ``get(url) -> response`` where the
        response has ``status``, ``body`` and ``url`` attributes --
        normally a :class:`repro.www.client.UserAgent`.
        """
        if agent is None:
            # Imported lazily: the www substrate mirrors the paper's
            # optional LWP dependency.
            from repro.www.client import UserAgent

            agent = UserAgent()
        response = agent.get(url)
        if not response.ok:
            raise WeblintError(f"cannot fetch {url}: {response.status} {response.reason}")
        return self.check_string(response.body, filename=response.url)

    # -- reporting ---------------------------------------------------------------------

    def report(self, diagnostics: Sequence[Diagnostic], stream=None) -> str:
        """Format diagnostics with the configured reporter."""
        return self.reporter.report(diagnostics, stream=stream)

    def run_file(self, path: Union[str, Path], stream=None) -> list[Diagnostic]:
        """check_file + report in one call (what the script does)."""
        diagnostics = self.check_file(path)
        self.report(diagnostics, stream=stream)
        return diagnostics

    # -- small conveniences --------------------------------------------------------------

    @staticmethod
    def counts(diagnostics: Sequence[Diagnostic]) -> dict[str, int]:
        """Count diagnostics per category name."""
        result = {category.value: 0 for category in Category}
        for diagnostic in diagnostics:
            result[diagnostic.category.value] += 1
        return result

    @staticmethod
    def worst_category(diagnostics: Sequence[Diagnostic]) -> Optional[Category]:
        for category in (Category.ERROR, Category.WARNING, Category.STYLE):
            if any(d.category is category for d in diagnostics):
                return category
        return None
