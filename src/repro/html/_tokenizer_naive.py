"""The pre-batching, character-at-a-time tokenizer, kept as a comparator.

This is the scanner :mod:`repro.html.tokenizer` shipped before the
batched rewrite, frozen verbatim (minus metrics recording).  It exists
for exactly one reason: the corpus-wide golden equivalence test
(``tests/test_tokenizer_equivalence.py``) and the before/after E21
benchmark (``benchmarks/test_e21_tokenizer.py``) hold the batched
scanner to *token-identical* output -- same kinds, names, attributes,
raw slices, 1-based positions, lexical issues and entity records -- on
every corpus document.  The same pattern as
:func:`repro.core.dispatch.compile_table`'s ``naive=True`` mode: the
slow implementation survives as the behaviour oracle, never as a
production path.

Do not fix or improve this module.  If the batched tokenizer's
behaviour must change, change it there, update the golden test's
expectations deliberately, and mirror the change here only to keep the
oracle honest.  Once a release has soaked, this module can be deleted
along with the equivalence test's naive half.
"""

from __future__ import annotations

from typing import Iterator

from repro.html import entities
from repro.html.tokenizer import RAW_TEXT_ELEMENTS
from repro.html.tokens import (
    Attribute,
    Comment,
    Declaration,
    EndTag,
    LexicalIssue,
    ProcessingInstruction,
    StartTag,
    Text,
    Token,
)

_NAME_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ")
_NAME_CHARS = _NAME_START | frozenset("0123456789-._:")
_WHITESPACE = frozenset(" \t\r\n\f")


class NaiveTokenizer:
    """Tokenize one HTML document, advancing one character run at a time.

    Scan state (position, line, column) is tracked incrementally by
    :meth:`_advance`; a fresh instance is used per document.
    """

    def __init__(self, source: str) -> None:
        self.source = source
        self.length = len(source)
        self.pos = 0
        self.line = 1
        self.column = 1
        self._tokens: list[Token] = []

    # -- public API --------------------------------------------------------

    def tokenize(self) -> list[Token]:
        """Scan the whole document and return its tokens."""
        return list(self.iter_tokens())

    def iter_tokens(self) -> Iterator[Token]:
        """Stream tokens as they are scanned.

        Unlike the production tokenizer this records no metrics: the
        comparator must not pollute ``tokenizer.*`` counters when the
        golden test runs both scanners over the same corpus.
        """
        pending = self._tokens
        while self.pos < self.length:
            if self.source[self.pos] == "<":
                self._scan_angle()
            else:
                self._scan_text()
            if pending:
                yield from tuple(pending)
                pending.clear()

    # -- position helpers ---------------------------------------------------

    def _advance(self, count: int) -> None:
        """Move the cursor forward, updating line/column bookkeeping."""
        end = min(self.pos + count, self.length)
        chunk = self.source[self.pos : end]
        newlines = chunk.count("\n")
        if newlines:
            self.line += newlines
            self.column = len(chunk) - chunk.rfind("\n")
        else:
            self.column += len(chunk)
        self.pos = end

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < self.length else ""

    def _mark(self) -> tuple[int, int, int]:
        return self.pos, self.line, self.column

    # -- text ---------------------------------------------------------------

    def _scan_text(self) -> None:
        start, line, column = self._mark()
        next_lt = self.source.find("<", self.pos)
        if next_lt == -1:
            next_lt = self.length
        self._advance(next_lt - self.pos)
        raw = self.source[start : self.pos]
        self._emit_text(raw, line, column)

    def _emit_text(self, raw: str, line: int, column: int) -> None:
        if not raw:
            return
        token = Text(line=line, column=column, raw=raw, text=raw)
        if ">" in raw:
            token.add_issue(LexicalIssue.BARE_GT_IN_TEXT)
        self._record_entities(token, raw, line, column)
        self._tokens.append(token)

    def _record_entities(self, token: Text, raw: str, line: int, column: int) -> None:
        for name, offset, known, terminated in entities.find_references(raw):
            prefix = raw[:offset]
            ent_line = line + prefix.count("\n")
            if "\n" in prefix:
                ent_column = len(prefix) - prefix.rfind("\n")
            else:
                ent_column = column + offset
            token.entities.append((name, ent_line, ent_column, known, terminated))
            if not known:
                token.add_issue(LexicalIssue.UNKNOWN_ENTITY)
            if not terminated:
                token.add_issue(LexicalIssue.UNTERMINATED_ENTITY)

    # -- dispatch on '<' ------------------------------------------------------

    def _scan_angle(self) -> None:
        nxt = self._peek(1)
        if nxt == "!":
            if self.source.startswith("<!--", self.pos):
                self._scan_comment()
            else:
                self._scan_declaration()
        elif nxt == "?":
            self._scan_pi()
        elif nxt == "/":
            self._scan_end_tag()
        elif nxt in _NAME_START:
            self._scan_start_tag(leading_ws=False)
        elif nxt in _WHITESPACE and self._lookahead_tag_after_ws():
            self._scan_start_tag(leading_ws=True)
        elif nxt == ">":
            # "<>" -- an empty tag; classic weblint reports it.
            start, line, column = self._mark()
            self._advance(2)
            token = Text(line=line, column=column, raw="<>", text="<>")
            token.add_issue(LexicalIssue.EMPTY_TAG)
            self._tokens.append(token)
        else:
            # A '<' that cannot start markup: literal metacharacter.
            start, line, column = self._mark()
            self._advance(1)
            token = Text(line=line, column=column, raw="<", text="<")
            token.add_issue(LexicalIssue.BARE_LT_IN_TEXT)
            self._tokens.append(token)

    def _lookahead_tag_after_ws(self) -> bool:
        """True if ``<   name`` follows -- tag with leading whitespace."""
        index = self.pos + 1
        while index < self.length and self.source[index] in _WHITESPACE:
            index += 1
        return index < self.length and self.source[index] in _NAME_START

    # -- comments, declarations, PIs -----------------------------------------

    def _scan_comment(self) -> None:
        start, line, column = self._mark()
        end = self.source.find("-->", self.pos + 4)
        if end == -1:
            body = self.source[self.pos + 4 :]
            self._advance(self.length - self.pos)
            token = Comment(line=line, column=column, raw=self.source[start:], text=body)
            token.add_issue(LexicalIssue.UNTERMINATED_COMMENT)
        else:
            body = self.source[self.pos + 4 : end]
            self._advance(end + 3 - self.pos)
            raw = self.source[start : self.pos]
            token = Comment(line=line, column=column, raw=raw, text=body)
        if "<!--" in body:
            token.add_issue(LexicalIssue.NESTED_COMMENT)
        if _looks_like_markup(body):
            token.add_issue(LexicalIssue.MARKUP_IN_COMMENT)
        self._tokens.append(token)

    def _scan_declaration(self) -> None:
        start, line, column = self._mark()
        end = self.source.find(">", self.pos)
        if end == -1:
            end = self.length
            unterminated = True
        else:
            unterminated = False
        body = self.source[self.pos + 2 : end]
        self._advance(min(end + 1, self.length) - self.pos)
        raw = self.source[start : self.pos]
        token = Declaration(line=line, column=column, raw=raw, text=body)
        if unterminated:
            token.add_issue(LexicalIssue.UNCLOSED_TAG)
        if not body.strip():
            token.add_issue(LexicalIssue.MALFORMED_DECLARATION)
        self._tokens.append(token)

    def _scan_pi(self) -> None:
        start, line, column = self._mark()
        end = self.source.find(">", self.pos)
        if end == -1:
            end = self.length
        body = self.source[self.pos + 2 : end]
        self._advance(min(end + 1, self.length) - self.pos)
        raw = self.source[start : self.pos]
        self._tokens.append(
            ProcessingInstruction(line=line, column=column, raw=raw, text=body)
        )

    # -- end tags ---------------------------------------------------------------

    def _scan_end_tag(self) -> None:
        start, line, column = self._mark()
        self._advance(2)  # '</'
        name = self._scan_name()
        issues: list[LexicalIssue] = []
        # Skip anything up to '>', noting attribute-like junk.
        junk_start = self.pos
        end = self.source.find(">", self.pos)
        if end == -1:
            self._advance(self.length - self.pos)
            issues.append(LexicalIssue.UNCLOSED_TAG)
        else:
            junk = self.source[junk_start:end]
            if junk.strip():
                issues.append(LexicalIssue.ATTRIBUTES_IN_END_TAG)
            self._advance(end + 1 - self.pos)
        raw = self.source[start : self.pos]
        token = EndTag(line=line, column=column, raw=raw, name=name)
        for issue in issues:
            token.add_issue(issue)
        self._tokens.append(token)

    # -- start tags ---------------------------------------------------------------

    def _scan_start_tag(self, leading_ws: bool) -> None:
        start, line, column = self._mark()
        self._advance(1)  # '<'
        if leading_ws:
            self._skip_whitespace()
        name = self._scan_name()
        token = StartTag(line=line, column=column, raw="", name=name)
        if leading_ws:
            token.add_issue(LexicalIssue.WHITESPACE_AFTER_LT)
        self._scan_attributes(token)
        token.raw = self.source[start : self.pos]
        self._tokens.append(token)
        if token.lowered in RAW_TEXT_ELEMENTS and not token.self_closing:
            self._scan_raw_text(token.lowered)

    def _skip_whitespace(self) -> None:
        while self.pos < self.length and self.source[self.pos] in _WHITESPACE:
            self._advance(1)

    def _scan_name(self) -> str:
        start = self.pos
        while self.pos < self.length and self.source[self.pos] in _NAME_CHARS:
            self._advance(1)
        return self.source[start : self.pos]

    def _scan_attributes(self, token: StartTag) -> None:
        """Parse attributes until '>' or recovery point."""
        while True:
            self._skip_whitespace()
            if self.pos >= self.length:
                token.add_issue(LexicalIssue.UNCLOSED_TAG)
                return
            char = self.source[self.pos]
            if char == ">":
                self._advance(1)
                return
            if char == "/" and self._peek(1) == ">":
                token.self_closing = True
                self._advance(2)
                return
            if char == "<":
                # New tag starting before this one closed.
                token.add_issue(LexicalIssue.UNCLOSED_TAG)
                return
            if char in _NAME_START:
                self._scan_one_attribute(token)
            else:
                # Junk character inside a tag; skip it rather than loop.
                self._advance(1)

    def _scan_one_attribute(self, token: StartTag) -> None:
        attr_line, attr_column = self.line, self.column
        name = self._scan_name()
        self._skip_whitespace()
        attr = Attribute(name=name, line=attr_line, column=attr_column)
        if self._peek() == "=":
            self._advance(1)
            self._skip_whitespace()
            attr.has_value = True
            self._scan_attribute_value(token, attr)
        token.attributes.append(attr)

    def _scan_attribute_value(self, token: StartTag, attr: Attribute) -> None:
        char = self._peek()
        if char in ('"', "'"):
            attr.quote = char
            if char == "'":
                token.add_issue(LexicalIssue.SINGLE_QUOTED_VALUE)
            close = self.source.find(char, self.pos + 1)
            next_lt = self.source.find("<", self.pos + 1)
            if close != -1 and (next_lt == -1 or close < next_lt):
                # Well-formed quoted value (may legitimately contain '>').
                attr.value = self.source[self.pos + 1 : close]
                self._advance(close + 1 - self.pos)
                return
            # Recovery: closing quote missing before next tag. Treat the
            # value as ending at the first '>' (or the '<').
            token.add_issue(LexicalIssue.ODD_QUOTES)
            stop_candidates = [
                index
                for index in (self.source.find(">", self.pos + 1), next_lt)
                if index != -1
            ]
            stop = min(stop_candidates) if stop_candidates else self.length
            attr.value = self.source[self.pos + 1 : stop]
            self._advance(stop - self.pos)
            return
        # Unquoted value: scan to whitespace or '>'.
        token.add_issue(LexicalIssue.UNQUOTED_VALUE)
        start = self.pos
        while (
            self.pos < self.length
            and self.source[self.pos] not in _WHITESPACE
            and self.source[self.pos] not in (">", "<")
        ):
            self._advance(1)
        attr.value = self.source[start : self.pos]

    # -- raw text (SCRIPT/STYLE/...) ---------------------------------------------

    def _scan_raw_text(self, element: str) -> None:
        """Consume raw content up to ``</element`` without tokenizing it."""
        start, line, column = self._mark()
        lower = self.source.lower()
        needle = "</" + element
        index = lower.find(needle, self.pos)
        if index == -1:
            index = self.length
        self._advance(index - self.pos)
        raw = self.source[start : self.pos]
        if raw:
            token = Text(line=line, column=column, raw=raw, text=raw)
            self._tokens.append(token)


def _looks_like_markup(comment_body: str) -> bool:
    """Heuristic: does a comment body contain commented-out markup?"""
    body = comment_body
    for index, char in enumerate(body):
        if char != "<":
            continue
        nxt = body[index + 1 : index + 2]
        if nxt and (nxt in _NAME_START or nxt == "/"):
            return True
    return False


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source`` with a fresh naive (pre-batching) tokenizer."""
    return NaiveTokenizer(source).tokenize()


def iter_tokens(source: str) -> Iterator[Token]:
    """Stream tokens from ``source`` with a fresh naive tokenizer."""
    return NaiveTokenizer(source).iter_tokens()
