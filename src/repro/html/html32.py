"""HTML 3.2 language definition.

Derived from the HTML 4.0 tables by subtraction: HTML 3.2 lacks the 4.0
structural additions (ABBR, BUTTON, table row groups, frames ...), has no
global ``class``/``id``/``style``/``lang``/``dir`` attributes and no
intrinsic events, and uses the smaller Latin-1 entity set.  A handful of
requirements also differ -- notably ``IMG ALT`` is recommended rather than
required, and ``SCRIPT``/``STYLE`` take no required ``type``.

Checking the same page under ``html32`` and ``html40`` is experiment E11:
markup legal in one version and not the other must be reported
differently.
"""

from __future__ import annotations

from dataclasses import replace

from repro.html import entities
from repro.html.html40 import PHYSICAL_MARKUP, build_html40
from repro.html.spec import AttributeDef, ElementDef, HTMLSpec, register_spec

# Elements introduced after 3.2 (HTML 4.0 only).
POST_32_ELEMENTS = frozenset(
    {
        "abbr",
        "acronym",
        "bdo",
        "button",
        "col",
        "colgroup",
        "del",
        "fieldset",
        "frame",
        "frameset",
        "iframe",
        "ins",
        "label",
        "legend",
        "noframes",
        "noscript",
        "object",
        "optgroup",
        "q",
        "s",
        "span",
        "tbody",
        "tfoot",
        "thead",
    }
)

# Attributes that did not exist before HTML 4.0, dropped wholesale.
POST_32_ATTRIBUTES = frozenset(
    {
        "accept-charset",
        "accesskey",
        "charoff",
        "char",
        "charset",
        "cite",
        "datetime",
        "disabled",
        "for",
        "headers",
        "hreflang",
        "label",
        "longdesc",
        "media",
        "profile",
        "readonly",
        "rules",
        "scheme",
        "scope",
        "summary",
        "tabindex",
        "target",
        "type",  # re-added below where 3.2 had it (OL/UL/LI/INPUT)
        "usemap",
        "valuetype",
        "abbr",
        "axis",
        "frame",
        "defer",
        "event",
        "onfocus",
        "onblur",
        "onselect",
        "onchange",
        "onsubmit",
        "onreset",
        "onload",
        "onunload",
    }
)

# (element, attribute) pairs that *did* exist in 3.2 despite the blanket
# attribute drop above.
KEEP_32 = frozenset(
    {
        ("ol", "type"),
        ("ul", "type"),
        ("li", "type"),
        ("input", "type"),
        ("a", "target"),  # common in 3.2-era documents with frames add-ons
    }
)


def _strip_element(elem: ElementDef) -> ElementDef:
    kept: dict[str, AttributeDef] = {}
    for attr_name, attr in elem.attributes.items():
        if attr_name in POST_32_ATTRIBUTES and (elem.name, attr_name) not in KEEP_32:
            continue
        kept[attr_name] = attr
    allowed_in = elem.allowed_in
    if allowed_in is not None:
        allowed_in = frozenset(allowed_in - POST_32_ELEMENTS) or None
    return ElementDef(
        name=elem.name,
        empty=elem.empty,
        optional_end=elem.optional_end,
        attributes=kept,
        allowed_in=allowed_in,
        excludes=frozenset(elem.excludes - POST_32_ELEMENTS),
        closes=frozenset(elem.closes - POST_32_ELEMENTS),
        deprecated=elem.deprecated,
        obsolete=elem.obsolete,
        replacement=elem.replacement,
        is_block=elem.is_block,
        is_head=elem.is_head,
        once_per_document=elem.once_per_document,
    )


def _adjust_32(elements: dict[str, ElementDef]) -> None:
    """Apply 3.2-specific rule differences."""
    img = elements["img"]
    img.attributes["alt"] = replace(img.attributes["alt"], required=False)
    # 3.2 SCRIPT/STYLE are placeholders with no required type attribute.
    for name in ("script", "style"):
        elem = elements[name]
        if "type" in elem.attributes:
            elem.attributes["type"] = replace(
                elem.attributes["type"], required=False
            )
    # CENTER, FONT et al. are first-class (not deprecated) in 3.2.
    for name in ("center", "font", "basefont", "u", "strike", "dir", "menu",
                 "isindex", "applet"):
        if name in elements:
            elements[name].deprecated = False
            elements[name].replacement = None
    # TR in 3.2 lives directly under TABLE (no row groups).
    elements["tr"].allowed_in = frozenset({"table"})


def build_html32() -> HTMLSpec:
    base = build_html40()
    elements = {
        name: _strip_element(elem)
        for name, elem in base.elements.items()
        if name not in POST_32_ELEMENTS
    }
    _adjust_32(elements)
    physical = {
        phys: logical
        for phys, logical in PHYSICAL_MARKUP.items()
        if phys in elements and logical in elements
    }
    return HTMLSpec(
        name="html32",
        version="HTML 3.2",
        elements=elements,
        global_attributes={},  # no core attrs / events before 4.0
        entities=dict(entities.HTML32_ENTITIES),
        physical_markup=physical,
        doctype_pattern=r"html\s+public",
        description="HTML 3.2 (Wilbur).",
    )


register_spec("html32", build_html32)
register_spec("html3", build_html32)
