"""HTML 4.0 (Transitional) language definition -- ``Weblint::HTML40``.

The default spec weblint 2 checks against (paper section 5.5).  The tables
below cover the full HTML 4.0 Transitional element set: every element, its
content-model class, its attributes with legal-value patterns, legal
context, implicit closes and deprecation status.

A Strict flavour is registered as ``html40-strict``: the same tables minus
the deprecated presentation elements and attributes.
"""

from __future__ import annotations

from repro.html import entities
from repro.html.spec import AttributeDef, ElementDef, HTMLSpec, register_spec

# -- shared value patterns ---------------------------------------------------

COLOR = (
    r"#[0-9a-fA-F]{6}"
    r"|aqua|black|blue|fuchsia|gray|green|lime|maroon"
    r"|navy|olive|purple|red|silver|teal|white|yellow"
)
NUMBER = r"[0-9]+"
LENGTH = r"[0-9]+%?"
MULTI_LENGTH = r"[0-9]+%?|[0-9]*\*"
MULTI_LENGTHS = rf"(?:{MULTI_LENGTH})(?:\s*,\s*(?:{MULTI_LENGTH}))*"
CHARSET = r"[A-Za-z][A-Za-z0-9._:-]*"
LANGCODE = r"[A-Za-z]{1,8}(?:-[A-Za-z0-9]{1,8})*"
ALIGN_CELL = r"left|center|right|justify|char"
VALIGN = r"top|middle|bottom|baseline"
ALIGN_IMG = r"top|middle|bottom|left|right"
ALIGN_PARA = r"left|center|right|justify"
ALIGN_CAPTION = r"top|bottom|left|right"
ALIGN_LEGEND = r"top|bottom|left|right"
ALIGN_HR = r"left|center|right"
ALIGN_TABLE = r"left|center|right"
ALIGN_DIV = r"left|center|right|justify"
SHAPE = r"rect|circle|poly|default"
CLEAR = r"left|all|right|none"
INPUT_TYPE = (
    r"text|password|checkbox|radio|submit|reset|file|hidden|image|button"
)
BUTTON_TYPE = r"button|submit|reset"
METHOD = r"get|post"
DIRECTION = r"ltr|rtl"
SCROLLING = r"yes|no|auto"
FRAMEBORDER = r"1|0"
TFRAME = r"void|above|below|hsides|lhs|rhs|vsides|box|border"
TRULES = r"none|groups|rows|cols|all"
SCOPE = r"row|col|rowgroup|colgroup"
OL_TYPE = r"1|a|A|i|I"
UL_TYPE = r"disc|square|circle"
LI_TYPE = r"1|a|A|i|I|disc|square|circle"
VALUETYPE = r"data|ref|object"
TABINDEX = NUMBER
COORDS = r"-?[0-9]+%?(?:\s*,\s*-?[0-9]+%?)*"


def _attr(
    name: str,
    pattern: str | None = None,
    *,
    required: bool = False,
    deprecated: bool = False,
    boolean: bool = False,
) -> AttributeDef:
    return AttributeDef(
        name=name.lower(),
        pattern=pattern,
        required=required,
        deprecated=deprecated,
        boolean=boolean,
    )


def _attrs(*defs: AttributeDef) -> dict[str, AttributeDef]:
    return {d.name: d for d in defs}


# Intrinsic events shared by most elements (HTML 4.0 section 18.2.3).
EVENT_NAMES = (
    "onclick",
    "ondblclick",
    "onmousedown",
    "onmouseup",
    "onmouseover",
    "onmousemove",
    "onmouseout",
    "onkeypress",
    "onkeydown",
    "onkeyup",
)

GLOBAL_ATTRIBUTES = _attrs(
    _attr("id"),
    _attr("class"),
    _attr("style"),
    _attr("title"),
    _attr("lang", LANGCODE),
    _attr("dir", DIRECTION),
    *(_attr(event) for event in EVENT_NAMES),
)


def _elem(
    name: str,
    *defs: AttributeDef,
    empty: bool = False,
    opt: bool = False,
    allowed_in: tuple[str, ...] | None = None,
    excludes: tuple[str, ...] = (),
    closes: tuple[str, ...] = (),
    deprecated: bool = False,
    replacement: str | None = None,
    block: bool = False,
    head: bool = False,
    once: bool = False,
) -> ElementDef:
    return ElementDef(
        name=name,
        empty=empty,
        optional_end=opt,
        attributes=_attrs(*defs),
        allowed_in=frozenset(allowed_in) if allowed_in is not None else None,
        excludes=frozenset(excludes),
        closes=frozenset(closes),
        deprecated=deprecated,
        replacement=replacement,
        is_block=block,
        is_head=head,
        once_per_document=once,
    )


# Block-level elements implicitly close an open P.
_P = ("p",)

_CELLHALIGN = (
    _attr("align", ALIGN_CELL),
    _attr("char"),
    _attr("charoff", LENGTH),
    _attr("valign", VALIGN),
)


def _build_elements() -> dict[str, ElementDef]:
    elems = [
        # -- document structure ------------------------------------------------
        _elem(
            "html",
            _attr("version", deprecated=True),
            opt=True,
            allowed_in=None,
            once=True,
        ),
        _elem("head", _attr("profile"), opt=True, allowed_in=("html",), once=True, head=True),
        _elem(
            "body",
            _attr("background", deprecated=True),
            _attr("bgcolor", COLOR, deprecated=True),
            _attr("text", COLOR, deprecated=True),
            _attr("link", COLOR, deprecated=True),
            _attr("vlink", COLOR, deprecated=True),
            _attr("alink", COLOR, deprecated=True),
            _attr("onload"),
            _attr("onunload"),
            opt=True,
            allowed_in=("html", "noframes"),
            once=True,
            block=True,
        ),
        _elem("title", allowed_in=("head",), once=True, head=True),
        _elem(
            "base",
            _attr("href"),
            _attr("target"),
            empty=True,
            allowed_in=("head",),
            head=True,
        ),
        _elem(
            "meta",
            _attr("http-equiv"),
            _attr("name"),
            _attr("content", required=True),
            _attr("scheme"),
            empty=True,
            allowed_in=("head",),
            head=True,
        ),
        _elem(
            "link",
            _attr("charset", CHARSET),
            _attr("href"),
            _attr("hreflang", LANGCODE),
            _attr("type"),
            _attr("rel"),
            _attr("rev"),
            _attr("media"),
            _attr("target"),
            empty=True,
            allowed_in=("head",),
            head=True,
        ),
        _elem(
            "style",
            _attr("type", required=True),
            _attr("media"),
            _attr("title"),
            allowed_in=("head",),
            head=True,
        ),
        _elem(
            "script",
            _attr("charset", CHARSET),
            _attr("type", required=True),
            _attr("language", deprecated=True),
            _attr("src"),
            _attr("defer", boolean=True),
            _attr("event"),
            _attr("for"),
        ),
        _elem("noscript", block=True, closes=_P),
        _elem(
            "isindex",
            _attr("prompt"),
            empty=True,
            deprecated=True,
            replacement="input",
        ),
        # -- frames (transitional/frameset) -------------------------------------
        _elem(
            "frameset",
            _attr("rows", MULTI_LENGTHS),
            _attr("cols", MULTI_LENGTHS),
            _attr("onload"),
            _attr("onunload"),
            allowed_in=("html", "frameset"),
            block=True,
        ),
        _elem(
            "frame",
            _attr("longdesc"),
            _attr("name"),
            _attr("src"),
            _attr("frameborder", FRAMEBORDER),
            _attr("marginwidth", NUMBER),
            _attr("marginheight", NUMBER),
            _attr("noresize", boolean=True),
            _attr("scrolling", SCROLLING),
            empty=True,
            allowed_in=("frameset",),
        ),
        _elem(
            "iframe",
            _attr("longdesc"),
            _attr("name"),
            _attr("src"),
            _attr("frameborder", FRAMEBORDER),
            _attr("marginwidth", NUMBER),
            _attr("marginheight", NUMBER),
            _attr("scrolling", SCROLLING),
            _attr("align", ALIGN_IMG, deprecated=True),
            _attr("height", LENGTH),
            _attr("width", LENGTH),
        ),
        _elem("noframes", block=True, closes=_P),
        # -- headings and text blocks --------------------------------------------
        *(
            _elem(
                f"h{level}",
                _attr("align", ALIGN_PARA, deprecated=True),
                block=True,
                closes=_P,
            )
            for level in range(1, 7)
        ),
        _elem(
            "p",
            _attr("align", ALIGN_PARA, deprecated=True),
            opt=True,
            block=True,
            closes=_P,
        ),
        _elem(
            "div",
            _attr("align", ALIGN_DIV, deprecated=True),
            block=True,
            closes=_P,
        ),
        _elem("center", deprecated=True, replacement="div", block=True, closes=_P),
        _elem("address", block=True, closes=_P),
        _elem("blockquote", _attr("cite"), block=True, closes=_P),
        _elem("q", _attr("cite")),
        _elem(
            "pre",
            _attr("width", NUMBER, deprecated=True),
            excludes=(
                "img",
                "object",
                "applet",
                "big",
                "small",
                "sub",
                "sup",
                "font",
                "basefont",
            ),
            block=True,
            closes=_P,
        ),
        _elem(
            "br",
            _attr("clear", CLEAR, deprecated=True),
            empty=True,
        ),
        _elem(
            "hr",
            _attr("align", ALIGN_HR, deprecated=True),
            _attr("noshade", boolean=True, deprecated=True),
            _attr("size", NUMBER, deprecated=True),
            _attr("width", LENGTH, deprecated=True),
            empty=True,
            block=True,
            closes=_P,
        ),
        _elem("ins", _attr("cite"), _attr("datetime")),
        _elem("del", _attr("cite"), _attr("datetime")),
        # -- lists ------------------------------------------------------------------
        _elem(
            "ul",
            _attr("type", UL_TYPE, deprecated=True),
            _attr("compact", boolean=True, deprecated=True),
            block=True,
            closes=_P,
        ),
        _elem(
            "ol",
            _attr("type", OL_TYPE, deprecated=True),
            _attr("start", NUMBER, deprecated=True),
            _attr("compact", boolean=True, deprecated=True),
            block=True,
            closes=_P,
        ),
        _elem(
            "li",
            _attr("type", LI_TYPE, deprecated=True),
            _attr("value", NUMBER, deprecated=True),
            opt=True,
            allowed_in=("ul", "ol", "dir", "menu"),
            closes=("li",),
        ),
        _elem(
            "dl",
            _attr("compact", boolean=True, deprecated=True),
            block=True,
            closes=_P,
        ),
        _elem("dt", opt=True, allowed_in=("dl",), closes=("dt", "dd")),
        _elem("dd", opt=True, allowed_in=("dl",), closes=("dt", "dd")),
        _elem(
            "dir",
            _attr("compact", boolean=True, deprecated=True),
            deprecated=True,
            replacement="ul",
            block=True,
            closes=_P,
        ),
        _elem(
            "menu",
            _attr("compact", boolean=True, deprecated=True),
            deprecated=True,
            replacement="ul",
            block=True,
            closes=_P,
        ),
        # -- phrase / font markup -------------------------------------------------
        _elem("em"),
        _elem("strong"),
        _elem("dfn"),
        _elem("code"),
        _elem("samp"),
        _elem("kbd"),
        _elem("var"),
        _elem("cite"),
        _elem("abbr"),
        _elem("acronym"),
        _elem("tt"),
        _elem("i"),
        _elem("b"),
        _elem("big"),
        _elem("small"),
        _elem("sub"),
        _elem("sup"),
        _elem("u", deprecated=True),
        _elem("s", deprecated=True, replacement="del"),
        _elem("strike", deprecated=True, replacement="del"),
        _elem(
            "font",
            _attr("size"),
            _attr("color", COLOR),
            _attr("face"),
            deprecated=True,
        ),
        _elem(
            "basefont",
            _attr("size", required=True),
            _attr("color", COLOR),
            _attr("face"),
            empty=True,
            deprecated=True,
        ),
        _elem("bdo", _attr("dir", DIRECTION, required=True)),
        _elem("span"),
        # -- anchors, images, objects --------------------------------------------
        _elem(
            "a",
            _attr("charset", CHARSET),
            _attr("type"),
            _attr("name"),
            _attr("href"),
            _attr("hreflang", LANGCODE),
            _attr("target"),
            _attr("rel"),
            _attr("rev"),
            _attr("accesskey"),
            _attr("shape", SHAPE),
            _attr("coords", COORDS),
            _attr("tabindex", TABINDEX),
            _attr("onfocus"),
            _attr("onblur"),
            excludes=("a",),
        ),
        _elem(
            "img",
            _attr("src", required=True),
            _attr("alt", required=True),
            _attr("longdesc"),
            _attr("name"),
            _attr("height", LENGTH),
            _attr("width", LENGTH),
            _attr("usemap"),
            _attr("ismap", boolean=True),
            _attr("align", ALIGN_IMG, deprecated=True),
            _attr("border", LENGTH, deprecated=True),
            _attr("hspace", NUMBER, deprecated=True),
            _attr("vspace", NUMBER, deprecated=True),
            empty=True,
        ),
        _elem(
            "map",
            _attr("name", required=True),
        ),
        _elem(
            "area",
            _attr("shape", SHAPE),
            _attr("coords", COORDS),
            _attr("href"),
            _attr("nohref", boolean=True),
            _attr("alt", required=True),
            _attr("tabindex", TABINDEX),
            _attr("accesskey"),
            _attr("onfocus"),
            _attr("onblur"),
            _attr("target"),
            empty=True,
            allowed_in=("map",),
        ),
        _elem(
            "object",
            _attr("declare", boolean=True),
            _attr("classid"),
            _attr("codebase"),
            _attr("data"),
            _attr("type"),
            _attr("codetype"),
            _attr("archive"),
            _attr("standby"),
            _attr("height", LENGTH),
            _attr("width", LENGTH),
            _attr("usemap"),
            _attr("name"),
            _attr("tabindex", TABINDEX),
            _attr("align", ALIGN_IMG, deprecated=True),
            _attr("border", LENGTH, deprecated=True),
            _attr("hspace", NUMBER, deprecated=True),
            _attr("vspace", NUMBER, deprecated=True),
        ),
        _elem(
            "param",
            _attr("id"),
            _attr("name", required=True),
            _attr("value"),
            _attr("valuetype", VALUETYPE),
            _attr("type"),
            empty=True,
            allowed_in=("object", "applet"),
        ),
        _elem(
            "applet",
            _attr("codebase"),
            _attr("archive"),
            _attr("code"),
            _attr("object"),
            _attr("alt"),
            _attr("name"),
            _attr("width", LENGTH, required=True),
            _attr("height", LENGTH, required=True),
            _attr("align", ALIGN_IMG),
            _attr("hspace", NUMBER),
            _attr("vspace", NUMBER),
            deprecated=True,
            replacement="object",
        ),
        # -- tables --------------------------------------------------------------
        _elem(
            "table",
            _attr("summary"),
            _attr("width", LENGTH),
            _attr("border", NUMBER),
            _attr("frame", TFRAME),
            _attr("rules", TRULES),
            _attr("cellspacing", LENGTH),
            _attr("cellpadding", LENGTH),
            _attr("align", ALIGN_TABLE, deprecated=True),
            _attr("bgcolor", COLOR, deprecated=True),
            block=True,
            closes=_P,
        ),
        _elem(
            "caption",
            _attr("align", ALIGN_CAPTION, deprecated=True),
            allowed_in=("table",),
        ),
        _elem(
            "colgroup",
            _attr("span", NUMBER),
            _attr("width", MULTI_LENGTH),
            *_CELLHALIGN,
            opt=True,
            allowed_in=("table",),
            closes=("colgroup",),
        ),
        _elem(
            "col",
            _attr("span", NUMBER),
            _attr("width", MULTI_LENGTH),
            *_CELLHALIGN,
            empty=True,
            allowed_in=("table", "colgroup"),
        ),
        _elem(
            "thead",
            *_CELLHALIGN,
            opt=True,
            allowed_in=("table",),
            closes=("colgroup",),
        ),
        _elem(
            "tfoot",
            *_CELLHALIGN,
            opt=True,
            allowed_in=("table",),
            closes=("thead", "tbody", "tr", "td", "th", "colgroup"),
        ),
        _elem(
            "tbody",
            *_CELLHALIGN,
            opt=True,
            allowed_in=("table",),
            closes=("thead", "tfoot", "tbody", "tr", "td", "th", "colgroup"),
        ),
        _elem(
            "tr",
            *_CELLHALIGN,
            _attr("bgcolor", COLOR, deprecated=True),
            opt=True,
            allowed_in=("table", "thead", "tbody", "tfoot"),
            closes=("tr", "td", "th"),
        ),
        _elem(
            "td",
            _attr("abbr"),
            _attr("axis"),
            _attr("headers"),
            _attr("scope", SCOPE),
            _attr("rowspan", NUMBER),
            _attr("colspan", NUMBER),
            *_CELLHALIGN,
            _attr("nowrap", boolean=True, deprecated=True),
            _attr("bgcolor", COLOR, deprecated=True),
            _attr("width", LENGTH, deprecated=True),
            _attr("height", LENGTH, deprecated=True),
            opt=True,
            allowed_in=("tr",),
            closes=("td", "th"),
        ),
        _elem(
            "th",
            _attr("abbr"),
            _attr("axis"),
            _attr("headers"),
            _attr("scope", SCOPE),
            _attr("rowspan", NUMBER),
            _attr("colspan", NUMBER),
            *_CELLHALIGN,
            _attr("nowrap", boolean=True, deprecated=True),
            _attr("bgcolor", COLOR, deprecated=True),
            _attr("width", LENGTH, deprecated=True),
            _attr("height", LENGTH, deprecated=True),
            opt=True,
            allowed_in=("tr",),
            closes=("td", "th"),
        ),
        # -- forms ------------------------------------------------------------------
        _elem(
            "form",
            _attr("action", required=True),
            _attr("method", METHOD),
            _attr("enctype"),
            _attr("accept"),
            _attr("name"),
            _attr("onsubmit"),
            _attr("onreset"),
            _attr("target"),
            _attr("accept-charset"),
            excludes=("form",),
            block=True,
            closes=_P,
        ),
        _elem(
            "input",
            _attr("type", INPUT_TYPE),
            _attr("name"),
            _attr("value"),
            _attr("checked", boolean=True),
            _attr("disabled", boolean=True),
            _attr("readonly", boolean=True),
            _attr("size"),
            _attr("maxlength", NUMBER),
            _attr("src"),
            _attr("alt"),
            _attr("usemap"),
            _attr("ismap", boolean=True),
            _attr("tabindex", TABINDEX),
            _attr("accesskey"),
            _attr("onfocus"),
            _attr("onblur"),
            _attr("onselect"),
            _attr("onchange"),
            _attr("accept"),
            _attr("align", ALIGN_IMG, deprecated=True),
            empty=True,
        ),
        _elem(
            "button",
            _attr("name"),
            _attr("value"),
            _attr("type", BUTTON_TYPE),
            _attr("disabled", boolean=True),
            _attr("tabindex", TABINDEX),
            _attr("accesskey"),
            _attr("onfocus"),
            _attr("onblur"),
            excludes=(
                "a",
                "form",
                "input",
                "select",
                "textarea",
                "label",
                "button",
                "iframe",
                "isindex",
                "fieldset",
            ),
        ),
        _elem(
            "select",
            _attr("name"),
            _attr("size", NUMBER),
            _attr("multiple", boolean=True),
            _attr("disabled", boolean=True),
            _attr("tabindex", TABINDEX),
            _attr("onfocus"),
            _attr("onblur"),
            _attr("onchange"),
        ),
        _elem(
            "optgroup",
            _attr("disabled", boolean=True),
            _attr("label", required=True),
            allowed_in=("select",),
            closes=("option",),
        ),
        _elem(
            "option",
            _attr("selected", boolean=True),
            _attr("disabled", boolean=True),
            _attr("label"),
            _attr("value"),
            opt=True,
            allowed_in=("select", "optgroup"),
            closes=("option",),
        ),
        _elem(
            "textarea",
            _attr("name"),
            _attr("rows", NUMBER, required=True),
            _attr("cols", NUMBER, required=True),
            _attr("disabled", boolean=True),
            _attr("readonly", boolean=True),
            _attr("tabindex", TABINDEX),
            _attr("accesskey"),
            _attr("onfocus"),
            _attr("onblur"),
            _attr("onselect"),
            _attr("onchange"),
        ),
        _elem(
            "label",
            _attr("for"),
            _attr("accesskey"),
            _attr("onfocus"),
            _attr("onblur"),
            excludes=("label",),
        ),
        _elem("fieldset", block=True, closes=_P),
        _elem(
            "legend",
            _attr("accesskey"),
            _attr("align", ALIGN_LEGEND, deprecated=True),
            allowed_in=("fieldset",),
        ),
        # -- obsolete elements kept so the typo-detector and deprecation
        #    messages can name them explicitly --------------------------------------
        _elem("listing", obsolete(True), block=True),
        _elem("xmp", obsolete(True), block=True),
        _elem("plaintext", obsolete(True), block=True),
    ]
    return {e.name: e for e in elems}


def obsolete(flag: bool) -> AttributeDef:
    """Placeholder so obsolete elements read clearly in the table.

    Obsolete elements take no attributes; this returns a harmless unused
    def and the obsolete flag is set below in :func:`_mark_obsolete`.
    """
    return _attr("_obsolete")


def _mark_obsolete(elements: dict[str, ElementDef]) -> None:
    replacements = {"listing": "pre", "xmp": "pre", "plaintext": "pre"}
    for name, replacement in replacements.items():
        elem = elements[name]
        elem.obsolete = True
        elem.deprecated = True
        elem.replacement = replacement
        elem.attributes.pop("_obsolete", None)


PHYSICAL_MARKUP = {
    "b": "strong",
    "i": "em",
    "tt": "code",
    "u": "em",
    "s": "del",
    "strike": "del",
    "big": "strong",
    "small": "em",
}

DOCTYPE_PATTERN = r"html\s+(?:public|system)"


def build_html40() -> HTMLSpec:
    """Build the HTML 4.0 Transitional spec."""
    elements = _build_elements()
    _mark_obsolete(elements)
    return HTMLSpec(
        name="html40",
        version="HTML 4.0 Transitional",
        elements=elements,
        global_attributes=dict(GLOBAL_ATTRIBUTES),
        entities=dict(entities.ENTITIES),
        physical_markup=dict(PHYSICAL_MARKUP),
        doctype_pattern=DOCTYPE_PATTERN,
        description="Default weblint language: HTML 4.0 Transitional.",
    )


STRICT_EXCLUDED_ELEMENTS = frozenset(
    {
        "applet",
        "basefont",
        "center",
        "dir",
        "font",
        "frame",
        "frameset",
        "iframe",
        "isindex",
        "menu",
        "noframes",
        "s",
        "strike",
        "u",
        "listing",
        "xmp",
        "plaintext",
    }
)


def build_html40_strict() -> HTMLSpec:
    """HTML 4.0 Strict: Transitional minus deprecated markup.

    Cross-references (legal contexts, exclusions, implicit closes,
    replacements, physical/logical pairs) are filtered to the surviving
    element set so the strict tables never point at removed elements.
    """
    base = build_html40()
    surviving = set(base.elements) - STRICT_EXCLUDED_ELEMENTS
    elements: dict[str, ElementDef] = {}
    for name, elem in base.elements.items():
        if name in STRICT_EXCLUDED_ELEMENTS:
            continue
        kept = {
            attr_name: attr
            for attr_name, attr in elem.attributes.items()
            if not attr.deprecated
        }
        allowed_in = elem.allowed_in
        if allowed_in is not None:
            allowed_in = frozenset(allowed_in & surviving) or None
        replacement = elem.replacement
        if replacement is not None and replacement not in surviving:
            replacement = None
        elements[name] = ElementDef(
            name=elem.name,
            empty=elem.empty,
            optional_end=elem.optional_end,
            attributes=kept,
            allowed_in=allowed_in,
            excludes=frozenset(elem.excludes & surviving),
            closes=frozenset(elem.closes & surviving),
            deprecated=elem.deprecated,
            obsolete=elem.obsolete,
            replacement=replacement,
            is_block=elem.is_block,
            is_head=elem.is_head,
            once_per_document=elem.once_per_document,
        )
    physical = {
        phys: logical
        for phys, logical in PHYSICAL_MARKUP.items()
        if phys in surviving and logical in surviving
    }
    return HTMLSpec(
        name="html40-strict",
        version="HTML 4.0 Strict",
        elements=elements,
        global_attributes=dict(GLOBAL_ATTRIBUTES),
        entities=dict(entities.ENTITIES),
        physical_markup=physical,
        doctype_pattern=DOCTYPE_PATTERN,
        description="HTML 4.0 Strict: no deprecated elements or attributes.",
    )


register_spec("html40", build_html40)
register_spec("html4", build_html40)
register_spec("html40-strict", build_html40_strict)
