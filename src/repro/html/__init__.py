"""HTML substrate for the weblint reproduction.

This package contains everything weblint needs to know about HTML as a
language, independent of any particular check:

- :mod:`repro.html.tokens` -- the token model produced by the tokenizer.
- :mod:`repro.html.tokenizer` -- the ad-hoc, heuristic tokenizer described
  in section 5.1 of the paper.
- :mod:`repro.html.entities` -- named and numeric character references.
- :mod:`repro.html.spec` -- the :class:`~repro.html.spec.HTMLSpec` tables
  that drive the checker (the ``Weblint::HTML40`` idea).
- :mod:`repro.html.html32` / :mod:`repro.html.html40` /
  :mod:`repro.html.netscape` / :mod:`repro.html.microsoft` -- concrete
  language definitions.
- :mod:`repro.html.dtdgen` -- generate an ``HTMLSpec`` from a (subset)
  SGML DTD, the paper's "driving weblint with a DTD" future-work item.
"""

from repro.html.spec import HTMLSpec, ElementDef, AttributeDef, get_spec, available_specs
from repro.html.tokens import (
    Token,
    TokenKind,
    Attribute,
    StartTag,
    EndTag,
    Text,
    Comment,
    Declaration,
    ProcessingInstruction,
)
from repro.html.tokenizer import Tokenizer, tokenize

__all__ = [
    "HTMLSpec",
    "ElementDef",
    "AttributeDef",
    "get_spec",
    "available_specs",
    "Token",
    "TokenKind",
    "Attribute",
    "StartTag",
    "EndTag",
    "Text",
    "Comment",
    "Declaration",
    "ProcessingInstruction",
    "Tokenizer",
    "tokenize",
]
