"""Character entity references for HTML.

Three tables, mirroring the three entity sets of the HTML 4.0
specification:

- ``LATIN1`` -- ISO 8859-1 characters (``&nbsp;`` ... ``&yuml;``),
  also the set defined by HTML 3.2.
- ``SYMBOLS`` -- mathematical, Greek and symbolic characters.
- ``SPECIAL`` -- markup-significant and internationalisation characters
  (``&lt;``, ``&amp;``, ``&ndash;`` ...).

``ENTITIES`` is the union.  :func:`is_known_entity` also accepts numeric
character references (``&#160;`` and ``&#xA0;``).

Weblint uses these tables for its *unknown entity* warning and for
expanding entities when inspecting text content (e.g. the "click here"
style check should see the text a browser would render).
"""

from __future__ import annotations

import re

# --- HTML 2.0 / 3.2 / 4.0 Latin-1 set -----------------------------------

LATIN1: dict[str, str] = {
    "nbsp": " ", "iexcl": "¡", "cent": "¢", "pound": "£",
    "curren": "¤", "yen": "¥", "brvbar": "¦", "sect": "§",
    "uml": "¨", "copy": "©", "ordf": "ª", "laquo": "«",
    "not": "¬", "shy": "­", "reg": "®", "macr": "¯",
    "deg": "°", "plusmn": "±", "sup2": "²", "sup3": "³",
    "acute": "´", "micro": "µ", "para": "¶", "middot": "·",
    "cedil": "¸", "sup1": "¹", "ordm": "º", "raquo": "»",
    "frac14": "¼", "frac12": "½", "frac34": "¾",
    "iquest": "¿",
    "Agrave": "À", "Aacute": "Á", "Acirc": "Â",
    "Atilde": "Ã", "Auml": "Ä", "Aring": "Å", "AElig": "Æ",
    "Ccedil": "Ç", "Egrave": "È", "Eacute": "É",
    "Ecirc": "Ê", "Euml": "Ë", "Igrave": "Ì",
    "Iacute": "Í", "Icirc": "Î", "Iuml": "Ï", "ETH": "Ð",
    "Ntilde": "Ñ", "Ograve": "Ò", "Oacute": "Ó",
    "Ocirc": "Ô", "Otilde": "Õ", "Ouml": "Ö", "times": "×",
    "Oslash": "Ø", "Ugrave": "Ù", "Uacute": "Ú",
    "Ucirc": "Û", "Uuml": "Ü", "Yacute": "Ý", "THORN": "Þ",
    "szlig": "ß",
    "agrave": "à", "aacute": "á", "acirc": "â",
    "atilde": "ã", "auml": "ä", "aring": "å", "aelig": "æ",
    "ccedil": "ç", "egrave": "è", "eacute": "é",
    "ecirc": "ê", "euml": "ë", "igrave": "ì",
    "iacute": "í", "icirc": "î", "iuml": "ï", "eth": "ð",
    "ntilde": "ñ", "ograve": "ò", "oacute": "ó",
    "ocirc": "ô", "otilde": "õ", "ouml": "ö", "divide": "÷",
    "oslash": "ø", "ugrave": "ù", "uacute": "ú",
    "ucirc": "û", "uuml": "ü", "yacute": "ý", "thorn": "þ",
    "yuml": "ÿ",
}

# --- HTML 4.0 symbol set --------------------------------------------------

SYMBOLS: dict[str, str] = {
    "fnof": "ƒ",
    "Alpha": "Α", "Beta": "Β", "Gamma": "Γ", "Delta": "Δ",
    "Epsilon": "Ε", "Zeta": "Ζ", "Eta": "Η", "Theta": "Θ",
    "Iota": "Ι", "Kappa": "Κ", "Lambda": "Λ", "Mu": "Μ",
    "Nu": "Ν", "Xi": "Ξ", "Omicron": "Ο", "Pi": "Π",
    "Rho": "Ρ", "Sigma": "Σ", "Tau": "Τ", "Upsilon": "Υ",
    "Phi": "Φ", "Chi": "Χ", "Psi": "Ψ", "Omega": "Ω",
    "alpha": "α", "beta": "β", "gamma": "γ", "delta": "δ",
    "epsilon": "ε", "zeta": "ζ", "eta": "η", "theta": "θ",
    "iota": "ι", "kappa": "κ", "lambda": "λ", "mu": "μ",
    "nu": "ν", "xi": "ξ", "omicron": "ο", "pi": "π",
    "rho": "ρ", "sigmaf": "ς", "sigma": "σ", "tau": "τ",
    "upsilon": "υ", "phi": "φ", "chi": "χ", "psi": "ψ",
    "omega": "ω", "thetasym": "ϑ", "upsih": "ϒ",
    "piv": "ϖ",
    "bull": "•", "hellip": "…", "prime": "′", "Prime": "″",
    "oline": "‾", "frasl": "⁄", "weierp": "℘",
    "image": "ℑ", "real": "ℜ", "trade": "™",
    "alefsym": "ℵ",
    "larr": "←", "uarr": "↑", "rarr": "→", "darr": "↓",
    "harr": "↔", "crarr": "↵", "lArr": "⇐", "uArr": "⇑",
    "rArr": "⇒", "dArr": "⇓", "hArr": "⇔",
    "forall": "∀", "part": "∂", "exist": "∃", "empty": "∅",
    "nabla": "∇", "isin": "∈", "notin": "∉", "ni": "∋",
    "prod": "∏", "sum": "∑", "minus": "−", "lowast": "∗",
    "radic": "√", "prop": "∝", "infin": "∞", "ang": "∠",
    "and": "∧", "or": "∨", "cap": "∩", "cup": "∪",
    "int": "∫", "there4": "∴", "sim": "∼", "cong": "≅",
    "asymp": "≈", "ne": "≠", "equiv": "≡", "le": "≤",
    "ge": "≥", "sub": "⊂", "sup": "⊃", "nsub": "⊄",
    "sube": "⊆", "supe": "⊇", "oplus": "⊕", "otimes": "⊗",
    "perp": "⊥", "sdot": "⋅",
    "lceil": "⌈", "rceil": "⌉", "lfloor": "⌊",
    "rfloor": "⌋", "lang": "〈", "rang": "〉",
    "loz": "◊", "spades": "♠", "clubs": "♣",
    "hearts": "♥", "diams": "♦",
}

# --- HTML 4.0 special set -------------------------------------------------

SPECIAL: dict[str, str] = {
    "quot": '"', "amp": "&", "lt": "<", "gt": ">",
    "OElig": "Œ", "oelig": "œ", "Scaron": "Š",
    "scaron": "š", "Yuml": "Ÿ", "circ": "ˆ",
    "tilde": "˜",
    "ensp": " ", "emsp": " ", "thinsp": " ",
    "zwnj": "‌", "zwj": "‍", "lrm": "‎", "rlm": "‏",
    "ndash": "–", "mdash": "—",
    "lsquo": "‘", "rsquo": "’", "sbquo": "‚",
    "ldquo": "“", "rdquo": "”", "bdquo": "„",
    "dagger": "†", "Dagger": "‡", "permil": "‰",
    "lsaquo": "‹", "rsaquo": "›", "euro": "€",
}

ENTITIES: dict[str, str] = {**LATIN1, **SYMBOLS, **SPECIAL}

# Entities present in HTML 2.0/3.2 -- used by the HTML 3.2 spec module to
# flag 4.0-only entities as unknown under the older language version.
HTML32_ENTITIES: dict[str, str] = {**LATIN1, "quot": '"', "amp": "&", "lt": "<", "gt": ">"}

_NUMERIC_RE = re.compile(r"^#(?:[0-9]+|[xX][0-9a-fA-F]+)$")

ENTITY_REF_RE = re.compile(
    r"&(#[0-9]+|#[xX][0-9a-fA-F]+|[A-Za-z][A-Za-z0-9]*)(;?)"
)


def is_known_entity(name: str, known: dict[str, str] | None = None) -> bool:
    """True if ``name`` (without ``&``/``;``) is a known character reference.

    Numeric references are accepted when they decode to a valid code point.
    """
    if _NUMERIC_RE.match(name):
        try:
            decode_numeric(name)
        except ValueError:
            return False
        return True
    table = ENTITIES if known is None else known
    return name in table


def decode_numeric(name: str) -> str:
    """Decode ``#65`` or ``#x41`` to the character it names.

    Raises ``ValueError`` for out-of-range code points.
    """
    if name.startswith(("#x", "#X")):
        codepoint = int(name[2:], 16)
    elif name.startswith("#"):
        codepoint = int(name[1:])
    else:
        raise ValueError(f"not a numeric character reference: {name!r}")
    if not 0 <= codepoint <= 0x10FFFF or 0xD800 <= codepoint <= 0xDFFF:
        raise ValueError(f"code point out of range: {codepoint}")
    return chr(codepoint)


def expand(text: str, known: dict[str, str] | None = None) -> str:
    """Expand character references in ``text``.

    Unknown references are left verbatim, matching lenient browser
    behaviour; weblint inspects rendered-ish text for style checks but
    must never lose information.
    """
    table = ENTITIES if known is None else known

    def _sub(match: re.Match[str]) -> str:
        name = match.group(1)
        if name.startswith("#"):
            try:
                return decode_numeric(name)
            except ValueError:
                return match.group(0)
        return table.get(name, match.group(0))

    return ENTITY_REF_RE.sub(_sub, text)


def find_references(text: str) -> list[tuple[str, int, bool, bool]]:
    """Find entity references in a text run.

    Returns ``(name, offset, known, terminated)`` tuples where ``offset``
    is the character offset of the ``&`` within ``text`` and ``terminated``
    says whether the reference ended with ``;``.
    """
    found: list[tuple[str, int, bool, bool]] = []
    for match in ENTITY_REF_RE.finditer(text):
        name = match.group(1)
        terminated = match.group(2) == ";"
        found.append((name, match.start(), is_known_entity(name), terminated))
    return found
