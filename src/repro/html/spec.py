"""Language tables that drive the checker.

Section 5.5 of the paper: "These modules encapsulate the information which
is needed by weblint when checking against a specific version of HTML ...
The HTML modules are basically sets of tables which are used to drive the
operation of the Weblint module."  The information listed there is exactly
what :class:`HTMLSpec` holds:

- valid elements, and their content model (are they containers?)
- valid attributes, and legal values for attributes (expressed as
  regular expressions)
- legal context for elements

Concrete specs are built by :mod:`repro.html.html32`,
:mod:`repro.html.html40`, :mod:`repro.html.netscape` and
:mod:`repro.html.microsoft`, or generated from a DTD by
:mod:`repro.html.dtdgen`.  Third parties can register their own with
:func:`register_spec`, mirroring the paper's "for third parties to provide
their own definitions".
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(frozen=True)
class AttributeDef:
    """One legal attribute of an element.

    ``pattern`` is an anchored, case-insensitive regular expression the
    value must match; ``None`` means any CDATA value is legal.  ``required``
    marks attributes whose absence is an error (the paper's TEXTAREA
    ROWS/COLS example); ``deprecated`` marks attributes the spec frowns on.
    """

    name: str
    pattern: Optional[str] = None
    required: bool = False
    deprecated: bool = False
    boolean: bool = False

    _compiled: Optional[re.Pattern[str]] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.pattern is not None:
            object.__setattr__(
                self,
                "_compiled",
                re.compile(rf"^(?:{self.pattern})$", re.IGNORECASE),
            )

    def value_ok(self, value: str) -> bool:
        """Does ``value`` satisfy this attribute's legal-value pattern?"""
        if self._compiled is None:
            return True
        return bool(self._compiled.match(value.strip()))


@dataclass
class ElementDef:
    """One element of an HTML version.

    Content-model flags follow weblint's needs rather than full SGML:

    - ``empty`` -- the element has no content and no end tag (BR, IMG).
    - ``optional_end`` -- the end tag may be omitted (P, LI, TD ...).
      Everything that is neither ``empty`` nor ``optional_end`` is a strict
      container whose missing end tag is an error (the paper's ``<A>``
      example).
    - ``allowed_in`` -- legal parent elements; ``None`` means anywhere.
      Used for "element not allowed here" context checks (e.g. LI outside
      a list).
    - ``excludes`` -- elements that may not appear anywhere inside this
      one (e.g. A inside A, FORM inside FORM).
    - ``closes`` -- open elements implicitly terminated when this one
      starts (LI closes LI; TD closes TD and TH ...).
    """

    name: str
    empty: bool = False
    optional_end: bool = False
    attributes: dict[str, AttributeDef] = field(default_factory=dict)
    allowed_in: Optional[frozenset[str]] = None
    excludes: frozenset[str] = frozenset()
    closes: frozenset[str] = frozenset()
    deprecated: bool = False
    obsolete: bool = False
    replacement: Optional[str] = None
    is_block: bool = False
    is_head: bool = False
    once_per_document: bool = False

    @property
    def container(self) -> bool:
        """Does this element take content (hence may need an end tag)?"""
        return not self.empty

    @property
    def strict_container(self) -> bool:
        """Container whose end tag is mandatory."""
        return not self.empty and not self.optional_end

    def required_attributes(self) -> list[str]:
        return [a.name for a in self.attributes.values() if a.required]

    def attribute(self, name: str) -> Optional[AttributeDef]:
        return self.attributes.get(name.lower())


@dataclass
class HTMLSpec:
    """A complete description of one HTML version.

    ``global_attributes`` apply to every element (HTML 4.0 core attrs,
    i18n attrs and intrinsic events).  ``physical_markup`` maps physical
    elements to their logical equivalents for the style check, and
    ``doctype_pattern`` recognises the version's DOCTYPE declarations.
    """

    name: str
    version: str
    elements: dict[str, ElementDef] = field(default_factory=dict)
    global_attributes: dict[str, AttributeDef] = field(default_factory=dict)
    entities: dict[str, str] = field(default_factory=dict)
    physical_markup: dict[str, str] = field(default_factory=dict)
    doctype_pattern: Optional[str] = None
    description: str = ""

    def __post_init__(self) -> None:
        self._doctype_re = (
            re.compile(self.doctype_pattern, re.IGNORECASE)
            if self.doctype_pattern
            else None
        )

    # -- element queries ----------------------------------------------------

    def element(self, name: str) -> Optional[ElementDef]:
        return self.elements.get(name.lower())

    def is_known(self, name: str) -> bool:
        return name.lower() in self.elements

    def is_empty(self, name: str) -> bool:
        elem = self.element(name)
        return bool(elem and elem.empty)

    def is_container(self, name: str) -> bool:
        elem = self.element(name)
        return bool(elem and elem.container)

    def end_tag_required(self, name: str) -> bool:
        elem = self.element(name)
        return bool(elem and elem.strict_container)

    def end_tag_legal(self, name: str) -> bool:
        """May ``</name>`` appear at all?"""
        elem = self.element(name)
        return bool(elem and elem.container)

    # -- attribute queries ---------------------------------------------------

    def attribute_def(self, element_name: str, attr_name: str) -> Optional[AttributeDef]:
        """Look up an attribute on an element, falling back to globals."""
        elem = self.element(element_name)
        attr_name = attr_name.lower()
        if elem is not None:
            found = elem.attribute(attr_name)
            if found is not None:
                return found
        return self.global_attributes.get(attr_name)

    def attribute_allowed(self, element_name: str, attr_name: str) -> bool:
        return self.attribute_def(element_name, attr_name) is not None

    def attribute_value_ok(
        self, element_name: str, attr_name: str, value: str
    ) -> bool:
        attr = self.attribute_def(element_name, attr_name)
        if attr is None:
            return True  # unknown attribute reported separately
        return attr.value_ok(value)

    # -- document-level queries ------------------------------------------------

    def doctype_matches(self, declaration_text: str) -> bool:
        """Does a DOCTYPE declaration name this (or any known) HTML version?"""
        if self._doctype_re is None:
            return True
        return bool(self._doctype_re.search(declaration_text))

    def known_element_names(self) -> list[str]:
        return sorted(self.elements)

    def suggest_element(self, name: str) -> Optional[str]:
        """Suggest a known element for a probable typo (BLOCKQOUTE).

        Uses a small edit-distance scan; returns the closest known element
        within distance 2, preferring shorter distances.
        """
        name = name.lower()
        best: Optional[str] = None
        best_distance = 3
        for candidate in self.elements:
            if abs(len(candidate) - len(name)) >= best_distance:
                continue
            distance = _edit_distance(name, candidate, best_distance)
            if distance < best_distance:
                best, best_distance = candidate, distance
        return best


def _edit_distance(a: str, b: str, cutoff: int) -> int:
    """Damerau-Levenshtein distance with a cutoff (small strings only)."""
    if a == b:
        return 0
    previous2: list[int] = []
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            best = min(
                previous[j] + 1,       # deletion
                current[j - 1] + 1,    # insertion
                previous[j - 1] + cost,  # substitution
            )
            if (
                i > 1
                and j > 1
                and ca == b[j - 2]
                and a[i - 2] == cb
            ):
                best = min(best, previous2[j - 2] + cost)  # transposition
            current.append(best)
        if min(current) > cutoff:
            return cutoff + 1
        previous2, previous = previous, current
    return previous[len(b)]


# -- spec registry -------------------------------------------------------------

_REGISTRY: dict[str, Callable[[], HTMLSpec]] = {}
_CACHE: dict[str, HTMLSpec] = {}


def register_spec(name: str, factory: Callable[[], HTMLSpec]) -> None:
    """Register a spec factory under ``name`` (case-insensitive).

    Factories are lazy so that importing :mod:`repro.html` stays cheap.
    """
    _REGISTRY[name.lower()] = factory


def get_spec(name: str) -> HTMLSpec:
    """Fetch a registered spec by name (e.g. ``"html40"``, ``"netscape"``)."""
    key = name.lower()
    if key not in _CACHE:
        if key not in _REGISTRY:
            _ensure_builtin_registered()
        if key not in _REGISTRY:
            raise KeyError(
                f"unknown HTML spec {name!r}; available: {', '.join(available_specs())}"
            )
        _CACHE[key] = _REGISTRY[key]()
    return _CACHE[key]


def available_specs() -> list[str]:
    _ensure_builtin_registered()
    return sorted(_REGISTRY)


def _ensure_builtin_registered() -> None:
    # Imported here to avoid a cycle: the builtin modules import spec.
    import repro.html.html20  # noqa: F401
    import repro.html.html32  # noqa: F401
    import repro.html.html40  # noqa: F401
    import repro.html.microsoft  # noqa: F401
    import repro.html.netscape  # noqa: F401
