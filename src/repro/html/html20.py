"""HTML 2.0 (RFC 1866) language definition.

The vintage weblint 1 grew up on.  Derived from HTML 3.2 by subtraction:
no tables, no applets, no FONT/CENTER presentation markup, no image
alignment extensions -- but with the 2.0-era elements (XMP, LISTING) as
first-class citizens rather than obsolete ones, since RFC 1866 still
defined them (deprecated but legal).

Useful both as a checking target for very old documents and as the
far end of the E11 version-sweep.
"""

from __future__ import annotations

from repro.html import entities
from repro.html.html32 import build_html32
from repro.html.spec import AttributeDef, ElementDef, HTMLSpec, register_spec

#: Elements introduced after HTML 2.0.
POST_20_ELEMENTS = frozenset(
    {
        "applet", "area", "basefont", "big", "caption", "center",
        "div", "font", "map", "param", "script", "small", "strike",
        "style", "sub", "sup", "table", "td", "th", "tr", "u",
    }
)

#: Attributes introduced after HTML 2.0, removed wholesale.
POST_20_ATTRIBUTES = frozenset(
    {
        "align", "alink", "background", "bgcolor", "border", "color",
        "compact", "height", "hspace", "link", "noshade", "nowrap",
        "prompt", "size", "start", "target", "text", "type", "usemap",
        "vlink", "vspace", "width", "clear", "face",
    }
)

#: (element, attribute) pairs HTML 2.0 did define despite the list above.
KEEP_20 = frozenset(
    {
        ("dl", "compact"),
        ("ol", "compact"),
        ("ul", "compact"),
        ("dir", "compact"),
        ("menu", "compact"),
        ("isindex", "prompt"),
        ("img", "align"),
        ("input", "type"),
        ("input", "size"),
        ("select", "size"),
        ("pre", "width"),
    }
)


def _strip(elem: ElementDef) -> ElementDef:
    kept: dict[str, AttributeDef] = {
        name: attr
        for name, attr in elem.attributes.items()
        if name not in POST_20_ATTRIBUTES or (elem.name, name) in KEEP_20
    }
    allowed_in = elem.allowed_in
    if allowed_in is not None:
        allowed_in = frozenset(allowed_in - POST_20_ELEMENTS) or None
    return ElementDef(
        name=elem.name,
        empty=elem.empty,
        optional_end=elem.optional_end,
        attributes=kept,
        allowed_in=allowed_in,
        excludes=frozenset(elem.excludes - POST_20_ELEMENTS),
        closes=frozenset(elem.closes - POST_20_ELEMENTS),
        deprecated=elem.deprecated,
        obsolete=elem.obsolete,
        replacement=elem.replacement,
        is_block=elem.is_block,
        is_head=elem.is_head,
        once_per_document=elem.once_per_document,
    )


def build_html20() -> HTMLSpec:
    base = build_html32()
    elements = {
        name: _strip(elem)
        for name, elem in base.elements.items()
        if name not in POST_20_ELEMENTS
    }
    # XMP and LISTING are deprecated-but-defined in RFC 1866, not obsolete.
    for name in ("xmp", "listing"):
        if name in elements:
            elements[name].obsolete = False
            elements[name].deprecated = True
            elements[name].replacement = "pre"
    # IMG ALT existed from the start, advisory as in 3.2 (handled by the
    # img-alt message, not required-attribute).
    return HTMLSpec(
        name="html20",
        version="HTML 2.0 (RFC 1866)",
        elements=elements,
        global_attributes={},
        entities=dict(entities.HTML32_ENTITIES),
        physical_markup={
            phys: logical
            for phys, logical in base.physical_markup.items()
            if phys in elements and logical in elements
        },
        doctype_pattern=r"html\s+public",
        description="HTML 2.0 (RFC 1866), the vintage weblint 1 grew up on.",
    )


register_spec("html20", build_html20)
register_spec("html2", build_html20)
