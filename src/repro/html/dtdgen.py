"""Generate an :class:`HTMLSpec` from an SGML DTD subset.

Paper section 6.1 (future plans): "Driving weblint with a DTD: generating
the HTML modules used by weblint, and test-cases for the test-suite."
And section 5.5: "At the moment the tables are not generated from DTDs,
though this is something I plan to investigate further."

This module implements that plan for the DTD subset HTML actually uses:

- parameter entities (``<!ENTITY % heading "H1|H2|...">``) with ``%name;``
  expansion;
- element declarations with SGML tag minimisation
  (``<!ELEMENT P - O (%inline;)*>``: the two dashes/Os say whether the
  start and end tag may be omitted) and the ``EMPTY`` content keyword;
- attribute list declarations with CDATA / NUMBER / ID / enumerated
  types and ``#REQUIRED`` / ``#IMPLIED`` / default-value defaults.

As the paper anticipates, some weblint knowledge cannot come from a DTD
(deprecation advice, physical-vs-logical pairs, once-per-document); a
generated spec carries only what the DTD states.  Experiment E12
cross-checks a generated spec against the hand-built HTML 4.0 tables.
"""

from __future__ import annotations

import re

from repro.html import entities as entity_tables
from repro.html.spec import AttributeDef, ElementDef, HTMLSpec

_PARAM_ENTITY_RE = re.compile(
    r"<!ENTITY\s+%\s+([\w.-]+)\s+\"([^\"]*)\"\s*>", re.DOTALL
)
_DECL_RE = re.compile(r"<!(ELEMENT|ATTLIST)\s+(.*?)>", re.DOTALL)
_COMMENT_RE = re.compile(r"--.*?--", re.DOTALL)

_TYPE_PATTERNS = {
    "cdata": None,
    "number": r"[0-9]+",
    "id": None,
    "idref": None,
    "idrefs": None,
    "name": r"[A-Za-z][A-Za-z0-9._:-]*",
    "nmtoken": r"[A-Za-z0-9._:-]+",
    "nmtokens": None,
}


class DTDError(ValueError):
    """The DTD text could not be parsed."""


def _expand_parameter_entities(text: str, max_depth: int = 20) -> tuple[str, dict[str, str]]:
    """Collect and expand ``%name;`` references."""
    definitions: dict[str, str] = {}
    for match in _PARAM_ENTITY_RE.finditer(text):
        definitions.setdefault(match.group(1), match.group(2))
    body = _PARAM_ENTITY_RE.sub("", text)

    def expand(value: str, depth: int) -> str:
        if depth > max_depth:
            raise DTDError("parameter entity expansion too deep (cycle?)")
        def _sub(match: re.Match[str]) -> str:
            name = match.group(1)
            if name not in definitions:
                raise DTDError(f"undefined parameter entity %{name};")
            return expand(definitions[name], depth + 1)
        return re.sub(r"%([\w.-]+);?", _sub, value)

    return expand(body, 0), definitions


def _split_names(name_group: str) -> list[str]:
    """``(A|B|C)`` or ``A`` -> list of lower-case names."""
    name_group = name_group.strip()
    if name_group.startswith("("):
        name_group = name_group.strip("()")
    return [part.strip().lower() for part in name_group.split("|") if part.strip()]


def parse_dtd(text: str, name: str = "dtd", version: str = "generated") -> HTMLSpec:
    """Parse DTD text and build a spec."""
    text = _COMMENT_RE.sub("", text)
    body, _definitions = _expand_parameter_entities(text)

    elements: dict[str, ElementDef] = {}
    pending_attlists: list[tuple[list[str], str]] = []

    for match in _DECL_RE.finditer(body):
        kind, payload = match.group(1), " ".join(match.group(2).split())
        if kind == "ELEMENT":
            _parse_element(payload, elements)
        else:
            names, rest = _split_attlist_head(payload)
            pending_attlists.append((names, rest))

    for names, rest in pending_attlists:
        attributes = _parse_attributes(rest)
        for element_name in names:
            elem = elements.get(element_name)
            if elem is None:
                # ATTLIST for an undeclared element: declare it leniently.
                elem = ElementDef(name=element_name)
                elements[element_name] = elem
            for attr in attributes:
                elem.attributes.setdefault(attr.name, attr)

    return HTMLSpec(
        name=name,
        version=version,
        elements=elements,
        global_attributes={},
        entities=dict(entity_tables.ENTITIES),
        physical_markup={},
        doctype_pattern=r"html",
        description=f"Spec generated from DTD ({name}).",
    )


def _parse_element(payload: str, elements: dict[str, ElementDef]) -> None:
    # <!ELEMENT name_group start_min end_min content>
    match = re.match(
        r"(\([^)]*\)|[\w.-]+)\s+([-Oo])\s+([-Oo])\s+(.*)$", payload
    )
    if match is None:
        raise DTDError(f"cannot parse element declaration: {payload!r}")
    names = _split_names(match.group(1))
    end_optional = match.group(3).upper() == "O"
    content = match.group(4).strip()
    empty = content.upper().startswith("EMPTY")
    for element_name in names:
        elements[element_name] = ElementDef(
            name=element_name,
            empty=empty,
            optional_end=end_optional and not empty,
        )


def _split_attlist_head(payload: str) -> tuple[list[str], str]:
    match = re.match(r"(\([^)]*\)|[\w.-]+)\s+(.*)$", payload, re.DOTALL)
    if match is None:
        raise DTDError(f"cannot parse attlist declaration: {payload!r}")
    return _split_names(match.group(1)), match.group(2)


def _parse_attributes(rest: str) -> list[AttributeDef]:
    """Parse the ``name type default`` triples of an ATTLIST body."""
    tokens = _tokenize_attlist(rest)
    attributes: list[AttributeDef] = []
    index = 0
    while index + 2 < len(tokens) + 1 and index + 2 <= len(tokens):
        attr_name = tokens[index].lower()
        attr_type = tokens[index + 1]
        default = tokens[index + 2]
        index += 3
        # Skip the FIXED value token.
        if default.upper() == "#FIXED" and index < len(tokens):
            index += 1

        if attr_type.startswith("("):
            pattern = "|".join(
                re.escape(part) for part in _split_names(attr_type)
            )
            boolean = _split_names(attr_type) == [attr_name]
        else:
            pattern = _TYPE_PATTERNS.get(attr_type.lower())
            boolean = False
        attributes.append(
            AttributeDef(
                name=attr_name,
                pattern=pattern,
                required=default.upper() == "#REQUIRED",
                boolean=boolean,
            )
        )
    return attributes


def _tokenize_attlist(rest: str) -> list[str]:
    """Split an ATTLIST body into tokens, keeping (...) and "..." whole."""
    tokens: list[str] = []
    index = 0
    length = len(rest)
    while index < length:
        char = rest[index]
        if char.isspace():
            index += 1
            continue
        if char == "(":
            depth = 0
            start = index
            while index < length:
                if rest[index] == "(":
                    depth += 1
                elif rest[index] == ")":
                    depth -= 1
                    if depth == 0:
                        index += 1
                        break
                index += 1
            tokens.append(" ".join(rest[start:index].split()))
            continue
        if char in ('"', "'"):
            end = rest.find(char, index + 1)
            if end == -1:
                raise DTDError("unterminated literal in ATTLIST")
            tokens.append(rest[index : end + 1])
            index = end + 1
            continue
        start = index
        while index < length and not rest[index].isspace() and rest[index] not in "(\"'":
            index += 1
        tokens.append(rest[start:index])
    return tokens


#: A hand-written extract of the HTML 4.0 Transitional DTD, large enough
#: to cross-check generated tables against the hand-built ones (E12).
SAMPLE_HTML40_DTD = """
<!ENTITY % heading "H1|H2|H3|H4|H5|H6">
<!ENTITY % fontstyle "TT | I | B | U | S | STRIKE | BIG | SMALL">
<!ENTITY % phrase "EM | STRONG | DFN | CODE | SAMP | KBD | VAR | CITE">
<!ENTITY % list "UL | OL | DIR | MENU">
<!ENTITY % inline "#PCDATA | %fontstyle; | %phrase;">

<!ELEMENT HTML O O (HEAD, BODY)>
<!ELEMENT HEAD O O (TITLE)>
<!ELEMENT TITLE - - (#PCDATA)>
<!ELEMENT BODY O O (%inline;)*>
<!ELEMENT (%heading;) - - (%inline;)*>
<!ELEMENT (%fontstyle;|%phrase;) - - (%inline;)*>
<!ELEMENT P - O (%inline;)*>
<!ELEMENT BR - O EMPTY>
<!ELEMENT HR - O EMPTY>
<!ELEMENT A - - (%inline;)* -(A)>
<!ELEMENT IMG - O EMPTY>
<!ELEMENT (%list;) - - (LI)+>
<!ELEMENT LI - O (%inline;)*>
<!ELEMENT DL - - (DT|DD)+>
<!ELEMENT (DT|DD) - O (%inline;)*>
<!ELEMENT PRE - - (%inline;)*>
<!ELEMENT BLOCKQUOTE - - (%inline;)*>
<!ELEMENT FORM - - (%inline;)*>
<!ELEMENT INPUT - O EMPTY>
<!ELEMENT SELECT - - (OPTION+)>
<!ELEMENT OPTION - O (#PCDATA)>
<!ELEMENT TEXTAREA - - (#PCDATA)>
<!ELEMENT TABLE - - (CAPTION?, TR+)>
<!ELEMENT CAPTION - - (%inline;)*>
<!ELEMENT TR - O (TD|TH)+>
<!ELEMENT (TD|TH) - O (%inline;)*>

<!ATTLIST BODY
  bgcolor     CDATA      #IMPLIED
  text        CDATA      #IMPLIED
  link        CDATA      #IMPLIED
  vlink       CDATA      #IMPLIED
  alink       CDATA      #IMPLIED
  background  CDATA      #IMPLIED
  >
<!ATTLIST A
  href        CDATA      #IMPLIED
  name        CDATA      #IMPLIED
  target      CDATA      #IMPLIED
  rel         CDATA      #IMPLIED
  rev         CDATA      #IMPLIED
  >
<!ATTLIST IMG
  src         CDATA      #REQUIRED
  alt         CDATA      #REQUIRED
  width       CDATA      #IMPLIED
  height      CDATA      #IMPLIED
  border      CDATA      #IMPLIED
  ismap       (ismap)    #IMPLIED
  >
<!ATTLIST TEXTAREA
  name        CDATA      #IMPLIED
  rows        NUMBER     #REQUIRED
  cols        NUMBER     #REQUIRED
  >
<!ATTLIST FORM
  action      CDATA      #REQUIRED
  method      (get|post) #IMPLIED
  enctype     CDATA      #IMPLIED
  >
<!ATTLIST INPUT
  type        (text|password|checkbox|radio|submit|reset|file|hidden|image|button) #IMPLIED
  name        CDATA      #IMPLIED
  value       CDATA      #IMPLIED
  checked     (checked)  #IMPLIED
  >
<!ATTLIST TABLE
  border      NUMBER     #IMPLIED
  width       CDATA      #IMPLIED
  summary     CDATA      #IMPLIED
  >
<!ATTLIST (TD|TH)
  rowspan     NUMBER     #IMPLIED
  colspan     NUMBER     #IMPLIED
  >
<!ATTLIST OPTION
  selected    (selected) #IMPLIED
  value       CDATA      #IMPLIED
  >
"""


def sample_spec() -> HTMLSpec:
    """The spec generated from :data:`SAMPLE_HTML40_DTD`."""
    return parse_dtd(SAMPLE_HTML40_DTD, name="html40-dtd", version="HTML 4.0 (from DTD)")
