"""Netscape Navigator extensions to HTML 4.0.

The paper (section 5.5): "Other modules define the non-standard extensions
supported by Microsoft (Internet Explorer) and Netscape (Navigator)."
This spec starts from HTML 4.0 Transitional and adds the Navigator-only
elements (BLINK, LAYER, MULTICOL, SPACER ...) and attributes, so that
pages written for Navigator can be checked without drowning in
unknown-element noise -- while still being told about genuine mistakes.
"""

from __future__ import annotations

from repro.html import entities
from repro.html.html40 import (
    COLOR,
    LENGTH,
    NUMBER,
    PHYSICAL_MARKUP,
    _attr,
    _elem,
    build_html40,
)
from repro.html.spec import HTMLSpec, register_spec

# Navigator 4-era extension elements.
NETSCAPE_ELEMENTS = (
    _elem("blink"),  # vendor-blessed; style advice comes from physical_markup
    _elem("nobr"),
    _elem("wbr", empty=True),
    _elem(
        "spacer",
        _attr("type", r"horizontal|vertical|block"),
        _attr("size", NUMBER),
        _attr("width", NUMBER),
        _attr("height", NUMBER),
        _attr("align", r"left|right|top|texttop|middle|absmiddle|baseline|bottom|absbottom"),
        empty=True,
    ),
    _elem(
        "multicol",
        _attr("cols", NUMBER, required=True),
        _attr("gutter", NUMBER),
        _attr("width", LENGTH),
        block=True,
        closes=("p",),
    ),
    _elem(
        "layer",
        _attr("id"),
        _attr("left", NUMBER),
        _attr("top", NUMBER),
        _attr("pagex", NUMBER),
        _attr("pagey", NUMBER),
        _attr("src"),
        _attr("z-index", NUMBER),
        _attr("above"),
        _attr("below"),
        _attr("width", LENGTH),
        _attr("height", LENGTH),
        _attr("clip"),
        _attr("visibility", r"show|hide|inherit"),
        _attr("bgcolor", COLOR),
        _attr("background"),
        block=True,
    ),
    _elem(
        "ilayer",
        _attr("id"),
        _attr("left", NUMBER),
        _attr("top", NUMBER),
        _attr("src"),
        _attr("width", LENGTH),
        _attr("height", LENGTH),
        _attr("visibility", r"show|hide|inherit"),
        _attr("bgcolor", COLOR),
        _attr("background"),
    ),
    _elem("nolayer"),
    _elem(
        "keygen",
        _attr("name", required=True),
        _attr("challenge"),
        empty=True,
    ),
    _elem(
        "embed",
        _attr("src", required=True),
        _attr("width", LENGTH),
        _attr("height", LENGTH),
        _attr("name"),
        _attr("pluginspage"),
        _attr("hidden", r"true|false"),
        _attr("autostart", r"true|false"),
        _attr("loop", r"true|false"),
        _attr("align", r"left|right|top|bottom"),
        empty=True,
    ),
    _elem("noembed"),
    _elem("server"),  # LiveWire server-side JavaScript
)

# (element, attribute) Navigator-only attribute extensions.
NETSCAPE_EXTRA_ATTRIBUTES = {
    "body": (
        _attr("marginwidth", NUMBER),
        _attr("marginheight", NUMBER),
    ),
    "img": (
        _attr("lowsrc"),
        _attr("suppress", r"true|false"),
    ),
    "font": (
        _attr("point-size", NUMBER),
        _attr("weight", NUMBER),
    ),
    "hr": (
        _attr("color", COLOR),
    ),
    "frameset": (
        _attr("border", NUMBER),
        _attr("bordercolor", COLOR),
        _attr("frameborder", r"yes|no|1|0"),
    ),
    "frame": (
        _attr("bordercolor", COLOR),
    ),
    "table": (
        _attr("bordercolor", COLOR),
        _attr("cols", NUMBER),
        _attr("height", LENGTH),
    ),
    "input": (
        _attr("onkeydown"),
    ),
}


def build_netscape() -> HTMLSpec:
    base = build_html40()
    elements = dict(base.elements)
    for elem in NETSCAPE_ELEMENTS:
        elements[elem.name] = elem
    for name, extras in NETSCAPE_EXTRA_ATTRIBUTES.items():
        target = elements[name]
        for attr in extras:
            target.attributes.setdefault(attr.name, attr)
    physical = dict(PHYSICAL_MARKUP)
    physical["blink"] = "em"
    return HTMLSpec(
        name="netscape",
        version="HTML 4.0 + Netscape Navigator extensions",
        elements=elements,
        global_attributes=dict(base.global_attributes),
        entities=dict(entities.ENTITIES),
        physical_markup=physical,
        doctype_pattern=base.doctype_pattern,
        description="HTML 4.0 Transitional plus Navigator extensions.",
    )


register_spec("netscape", build_netscape)
