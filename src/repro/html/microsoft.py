"""Microsoft Internet Explorer extensions to HTML 4.0.

Companion to :mod:`repro.html.netscape`: HTML 4.0 Transitional plus the
IE4-era elements (MARQUEE, BGSOUND ...) and attribute extensions
(BORDERCOLOR on tables, LEFTMARGIN/TOPMARGIN on BODY ...).
"""

from __future__ import annotations

from repro.html import entities
from repro.html.html40 import (
    COLOR,
    LENGTH,
    NUMBER,
    PHYSICAL_MARKUP,
    _attr,
    _elem,
    build_html40,
)
from repro.html.spec import HTMLSpec, register_spec

MICROSOFT_ELEMENTS = (
    _elem(
        "marquee",
        _attr("behavior", r"scroll|slide|alternate"),
        _attr("bgcolor", COLOR),
        _attr("direction", r"left|right|up|down"),
        _attr("height", LENGTH),
        _attr("width", LENGTH),
        _attr("hspace", NUMBER),
        _attr("vspace", NUMBER),
        _attr("loop", r"-?[0-9]+|infinite"),
        _attr("scrollamount", NUMBER),
        _attr("scrolldelay", NUMBER),
        _attr("truespeed", boolean=True),
        deprecated=True,
    ),
    _elem(
        "bgsound",
        _attr("src", required=True),
        _attr("loop", r"-?[0-9]+|infinite"),
        _attr("balance", r"-?[0-9]+"),
        _attr("volume", r"-?[0-9]+"),
        empty=True,
    ),
    _elem("nobr"),
    _elem("wbr", empty=True),
    _elem("comment"),  # IE's <COMMENT> element; content is ignored by IE
    _elem(
        "embed",
        _attr("src", required=True),
        _attr("width", LENGTH),
        _attr("height", LENGTH),
        _attr("name"),
        _attr("units", r"pixels|em"),
        empty=True,
    ),
    _elem("xml", _attr("id"), _attr("src")),  # data islands
)

MICROSOFT_EXTRA_ATTRIBUTES = {
    "body": (
        _attr("leftmargin", NUMBER),
        _attr("topmargin", NUMBER),
        _attr("rightmargin", NUMBER),
        _attr("bottommargin", NUMBER),
        _attr("bgproperties", r"fixed"),
        _attr("scroll", r"yes|no"),
    ),
    "table": (
        _attr("bordercolor", COLOR),
        _attr("bordercolorlight", COLOR),
        _attr("bordercolordark", COLOR),
        _attr("background"),
        _attr("height", LENGTH),
    ),
    "td": (
        _attr("bordercolor", COLOR),
        _attr("background"),
    ),
    "th": (
        _attr("bordercolor", COLOR),
        _attr("background"),
    ),
    "tr": (
        _attr("bordercolor", COLOR),
        _attr("height", LENGTH),
    ),
    "img": (
        _attr("dynsrc"),
        _attr("start", r"fileopen|mouseover"),
        _attr("loop", r"-?[0-9]+|infinite"),
        _attr("controls", boolean=True),
    ),
    "a": (
        _attr("methods"),
        _attr("urn"),
    ),
    "iframe": (
        _attr("allowtransparency", r"true|false"),
        _attr("application", r"yes|no"),
    ),
    "font": (
        _attr("point-size", NUMBER),
    ),
}


def build_microsoft() -> HTMLSpec:
    base = build_html40()
    elements = dict(base.elements)
    for elem in MICROSOFT_ELEMENTS:
        elements[elem.name] = elem
    for name, extras in MICROSOFT_EXTRA_ATTRIBUTES.items():
        target = elements[name]
        for attr in extras:
            target.attributes.setdefault(attr.name, attr)
    return HTMLSpec(
        name="microsoft",
        version="HTML 4.0 + Microsoft Internet Explorer extensions",
        elements=elements,
        global_attributes=dict(base.global_attributes),
        entities=dict(entities.ENTITIES),
        physical_markup=dict(PHYSICAL_MARKUP),
        doctype_pattern=base.doctype_pattern,
        description="HTML 4.0 Transitional plus Internet Explorer extensions.",
    )


register_spec("microsoft", build_microsoft)
register_spec("ie", build_microsoft)
