"""The ad-hoc weblint tokenizer.

Section 5.1 of the paper: "Weblint is basically a stack machine with an
ad-hoc parser, which uses various heuristics to keep things together as it
goes along.  The heuristics are based on commonly-made mistakes in HTML."

This module is the ad-hoc parser half.  It is *not* a conforming HTML
parser and must never be one: weblint's value is in surviving broken input
while remembering exactly how it was broken.  Key heuristics:

- **Odd quotes** (``<A HREF="a.html>``): if an attribute value's closing
  quote does not appear before the next ``<``, the value is assumed to end
  at the first ``>`` (or the ``<``) and the tag is flagged with
  :data:`~repro.html.tokens.LexicalIssue.ODD_QUOTES`.  This is what keeps
  a single typo from swallowing the rest of the document (the paper's
  "minimise the number of warning cascades").
- **Raw-text elements** (``SCRIPT``, ``STYLE``, ``XMP``, ``LISTING``):
  content is consumed verbatim until the matching close tag, so that
  ``a < b`` inside a script never looks like markup.
- **Comments**: markup or a nested ``<!--`` inside a comment is flagged,
  matching the paper's warning about commented-out markup confusing
  "quick and dirty" parsers.
- **Bare metacharacters**: a ``<`` that cannot start a tag, or a literal
  ``>`` in text, is reported as text with an issue flag rather than
  derailing the scan.

The scanner is *batched*: instead of advancing character by character
with incremental line/column bookkeeping, it jumps from construct to
construct with ``str.find`` and compiled character-class regexes (both
run at C speed), takes zero-copy decisions on ``str`` slices only where
a token actually needs the text, and derives 1-based line/column
positions lazily -- one binary search over a precomputed newline index
per position, computed only at token-emit time, never tracked during
the scan.  Fast paths: a text run with no ``&`` skips entity scanning
entirely, and the lowercased source used to find raw-text close tags is
built at most once per document.  The pre-batching scanner survives
verbatim as :mod:`repro.html._tokenizer_naive`, the behaviour oracle
for the corpus-wide golden equivalence test.

The tokenizer emits tokens with 1-based line/column positions and leaves
all user-facing wording to the rule layer.
"""

from __future__ import annotations

import re
from bisect import bisect_right
from typing import Iterator, Optional

from repro.html import entities
from repro.obs.metrics import get_registry
from repro.html.tokens import (
    NO_ENTITIES,
    NO_ISSUES,
    Attribute,
    Comment,
    Declaration,
    EndTag,
    LexicalIssue,
    ProcessingInstruction,
    StartTag,
    Text,
    Token,
)

# Elements whose content is raw text: no tags or entities are recognised
# until the matching end tag.
RAW_TEXT_ELEMENTS = frozenset({"script", "style", "xmp", "listing", "plaintext"})

# First letters (either case) a raw-text element name can start with;
# lets the hot loop skip ``name.lower()`` for every other tag.
_RAW_TEXT_FIRST = frozenset("sSxXlLpP")

_NAME_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ")
_WHITESPACE = frozenset(" \t\r\n\f")

# The scanner's character classes, compiled once.  These must stay in
# lockstep with the naive comparator's frozensets: tag/attribute names
# are [A-Za-z] to start and may continue with digits and "-._:"; only
# "\n" counts as a line break (CR never increments the line -- CRLF
# therefore counts once, via its LF).
_NAME_CHARS_RE = re.compile(r"[A-Za-z0-9\-._:]*")
_WS_RE = re.compile(r"[ \t\r\n\f]*")
_WS_THEN_NAME_RE = re.compile(r"[ \t\r\n\f]+[A-Za-z]")
_UNQUOTED_VALUE_RE = re.compile(r"[^ \t\r\n\f><]*")
_MARKUP_IN_COMMENT_RE = re.compile(r"<[A-Za-z/]")

# Fast-path master regexes: one match per *well-formed* tag, replacing
# a dozen scan-state method calls with a single C-speed pass.  They are
# deliberately narrower than the recovery state machine -- anything
# they reject (odd quotes, unquoted or single-quoted values, junk in a
# tag, missing separators, names not starting with a letter) falls back
# to the careful scanners below, whose output defines the contract.
# Everything a fast path accepts must tokenize exactly as the slow path
# would: same raw span, same fields, and -- critically -- *no* lexical
# issues, which is why only issue-free shapes (double-quoted or boolean
# attributes, "/>" with no gap) are matched.
_FAST_END_RE = re.compile(r"</([A-Za-z][A-Za-z0-9\-._:]*)[ \t\r\n\f]*>")
_FAST_START_RE = re.compile(
    r"<([A-Za-z][A-Za-z0-9\-._:]*)"
    r"((?:[ \t\r\n\f]+[A-Za-z][A-Za-z0-9\-._:]*(?:=\"[^\"<]*\")?)*)"
    r"[ \t\r\n\f]*(/?)>"
)
_FAST_ATTR_RE = re.compile(r"([A-Za-z][A-Za-z0-9\-._:]*)(?:=\"([^\"<]*)\")?")

# iter_tokens() scans in chunks of this many tokens: large enough to
# amortise re-entering the scan loop, small enough that streaming
# consumers keep bounded memory.  _NO_LIMIT makes one _scan_some call
# consume the whole document (the tokenize() path).
_CHUNK = 64
_NO_LIMIT = (1 << 63) - 1


class Tokenizer:
    """Tokenize one HTML document into a stream of tokens.

    The class holds scan state (a single cursor ``pos``) so that helper
    methods stay small; a fresh instance is used per document.  Line and
    column are not part of the scan state: they are derived on demand by
    :meth:`_line_col` from the newline index built in ``__init__``.
    """

    __slots__ = (
        "source",
        "length",
        "pos",
        "_tokens",
        "_newlines",
        "_nl_cursor",
        "_lower",
    )

    def __init__(self, source: str) -> None:
        self.source = source
        self.length = len(source)
        self.pos = 0
        self._tokens: list[Token] = []
        # Offsets of every "\n", in order: one C-speed pass now buys
        # O(log lines) positions forever after.
        newlines: list[int] = []
        find = source.find
        index = find("\n")
        while index != -1:
            newlines.append(index)
            index = find("\n", index + 1)
        self._newlines = newlines
        self._nl_cursor = 0
        # source.lower(), built at most once, on the first raw-text
        # element (the old scanner rebuilt it per <script>/<style>).
        self._lower: Optional[str] = None

    # -- public API --------------------------------------------------------

    def tokenize(self) -> list[Token]:
        """Scan the whole document and return its tokens.

        This is the cheapest way to consume the scanner: one call into
        the core scan loop, no generator resumption per token.
        """
        mark = len(self._tokens)
        self._scan_some(_NO_LIMIT)
        tokens = self._tokens[mark:] if mark else self._tokens
        registry = get_registry()
        registry.inc("tokenizer.documents")
        registry.inc("tokenizer.tokens", len(tokens))
        registry.inc("tokenizer.bytes", self.length)
        return tokens

    def iter_tokens(self) -> Iterator[Token]:
        """Stream tokens as they are scanned.

        The engine's dispatch loop consumes this feed directly, so a
        document is checked without ever materialising its full token
        list; :meth:`tokenize` remains for callers that want the list.
        The scan runs in bounded chunks (:data:`_CHUNK` tokens at a
        time), so memory stays bounded regardless of document size
        while the scan loop itself runs generator-free at full speed.
        Per-document metrics (docs/observability.md: ``tokenizer.*``)
        are recorded when the stream is exhausted, keeping the scan
        loop itself free of instrumentation.
        """
        out = self._tokens
        produced = 0
        while True:
            more = self._scan_some(_CHUNK)
            produced += len(out)
            yield from out
            out.clear()
            if not more:
                break
        registry = get_registry()
        registry.inc("tokenizer.documents")
        registry.inc("tokenizer.tokens", produced)
        registry.inc("tokenizer.bytes", self.length)

    # -- core scan loop ------------------------------------------------------

    def _scan_some(self, limit: int) -> bool:
        """Scan constructs into ``self._tokens`` until at least ``limit``
        tokens are buffered or the input is exhausted.

        Returns True while input remains.  The loop body is deliberately
        inlined: on real documents the overwhelming majority of tokens
        are plain text runs and well-formed tags, and at ~1us budgets
        per token even one Python method call per construct is
        measurable.  Locals for every hot global/attribute, one regex
        match per fast-path tag, and the line/column bisect is inlined
        at the three hottest emit sites.
        """
        out = self._tokens
        append = out.append
        count = len(out)
        source = self.source
        length = self.length
        find = source.find
        newlines = self._newlines
        nl_len = len(newlines)
        # Rolling newline cursor: tokens are emitted in source order, so
        # instead of a bisect per position we keep the count of newlines
        # strictly before the current position and advance it.  Total
        # cursor work per document is O(newlines), not O(tokens log
        # lines).  Persisted on self so chunked scans stay correct.
        nl_idx = self._nl_cursor
        fast_start = _FAST_START_RE.match
        fast_end = _FAST_END_RE.match
        name_start = _NAME_START
        bare_gt = LexicalIssue.BARE_GT_IN_TEXT
        raw_text_elements = RAW_TEXT_ELEMENTS
        raw_text_first = _RAW_TEXT_FIRST
        no_issues = NO_ISSUES
        no_entities = NO_ENTITIES
        text_cls = Text
        start_cls = StartTag
        end_cls = EndTag
        attr_cls = Attribute
        pos = self.pos
        while pos < length and count < limit:
            if source[pos] != "<":
                # -- text run: jump straight to the next '<' ------------
                end = find("<", pos)
                if end == -1:
                    end = length
                raw = source[pos:end]
                while nl_idx < nl_len and newlines[nl_idx] < pos:
                    nl_idx += 1
                if nl_idx:
                    line = nl_idx + 1
                    column = pos - newlines[nl_idx - 1]
                else:
                    line = 1
                    column = pos + 1
                token = text_cls(
                    line,
                    column,
                    raw,
                    [bare_gt] if ">" in raw else no_issues,
                    raw,
                    no_entities,
                )
                # Fast path: no "&" anywhere in the run means no entity
                # references -- skip the reference regex entirely.  This
                # is the common case for generated and prose-heavy text.
                if "&" in raw:
                    self._record_entities(token, raw, pos)
                pos = end
                append(token)
                count += 1
                continue
            try:
                nxt = source[pos + 1]
            except IndexError:
                nxt = ""
            if nxt in name_start:
                match = fast_start(source, pos)
                if match is not None:
                    end = match.end()
                    name, slash = match.group(1, 3)
                    while nl_idx < nl_len and newlines[nl_idx] < pos:
                        nl_idx += 1
                    if nl_idx:
                        line = nl_idx + 1
                        column = pos - newlines[nl_idx - 1]
                    else:
                        line = 1
                        column = pos + 1
                    attrs_start, attrs_end = match.span(2)
                    attributes = []
                    if attrs_end > attrs_start:
                        for am in _FAST_ATTR_RE.finditer(
                            source, attrs_start, attrs_end
                        ):
                            a_pos = am.start()
                            while nl_idx < nl_len and newlines[nl_idx] < a_pos:
                                nl_idx += 1
                            if nl_idx:
                                a_line = nl_idx + 1
                                a_column = a_pos - newlines[nl_idx - 1]
                            else:
                                a_line = 1
                                a_column = a_pos + 1
                            a_name, value = am.group(1, 2)
                            if value is None:
                                attributes.append(
                                    attr_cls(a_name, "", None, False, a_line, a_column)
                                )
                            else:
                                attributes.append(
                                    attr_cls(a_name, value, '"', True, a_line, a_column)
                                )
                    token = start_cls(
                        line,
                        column,
                        source[pos:end],
                        no_issues,
                        name,
                        attributes,
                        slash == "/",
                    )
                    pos = end
                    append(token)
                    count += 1
                    # Raw-text check gated on first letter: only s/x/l/p
                    # can start a raw-text element name, so most tags
                    # skip the .lower() entirely.
                    if not slash and name[0] in raw_text_first:
                        lowered = name.lower()
                        if lowered in raw_text_elements:
                            self.pos = pos
                            self._scan_raw_text(lowered)
                            pos = self.pos
                            count = len(out)
                    continue
            elif nxt == "/":
                match = fast_end(source, pos)
                if match is not None:
                    end = match.end()
                    while nl_idx < nl_len and newlines[nl_idx] < pos:
                        nl_idx += 1
                    if nl_idx:
                        token = end_cls(
                            nl_idx + 1,
                            pos - newlines[nl_idx - 1],
                            source[pos:end],
                            no_issues,
                            match.group(1),
                        )
                    else:
                        token = end_cls(
                            1, pos + 1, source[pos:end], no_issues, match.group(1)
                        )
                    append(token)
                    count += 1
                    pos = end
                    continue
            # -- slow path: comments, declarations, PIs, and every
            # malformed or unusual tag shape.  The careful scanners own
            # recovery; their output defines the token contract.
            self.pos = pos
            self._scan_angle()
            pos = self.pos
            count = len(out)
        self.pos = pos
        self._nl_cursor = nl_idx
        return pos < length

    # -- position helpers ---------------------------------------------------

    def _line_col(self, pos: int) -> tuple[int, int]:
        """1-based (line, column) of character offset ``pos``, lazily.

        ``bisect_right`` counts the newlines strictly before ``pos``;
        that count is the 0-based line, and the offset of the last such
        newline anchors the column.  O(log lines) per token instead of
        O(1)-per-character bookkeeping on every advance.
        """
        newlines = self._newlines
        before = bisect_right(newlines, pos - 1)
        if before:
            return before + 1, pos - newlines[before - 1]
        return 1, pos + 1

    # -- text ---------------------------------------------------------------

    def _record_entities(self, token: Text, raw: str, offset: int) -> None:
        # The fast path builds Text tokens with the shared NO_ENTITIES
        # sentinel; swap in a private list before recording anything.
        ents = token.entities
        if ents is NO_ENTITIES:
            ents = token.entities = []
        for name, ent_offset, known, terminated in entities.find_references(raw):
            ent_line, ent_column = self._line_col(offset + ent_offset)
            ents.append((name, ent_line, ent_column, known, terminated))
            if not known:
                token.add_issue(LexicalIssue.UNKNOWN_ENTITY)
            if not terminated:
                token.add_issue(LexicalIssue.UNTERMINATED_ENTITY)

    # -- dispatch on '<' ------------------------------------------------------

    def _scan_angle(self) -> None:
        pos = self.pos
        source = self.source
        nxt = source[pos + 1] if pos + 1 < self.length else ""
        if nxt == "!":
            if source.startswith("<!--", pos):
                self._scan_comment()
            else:
                self._scan_declaration()
        elif nxt == "?":
            self._scan_pi()
        elif nxt == "/":
            self._scan_end_tag()
        elif nxt in _NAME_START:
            self._scan_start_tag(leading_ws=False)
        elif nxt in _WHITESPACE and _WS_THEN_NAME_RE.match(source, pos + 1):
            # "<   name" -- a tag with leading whitespace.
            self._scan_start_tag(leading_ws=True)
        elif nxt == ">":
            # "<>" -- an empty tag; classic weblint reports it.
            line, column = self._line_col(pos)
            self.pos = pos + 2
            token = Text(line=line, column=column, raw="<>", text="<>")
            token.add_issue(LexicalIssue.EMPTY_TAG)
            self._tokens.append(token)
        else:
            # A '<' that cannot start markup: literal metacharacter.
            line, column = self._line_col(pos)
            self.pos = pos + 1
            token = Text(line=line, column=column, raw="<", text="<")
            token.add_issue(LexicalIssue.BARE_LT_IN_TEXT)
            self._tokens.append(token)

    # -- comments, declarations, PIs -----------------------------------------

    def _scan_comment(self) -> None:
        start = self.pos
        line, column = self._line_col(start)
        end = self.source.find("-->", start + 4)
        if end == -1:
            body = self.source[start + 4 :]
            self.pos = self.length
            token = Comment(line=line, column=column, raw=self.source[start:], text=body)
            token.add_issue(LexicalIssue.UNTERMINATED_COMMENT)
        else:
            body = self.source[start + 4 : end]
            self.pos = end + 3
            token = Comment(
                line=line, column=column, raw=self.source[start : self.pos], text=body
            )
        if "<!--" in body:
            token.add_issue(LexicalIssue.NESTED_COMMENT)
        if _looks_like_markup(body):
            token.add_issue(LexicalIssue.MARKUP_IN_COMMENT)
        self._tokens.append(token)

    def _scan_declaration(self) -> None:
        start = self.pos
        line, column = self._line_col(start)
        end = self.source.find(">", start)
        unterminated = end == -1
        if unterminated:
            end = self.length
        body = self.source[start + 2 : end]
        self.pos = min(end + 1, self.length)
        token = Declaration(
            line=line, column=column, raw=self.source[start : self.pos], text=body
        )
        if unterminated:
            token.add_issue(LexicalIssue.UNCLOSED_TAG)
        if not body.strip():
            token.add_issue(LexicalIssue.MALFORMED_DECLARATION)
        self._tokens.append(token)

    def _scan_pi(self) -> None:
        start = self.pos
        line, column = self._line_col(start)
        end = self.source.find(">", start)
        if end == -1:
            end = self.length
        body = self.source[start + 2 : end]
        self.pos = min(end + 1, self.length)
        self._tokens.append(
            ProcessingInstruction(
                line=line, column=column, raw=self.source[start : self.pos], text=body
            )
        )

    # -- end tags ---------------------------------------------------------------

    def _scan_end_tag(self) -> None:
        start = self.pos
        line, column = self._line_col(start)
        self.pos = start + 2  # '</'
        name = self._scan_name()
        issues: list[LexicalIssue] = []
        # Skip anything up to '>', noting attribute-like junk.
        end = self.source.find(">", self.pos)
        if end == -1:
            self.pos = self.length
            issues.append(LexicalIssue.UNCLOSED_TAG)
        else:
            if self.source[self.pos : end].strip():
                issues.append(LexicalIssue.ATTRIBUTES_IN_END_TAG)
            self.pos = end + 1
        token = EndTag(
            line=line, column=column, raw=self.source[start : self.pos], name=name
        )
        for issue in issues:
            token.add_issue(issue)
        self._tokens.append(token)

    # -- start tags ---------------------------------------------------------------

    def _scan_start_tag(self, leading_ws: bool) -> None:
        start = self.pos
        line, column = self._line_col(start)
        self.pos = start + 1  # '<'
        if leading_ws:
            self._skip_whitespace()
        name = self._scan_name()
        token = StartTag(line=line, column=column, raw="", name=name)
        if leading_ws:
            token.add_issue(LexicalIssue.WHITESPACE_AFTER_LT)
        self._scan_attributes(token)
        token.raw = self.source[start : self.pos]
        self._tokens.append(token)
        if token.lowered in RAW_TEXT_ELEMENTS and not token.self_closing:
            self._scan_raw_text(token.lowered)

    def _skip_whitespace(self) -> None:
        self.pos = _WS_RE.match(self.source, self.pos).end()

    def _scan_name(self) -> str:
        match = _NAME_CHARS_RE.match(self.source, self.pos)
        self.pos = match.end()
        return match.group()

    def _scan_attributes(self, token: StartTag) -> None:
        """Parse attributes until '>' or recovery point.

        Implements the odd-quote recovery heuristic described in the
        module docstring.
        """
        source = self.source
        length = self.length
        while True:
            self._skip_whitespace()
            pos = self.pos
            if pos >= length:
                token.add_issue(LexicalIssue.UNCLOSED_TAG)
                return
            char = source[pos]
            if char == ">":
                self.pos = pos + 1
                return
            if char == "/" and source[pos + 1 : pos + 2] == ">":
                token.self_closing = True
                self.pos = pos + 2
                return
            if char == "<":
                # New tag starting before this one closed.
                token.add_issue(LexicalIssue.UNCLOSED_TAG)
                return
            if char in _NAME_START:
                self._scan_one_attribute(token)
            else:
                # Junk character inside a tag; skip it rather than loop.
                self.pos = pos + 1

    def _scan_one_attribute(self, token: StartTag) -> None:
        attr_line, attr_column = self._line_col(self.pos)
        name = self._scan_name()
        self._skip_whitespace()
        attr = Attribute(name=name, line=attr_line, column=attr_column)
        if self.pos < self.length and self.source[self.pos] == "=":
            self.pos += 1
            self._skip_whitespace()
            attr.has_value = True
            self._scan_attribute_value(token, attr)
        token.attributes.append(attr)

    def _scan_attribute_value(self, token: StartTag, attr: Attribute) -> None:
        pos = self.pos
        source = self.source
        char = source[pos] if pos < self.length else ""
        if char in ('"', "'"):
            attr.quote = char
            if char == "'":
                token.add_issue(LexicalIssue.SINGLE_QUOTED_VALUE)
            close = source.find(char, pos + 1)
            next_lt = source.find("<", pos + 1)
            if close != -1 and (next_lt == -1 or close < next_lt):
                # Well-formed quoted value (may legitimately contain '>').
                attr.value = source[pos + 1 : close]
                self.pos = close + 1
                return
            # Recovery: closing quote missing before next tag. Treat the
            # value as ending at the first '>' (or the '<').
            token.add_issue(LexicalIssue.ODD_QUOTES)
            stop_candidates = [
                index
                for index in (source.find(">", pos + 1), next_lt)
                if index != -1
            ]
            stop = min(stop_candidates) if stop_candidates else self.length
            attr.value = source[pos + 1 : stop]
            self.pos = stop
            return
        # Unquoted value: scan to whitespace or '>' (or '<').
        token.add_issue(LexicalIssue.UNQUOTED_VALUE)
        match = _UNQUOTED_VALUE_RE.match(source, pos)
        attr.value = match.group()
        self.pos = match.end()

    # -- raw text (SCRIPT/STYLE/...) ---------------------------------------------

    def _scan_raw_text(self, element: str) -> None:
        """Consume raw content up to ``</element`` without tokenizing it."""
        start = self.pos
        lower = self._lower
        if lower is None:
            lower = self._lower = self.source.lower()
        index = lower.find("</" + element, start)
        if index == -1:
            index = self.length
        self.pos = index
        raw = self.source[start:index]
        if raw:
            line, column = self._line_col(start)
            self._tokens.append(Text(line=line, column=column, raw=raw, text=raw))


def _looks_like_markup(comment_body: str) -> bool:
    """Heuristic: does a comment body contain commented-out markup?

    One regex search for ``<`` followed by a name-start letter or ``/``,
    replacing the naive scanner's per-character loop.
    """
    return _MARKUP_IN_COMMENT_RE.search(comment_body) is not None


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper: tokenize ``source`` with a fresh tokenizer."""
    return Tokenizer(source).tokenize()


def iter_tokens(source: str) -> Iterator[Token]:
    """Stream tokens from ``source`` with a fresh tokenizer."""
    return Tokenizer(source).iter_tokens()
