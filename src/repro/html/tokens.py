"""Token model for the ad-hoc weblint tokenizer.

The paper (section 5.1) describes the input being "tokenised into start
tags (possibly with attributes), text content, and end tags", with special
handling for comments, ``SCRIPT`` and ``STYLE``.  Unlike a conforming HTML
parser, weblint's tokens deliberately preserve *lexical* details -- quote
characters, missing quotes, whitespace oddities -- because many of its
warnings are about exactly those details.

Tokens are plain frozen-ish dataclasses.  They carry their source position
(1-based line and column, like traditional lint output) and a list of
:class:`LexicalIssue` flags raised by the tokenizer itself; the rule engine
turns those flags into user-facing messages so that message wording and
configuration live in one place.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional


class TokenKind(enum.Enum):
    """Discriminator for the token classes.

    Kept as an enum (rather than relying on ``isinstance`` alone) so that
    table-driven dispatch in the engine is explicit and exhaustive.
    """

    TEXT = "text"
    START_TAG = "start-tag"
    END_TAG = "end-tag"
    COMMENT = "comment"
    DECLARATION = "declaration"
    PI = "processing-instruction"


class LexicalIssue(enum.Enum):
    """Anomalies detected while tokenizing.

    The tokenizer never prints anything; it records what it saw and the
    rules decide which anomalies the user wants to hear about.
    """

    ODD_QUOTES = "odd-quotes"
    UNCLOSED_TAG = "unclosed-tag"
    UNTERMINATED_COMMENT = "unterminated-comment"
    MARKUP_IN_COMMENT = "markup-in-comment"
    NESTED_COMMENT = "nested-comment"
    WHITESPACE_AFTER_LT = "whitespace-after-lt"
    WHITESPACE_BEFORE_GT = "whitespace-before-gt"
    UNQUOTED_VALUE = "unquoted-value"
    SINGLE_QUOTED_VALUE = "single-quoted-value"
    BARE_GT_IN_TEXT = "bare-gt-in-text"
    BARE_LT_IN_TEXT = "bare-lt-in-text"
    UNKNOWN_ENTITY = "unknown-entity"
    UNTERMINATED_ENTITY = "unterminated-entity"
    MALFORMED_DECLARATION = "malformed-declaration"
    EMPTY_TAG = "empty-tag"
    ATTRIBUTES_IN_END_TAG = "attributes-in-end-tag"


@dataclass
class Attribute:
    """A single ``name[=value]`` pair inside a start tag.

    ``quote`` records the delimiter actually used in the source: ``'"'``,
    ``"'"``, or ``None`` when the value was unquoted or absent.
    ``has_value`` distinguishes ``<input checked>`` (boolean attribute,
    ``value == ""``) from ``<input value="">``.
    """

    name: str
    value: str = ""
    quote: Optional[str] = None
    has_value: bool = False
    line: int = 0
    column: int = 0

    @property
    def lowered(self) -> str:
        return self.name.lower()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.has_value:
            return f"Attribute({self.name})"
        q = self.quote or ""
        return f"Attribute({self.name}={q}{self.value}{q})"


@dataclass
class Token:
    """Base class for all tokens."""

    line: int
    column: int
    raw: str
    issues: list[LexicalIssue] = field(default_factory=list)

    kind: TokenKind = field(init=False, repr=False)

    def add_issue(self, issue: LexicalIssue) -> None:
        if issue not in self.issues:
            self.issues.append(issue)

    def has_issue(self, issue: LexicalIssue) -> bool:
        return issue in self.issues


@dataclass
class StartTag(Token):
    """``<NAME attr=value ...>`` -- possibly self-closing (XHTML style)."""

    name: str = ""
    attributes: list[Attribute] = field(default_factory=list)
    self_closing: bool = False

    def __post_init__(self) -> None:
        self.kind = TokenKind.START_TAG

    @property
    def lowered(self) -> str:
        return self.name.lower()

    def get(self, attr_name: str) -> Optional[Attribute]:
        """Return the first attribute with the given (case-insensitive) name."""
        wanted = attr_name.lower()
        for attr in self.attributes:
            if attr.lowered == wanted:
                return attr
        return None

    def has_attribute(self, attr_name: str) -> bool:
        return self.get(attr_name) is not None

    def attribute_names(self) -> list[str]:
        return [attr.lowered for attr in self.attributes]

    def duplicated_attributes(self) -> list[str]:
        """Names that appear more than once, in first-appearance order."""
        seen: set[str] = set()
        dupes: list[str] = []
        for attr in self.attributes:
            name = attr.lowered
            if name in seen and name not in dupes:
                dupes.append(name)
            seen.add(name)
        return dupes


@dataclass
class EndTag(Token):
    """``</NAME>``."""

    name: str = ""

    def __post_init__(self) -> None:
        self.kind = TokenKind.END_TAG

    @property
    def lowered(self) -> str:
        return self.name.lower()


@dataclass
class Text(Token):
    """A run of character data between tags.

    ``entities`` lists the entity references found in the run as
    ``(name, line, column, known, terminated)`` tuples; the rules use it
    for unknown-entity and unterminated-entity messages.
    """

    text: str = ""
    entities: list[tuple[str, int, int, bool, bool]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.kind = TokenKind.TEXT

    @property
    def is_whitespace(self) -> bool:
        return not self.text.strip()


@dataclass
class Comment(Token):
    """``<!-- ... -->``.

    ``text`` is the comment body with delimiters stripped.  The tokenizer
    flags markup-like content and nested comment openers via ``issues``.
    """

    text: str = ""

    def __post_init__(self) -> None:
        self.kind = TokenKind.COMMENT


@dataclass
class Declaration(Token):
    """``<!DOCTYPE ...>`` and other ``<!...>`` declarations."""

    text: str = ""

    def __post_init__(self) -> None:
        self.kind = TokenKind.DECLARATION

    @property
    def is_doctype(self) -> bool:
        return self.text.lstrip().lower().startswith("doctype")


@dataclass
class ProcessingInstruction(Token):
    """``<? ... >`` -- rare in HTML, but the tokenizer must not choke."""

    text: str = ""

    def __post_init__(self) -> None:
        self.kind = TokenKind.PI


def iter_tags(tokens: Iterator[Token]) -> Iterator[Token]:
    """Yield only start and end tags from a token stream."""
    for token in tokens:
        if token.kind in (TokenKind.START_TAG, TokenKind.END_TAG):
            yield token
