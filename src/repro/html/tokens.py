"""Token model for the ad-hoc weblint tokenizer.

The paper (section 5.1) describes the input being "tokenised into start
tags (possibly with attributes), text content, and end tags", with special
handling for comments, ``SCRIPT`` and ``STYLE``.  Unlike a conforming HTML
parser, weblint's tokens deliberately preserve *lexical* details -- quote
characters, missing quotes, whitespace oddities -- because many of its
warnings are about exactly those details.

Tokens are plain frozen-ish dataclasses, compiled with ``__slots__``:
the tokenizer is the hottest allocation site in the whole pipeline (one
object per tag/text run, across every document of a site audit), and
slotted instances cut both the per-token memory (no ``__dict__``) and
the attribute-access cost the engine's dispatch loop pays on every
token.  The field layout is part of the tokenizer's public contract --
the golden equivalence test compares every field across scanner
implementations -- so adding a field is fine, renaming one is not.

Tokens carry their source position (1-based line and column, like
traditional lint output) and a list of :class:`LexicalIssue` flags raised
by the tokenizer itself; the rule engine turns those flags into
user-facing messages so that message wording and configuration live in
one place.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional


class TokenKind(enum.Enum):
    """Discriminator for the token classes.

    Kept as an enum (rather than relying on ``isinstance`` alone) so that
    table-driven dispatch in the engine is explicit and exhaustive.
    """

    TEXT = "text"
    START_TAG = "start-tag"
    END_TAG = "end-tag"
    COMMENT = "comment"
    DECLARATION = "declaration"
    PI = "processing-instruction"


class LexicalIssue(enum.Enum):
    """Anomalies detected while tokenizing.

    The tokenizer never prints anything; it records what it saw and the
    rules decide which anomalies the user wants to hear about.
    """

    ODD_QUOTES = "odd-quotes"
    UNCLOSED_TAG = "unclosed-tag"
    UNTERMINATED_COMMENT = "unterminated-comment"
    MARKUP_IN_COMMENT = "markup-in-comment"
    NESTED_COMMENT = "nested-comment"
    WHITESPACE_AFTER_LT = "whitespace-after-lt"
    WHITESPACE_BEFORE_GT = "whitespace-before-gt"
    UNQUOTED_VALUE = "unquoted-value"
    SINGLE_QUOTED_VALUE = "single-quoted-value"
    BARE_GT_IN_TEXT = "bare-gt-in-text"
    BARE_LT_IN_TEXT = "bare-lt-in-text"
    UNKNOWN_ENTITY = "unknown-entity"
    UNTERMINATED_ENTITY = "unterminated-entity"
    MALFORMED_DECLARATION = "malformed-declaration"
    EMPTY_TAG = "empty-tag"
    ATTRIBUTES_IN_END_TAG = "attributes-in-end-tag"


# Shared empty-list sentinels for the tokenizer's fast paths.  A token
# built with one of these must never have the list mutated in place:
# ``Token.add_issue`` swaps NO_ISSUES for a fresh list on first write,
# and the tokenizer replaces NO_ENTITIES before recording references.
# Because they stay empty, they compare equal to a fresh ``[]``, so
# token equality (and the golden equivalence harness) is unaffected.
NO_ISSUES: list["LexicalIssue"] = []
NO_ENTITIES: list[tuple[str, int, int, bool, bool]] = []


@dataclass(slots=True)
class Attribute:
    """A single ``name[=value]`` pair inside a start tag.

    ``quote`` records the delimiter actually used in the source: ``'"'``,
    ``"'"``, or ``None`` when the value was unquoted or absent.
    ``has_value`` distinguishes ``<input checked>`` (boolean attribute,
    ``value == ""``) from ``<input value="">``.
    """

    name: str
    value: str = ""
    quote: Optional[str] = None
    has_value: bool = False
    line: int = 0
    column: int = 0

    @property
    def lowered(self) -> str:
        return self.name.lower()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.has_value:
            return f"Attribute({self.name})"
        q = self.quote or ""
        return f"Attribute({self.name}={q}{self.value}{q})"


@dataclass(slots=True)
class Token:
    """Base class for all tokens.

    ``kind`` is a plain class attribute on each subclass, not a field:
    it is constant per class, so storing it per instance would waste a
    slot and a ``__post_init__`` call on every token the scanner
    allocates.  Equality is unaffected -- dataclass ``__eq__`` already
    requires identical classes, which implies identical kinds.
    """

    line: int
    column: int
    raw: str
    issues: list[LexicalIssue] = field(default_factory=list)

    def add_issue(self, issue: LexicalIssue) -> None:
        # Copy-on-write: the tokenizer's fast paths construct issue-free
        # tokens with the shared NO_ISSUES sentinel to skip a list
        # allocation per token; the first real issue replaces it.  All
        # issue mutation must go through this method.
        issues = self.issues
        if issues is NO_ISSUES:
            self.issues = [issue]
        elif issue not in issues:
            issues.append(issue)

    def has_issue(self, issue: LexicalIssue) -> bool:
        return issue in self.issues


@dataclass(slots=True)
class StartTag(Token):
    """``<NAME attr=value ...>`` -- possibly self-closing (XHTML style)."""

    name: str = ""
    attributes: list[Attribute] = field(default_factory=list)
    self_closing: bool = False

    kind = TokenKind.START_TAG

    @property
    def lowered(self) -> str:
        return self.name.lower()

    def get(self, attr_name: str) -> Optional[Attribute]:
        """Return the first attribute with the given (case-insensitive) name."""
        wanted = attr_name.lower()
        for attr in self.attributes:
            if attr.lowered == wanted:
                return attr
        return None

    def has_attribute(self, attr_name: str) -> bool:
        return self.get(attr_name) is not None

    def attribute_names(self) -> list[str]:
        return [attr.lowered for attr in self.attributes]

    def duplicated_attributes(self) -> list[str]:
        """Names that appear more than once, in first-appearance order."""
        seen: set[str] = set()
        dupes: list[str] = []
        for attr in self.attributes:
            name = attr.lowered
            if name in seen and name not in dupes:
                dupes.append(name)
            seen.add(name)
        return dupes


@dataclass(slots=True)
class EndTag(Token):
    """``</NAME>``."""

    name: str = ""

    kind = TokenKind.END_TAG

    @property
    def lowered(self) -> str:
        return self.name.lower()


@dataclass(slots=True)
class Text(Token):
    """A run of character data between tags.

    ``entities`` lists the entity references found in the run as
    ``(name, line, column, known, terminated)`` tuples; the rules use it
    for unknown-entity and unterminated-entity messages.
    """

    text: str = ""
    entities: list[tuple[str, int, int, bool, bool]] = field(default_factory=list)

    kind = TokenKind.TEXT

    @property
    def is_whitespace(self) -> bool:
        return not self.text.strip()


@dataclass(slots=True)
class Comment(Token):
    """``<!-- ... -->``.

    ``text`` is the comment body with delimiters stripped.  The tokenizer
    flags markup-like content and nested comment openers via ``issues``.
    """

    text: str = ""

    kind = TokenKind.COMMENT


@dataclass(slots=True)
class Declaration(Token):
    """``<!DOCTYPE ...>`` and other ``<!...>`` declarations."""

    text: str = ""

    kind = TokenKind.DECLARATION

    @property
    def is_doctype(self) -> bool:
        return self.text.lstrip().lower().startswith("doctype")


@dataclass(slots=True)
class ProcessingInstruction(Token):
    """``<? ... >`` -- rare in HTML, but the tokenizer must not choke."""

    text: str = ""

    kind = TokenKind.PI


def iter_tags(tokens: Iterator[Token]) -> Iterator[Token]:
    """Yield only start and end tags from a token stream."""
    for token in tokens:
        if token.kind in (TokenKind.START_TAG, TokenKind.END_TAG):
            yield token
