"""Content plugins -- validating non-HTML content inside pages.

Paper section 6.1 (future plans): "Support for 'plugins' which are used
to validate non-HTML content (e.g. to validate stylesheets).  This may
require an outer framework, where weblint is just one such plugin, for
HTML."

The framework here is the inner one: a :class:`ContentPlugin` claims
element content (``<style>``, ``<script>``) and/or attribute values
(``style="..."``) and emits messages through the normal configurable
gateway.  Plugins ship for CSS (:mod:`repro.plugins.csslint`) and a
basic script sanity check (:mod:`repro.plugins.scriptlint`); users add
their own by passing instances to :class:`PluginRule`.
"""

from repro.plugins.base import ContentPlugin, PluginRule, default_plugins
from repro.plugins.csslint import CSSPlugin, parse_declarations, parse_stylesheet
from repro.plugins.scriptlint import ScriptPlugin

__all__ = [
    "ContentPlugin",
    "PluginRule",
    "default_plugins",
    "CSSPlugin",
    "ScriptPlugin",
    "parse_declarations",
    "parse_stylesheet",
]
