"""Script sanity plugin: catch mangled SCRIPT content.

Not a JavaScript parser -- in the weblint spirit it looks for the
mistakes copy-paste actually produces inside ``<script>`` elements:
unbalanced brackets and unterminated string literals.  String and comment
syntax is understood well enough that brackets inside them do not count.
"""

from __future__ import annotations

from repro.core.context import CheckContext
from repro.html.tokens import StartTag
from repro.plugins.base import ContentPlugin

_OPENERS = {"(": ")", "[": "]", "{": "}"}
_CLOSERS = {")": "(", "]": "[", "}": "{"}


def scan_script(text: str) -> list[tuple[int, str]]:
    """Return ``(line, problem)`` pairs for one script body."""
    problems: list[tuple[int, str]] = []
    stack: list[tuple[str, int]] = []
    line = 1
    index = 0
    length = len(text)
    in_string: str | None = None
    string_line = 1

    while index < length:
        char = text[index]
        if char == "\n":
            if in_string is not None and in_string != "`":
                problems.append(
                    (string_line, f"unterminated string ({in_string}...)")
                )
                in_string = None
            line += 1
            index += 1
            continue
        if in_string is not None:
            if char == "\\":
                index += 2
                continue
            if char == in_string:
                in_string = None
            index += 1
            continue
        if char in ("'", '"', "`"):
            in_string = char
            string_line = line
            index += 1
            continue
        if char == "/" and index + 1 < length:
            nxt = text[index + 1]
            if nxt == "/":
                newline = text.find("\n", index)
                index = length if newline == -1 else newline
                continue
            if nxt == "*":
                end = text.find("*/", index + 2)
                if end == -1:
                    problems.append((line, "unterminated /* comment"))
                    break
                line += text[index:end].count("\n")
                index = end + 2
                continue
        if char in _OPENERS:
            stack.append((char, line))
        elif char in _CLOSERS:
            if stack and stack[-1][0] == _CLOSERS[char]:
                stack.pop()
            else:
                problems.append((line, f"unmatched '{char}'"))
        index += 1

    if in_string is not None:
        problems.append((string_line, f"unterminated string ({in_string}...)"))
    for opener, opener_line in stack:
        problems.append((opener_line, f"'{opener}' never closed"))
    return problems


class ScriptPlugin(ContentPlugin):
    """The script sanity plugin."""

    name = "script"
    element_names = ("script",)

    def claims_element(self, element_name: str, tag: StartTag) -> bool:
        return element_name == "script" and tag.get("src") is None

    def check_content(
        self, context: CheckContext, content: str, start_line: int
    ) -> None:
        if not content.strip():
            return
        for line_offset, problem in scan_script(content):
            context.emit(
                "script-syntax",
                line=start_line + line_offset - 1,
                problem=problem,
            )
