"""CSS lint plugin: validate stylesheets and style attributes.

A CSS1 (plus common CSS2) checker in the weblint spirit: helpful
messages, no strict grammar.  It handles:

- ``<style>`` content: rule sets ``selector { declarations }``,
  ``/* comments */``, ``@import``/``@media`` at-rules (skipped),
  unbalanced braces;
- ``style="..."`` attribute values: bare declaration lists;
- declarations: unknown properties (with typo suggestions), missing
  colons, unknown colour keywords, malformed ``!important``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.context import CheckContext
from repro.html.spec import _edit_distance
from repro.html.tokens import StartTag
from repro.plugins.base import ContentPlugin

#: CSS1 properties plus the common CSS2 additions (visual media).
CSS_PROPERTIES = frozenset(
    {
        # fonts and text
        "font", "font-family", "font-size", "font-size-adjust",
        "font-stretch", "font-style", "font-variant", "font-weight",
        "color", "word-spacing", "letter-spacing", "text-decoration",
        "vertical-align", "text-transform", "text-align", "text-indent",
        "line-height", "white-space", "text-shadow", "direction",
        "unicode-bidi",
        # background
        "background", "background-color", "background-image",
        "background-repeat", "background-attachment", "background-position",
        # box model
        "margin", "margin-top", "margin-right", "margin-bottom",
        "margin-left", "padding", "padding-top", "padding-right",
        "padding-bottom", "padding-left",
        "border", "border-top", "border-right", "border-bottom",
        "border-left", "border-color", "border-style", "border-width",
        "border-top-width", "border-right-width", "border-bottom-width",
        "border-left-width", "border-top-color", "border-right-color",
        "border-bottom-color", "border-left-color", "border-top-style",
        "border-right-style", "border-bottom-style", "border-left-style",
        "width", "height", "min-width", "max-width", "min-height",
        "max-height", "float", "clear",
        # display and positioning
        "display", "position", "top", "right", "bottom", "left",
        "z-index", "overflow", "clip", "visibility", "cursor",
        # lists
        "list-style", "list-style-type", "list-style-image",
        "list-style-position", "marker-offset",
        # tables
        "table-layout", "border-collapse", "border-spacing",
        "caption-side", "empty-cells",
        # generated content, paging, outlines
        "content", "quotes", "counter-reset", "counter-increment",
        "outline", "outline-color", "outline-style", "outline-width",
        "page-break-before", "page-break-after", "page-break-inside",
        "orphans", "widows",
    }
)

#: Properties whose value names a colour.
COLOR_PROPERTIES = frozenset(
    {
        "color", "background-color", "border-color", "outline-color",
        "border-top-color", "border-right-color", "border-bottom-color",
        "border-left-color",
    }
)

CSS_COLOR_KEYWORDS = frozenset(
    {
        "aqua", "black", "blue", "fuchsia", "gray", "green", "lime",
        "maroon", "navy", "olive", "purple", "red", "silver", "teal",
        "white", "yellow", "orange", "transparent", "inherit",
    }
)

_HEX_COLOR = re.compile(r"^#(?:[0-9a-fA-F]{3}|[0-9a-fA-F]{6})$")
_FUNC_COLOR = re.compile(r"^rgb\(", re.IGNORECASE)
_COMMENT = re.compile(r"/\*.*?\*/", re.DOTALL)
_PROPERTY_NAME = re.compile(r"^-?[A-Za-z][A-Za-z0-9-]*$")


@dataclass(frozen=True)
class Declaration:
    """One ``property: value`` pair with its source line."""

    property: str
    value: str
    line: int
    important: bool = False


def _strip_comments(text: str) -> str:
    """Replace comments with spaces, preserving line structure."""
    def _blank(match: re.Match[str]) -> str:
        return re.sub(r"[^\n]", " ", match.group(0))
    return _COMMENT.sub(_blank, text)


def parse_declarations(
    text: str, start_line: int = 1
) -> tuple[list[Declaration], list[tuple[int, str]]]:
    """Parse a declaration list (the content of ``style="..."`` or a block).

    Returns ``(declarations, problems)`` where each problem is a
    ``(line, description)`` pair.
    """
    declarations: list[Declaration] = []
    problems: list[tuple[int, str]] = []
    text = _strip_comments(text)
    offset_line = start_line
    for chunk in text.split(";"):
        chunk_line = offset_line + _leading_newlines(chunk)
        offset_line += chunk.count("\n")
        body = chunk.strip()
        if not body:
            continue
        if ":" not in body:
            problems.append(
                (chunk_line, f'declaration "{_excerpt(body)}" has no ":"')
            )
            continue
        prop, _, value = body.partition(":")
        prop = prop.strip().lower()
        value = value.strip()
        important = False
        bang = value.rfind("!")
        if bang != -1:
            suffix = value[bang + 1 :].strip().lower()
            if suffix == "important":
                important = True
                value = value[:bang].strip()
            else:
                problems.append(
                    (chunk_line, f'bad "!{suffix}" (did you mean !important?)')
                )
                value = value[:bang].strip()
        if not _PROPERTY_NAME.match(prop):
            problems.append(
                (chunk_line, f'malformed property name "{_excerpt(prop)}"')
            )
            continue
        if not value:
            problems.append((chunk_line, f'property "{prop}" has no value'))
            continue
        declarations.append(
            Declaration(property=prop, value=value, line=chunk_line,
                        important=important)
        )
    return declarations, problems


def parse_stylesheet(
    text: str, start_line: int = 1
) -> tuple[list[Declaration], list[tuple[int, str]]]:
    """Parse full stylesheet text into declarations + problems."""
    declarations: list[Declaration] = []
    problems: list[tuple[int, str]] = []
    text = _strip_comments(text)

    depth = 0
    block_start = 0
    line = start_line
    selector_line = start_line
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char == "\n":
            line += 1
        elif char == "@":
            # Skip at-rules up to ';' or matching block.
            end = _skip_at_rule(text, index)
            line += text[index:end].count("\n")
            index = end
            continue
        elif char == "{":
            depth += 1
            if depth == 1:
                block_start = index + 1
                selector_line = line
            elif depth == 2:
                problems.append((line, "nested '{' in rule set"))
        elif char == "}":
            if depth == 0:
                problems.append((line, "unmatched '}'"))
            else:
                depth -= 1
                if depth == 0:
                    body = text[block_start:index]
                    decls, probs = parse_declarations(body, selector_line)
                    declarations.extend(decls)
                    problems.extend(probs)
        index += 1
    if depth > 0:
        problems.append((line, "unclosed '{' in stylesheet"))
    return declarations, problems


def _skip_at_rule(text: str, index: int) -> int:
    depth = 0
    for position in range(index, len(text)):
        char = text[position]
        if char == ";" and depth == 0:
            return position + 1
        if char == "{":
            depth += 1
        elif char == "}":
            depth -= 1
            if depth == 0:
                return position + 1
    return len(text)


def _leading_newlines(chunk: str) -> int:
    stripped = chunk.lstrip()
    return chunk[: len(chunk) - len(stripped)].count("\n")


def _excerpt(text: str, limit: int = 30) -> str:
    text = " ".join(text.split())
    return text if len(text) <= limit else text[: limit - 3] + "..."


def suggest_property(name: str) -> str | None:
    """Closest known property for a probable typo."""
    best, best_distance = None, 3
    for candidate in CSS_PROPERTIES:
        if abs(len(candidate) - len(name)) >= best_distance:
            continue
        distance = _edit_distance(name, candidate, best_distance)
        if distance < best_distance:
            best, best_distance = candidate, distance
    return best


class CSSPlugin(ContentPlugin):
    """The stylesheet validator plugin."""

    name = "css"
    element_names = ("style",)

    def claims_element(self, element_name: str, tag: StartTag) -> bool:
        if element_name != "style":
            return False
        type_attr = tag.get("type")
        return type_attr is None or type_attr.value.lower() in (
            "", "text/css"
        )

    def claims_attribute(self, element_name: str, attribute_name: str) -> bool:
        return attribute_name == "style"

    # -- checks -----------------------------------------------------------------

    def check_content(
        self, context: CheckContext, content: str, start_line: int
    ) -> None:
        declarations, problems = parse_stylesheet(content, start_line)
        self._report(context, declarations, problems)

    def check_attribute_value(
        self, context: CheckContext, value: str, line: int
    ) -> None:
        declarations, problems = parse_declarations(value, line)
        self._report(context, declarations, problems)

    def _report(
        self,
        context: CheckContext,
        declarations: list[Declaration],
        problems: list[tuple[int, str]],
    ) -> None:
        for line, problem in problems:
            context.emit("css-syntax", line=line, problem=problem)
        for declaration in declarations:
            if declaration.property not in CSS_PROPERTIES:
                candidate = suggest_property(declaration.property)
                suggestion = (
                    f' - did you mean "{candidate}"?' if candidate else ""
                )
                context.emit(
                    "css-unknown-property",
                    line=declaration.line,
                    property=declaration.property,
                    suggestion=suggestion,
                )
            elif declaration.property in COLOR_PROPERTIES:
                value = declaration.value.lower()
                if not (
                    value in CSS_COLOR_KEYWORDS
                    or _HEX_COLOR.match(value)
                    or _FUNC_COLOR.match(value)
                ):
                    context.emit(
                        "css-unknown-color",
                        line=declaration.line,
                        property=declaration.property,
                        value=_excerpt(declaration.value),
                    )
