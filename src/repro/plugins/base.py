"""Plugin protocol and the rule that drives plugins from the checker."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.context import CheckContext, OpenElement
from repro.core.rules.base import Rule
from repro.html.spec import ElementDef
from repro.html.tokens import EndTag, StartTag, Text


class ContentPlugin:
    """Base class for non-HTML content validators.

    A plugin can claim whole-element content (``claims_element``) and/or
    single attribute values (``claims_attribute``); the corresponding
    ``check_*`` method emits diagnostics through ``context.emit`` so the
    user's enable/disable configuration applies to plugin messages
    exactly like core ones.
    """

    name = "plugin"

    def claims_element(self, element_name: str, tag: StartTag) -> bool:
        return False

    def claims_attribute(self, element_name: str, attribute_name: str) -> bool:
        return False

    def check_content(
        self, context: CheckContext, content: str, start_line: int
    ) -> None:
        """Validate the text content of a claimed element."""

    def check_attribute_value(
        self, context: CheckContext, value: str, line: int
    ) -> None:
        """Validate a claimed attribute's value."""


class PluginRule(Rule):
    """Feeds claimed content to plugins as the token stream passes."""

    name = "plugins"

    def __init__(self, plugins: Optional[Sequence[ContentPlugin]] = None) -> None:
        self.plugins: list[ContentPlugin] = (
            list(plugins) if plugins is not None else default_plugins()
        )

    def start_document(self, context: CheckContext) -> None:
        # (plugin, element name, start line, buffered text parts)
        self._capturing: list[tuple[ContentPlugin, str, int, list[str]]] = []

    def handle_start_tag(
        self,
        context: CheckContext,
        tag: StartTag,
        elem: Optional[ElementDef],
    ) -> None:
        name = tag.lowered
        for plugin in self.plugins:
            for attr in tag.attributes:
                if attr.has_value and plugin.claims_attribute(name, attr.lowered):
                    plugin.check_attribute_value(
                        context, attr.value, attr.line or tag.line
                    )
            if plugin.claims_element(name, tag) and not tag.self_closing:
                self._capturing.append((plugin, name, tag.line, []))

    def handle_text(self, context: CheckContext, token: Text) -> None:
        for _plugin, _name, _line, parts in self._capturing:
            parts.append(token.text)

    def handle_element_closed(
        self,
        context: CheckContext,
        open_element: OpenElement,
        end_tag: Optional[EndTag],
        implicit: bool,
    ) -> None:
        remaining: list[tuple[ContentPlugin, str, int, list[str]]] = []
        for plugin, name, line, parts in self._capturing:
            if name == open_element.name:
                plugin.check_content(context, "".join(parts), line)
            else:
                remaining.append((plugin, name, line, parts))
        self._capturing = remaining

    def end_document(self, context: CheckContext) -> None:
        # Elements never closed still get their content checked.
        for plugin, _name, line, parts in self._capturing:
            plugin.check_content(context, "".join(parts), line)
        self._capturing = []


def default_plugins() -> list[ContentPlugin]:
    from repro.plugins.csslint import CSSPlugin
    from repro.plugins.scriptlint import ScriptPlugin

    return [CSSPlugin(), ScriptPlugin()]
