"""Plugin protocol and the rule that drives plugins from the checker."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.context import CheckContext, OpenElement
from repro.core.rules.base import Rule
from repro.html.spec import ElementDef
from repro.html.tokens import EndTag, StartTag, Text


class ContentPlugin:
    """Base class for non-HTML content validators.

    A plugin can claim whole-element content (``claims_element``) and/or
    single attribute values (``claims_attribute``); the corresponding
    ``check_*`` method emits diagnostics through ``context.emit`` so the
    user's enable/disable configuration applies to plugin messages
    exactly like core ones.
    """

    name = "plugin"

    #: Static hint: the element names ``claims_element`` may ever return
    #: True for, used to narrow the dispatch table's element-closed
    #: fan-out.  ``None`` means "unknown" and keeps the wildcard, so
    #: existing third-party plugins stay correct without changes.
    element_names: Optional[tuple[str, ...]] = None

    def claims_element(self, element_name: str, tag: StartTag) -> bool:
        return False

    def claims_attribute(self, element_name: str, attribute_name: str) -> bool:
        return False

    def check_content(
        self, context: CheckContext, content: str, start_line: int
    ) -> None:
        """Validate the text content of a claimed element."""

    def check_attribute_value(
        self, context: CheckContext, value: str, line: int
    ) -> None:
        """Validate a claimed attribute's value."""


class PluginRule(Rule):
    """Feeds claimed content to plugins as the token stream passes.

    Capture state lives in ``context.scratch`` (one list per check), so
    a single PluginRule instance safely serves interleaved checks.
    """

    name = "plugins"
    # Attribute claims (style="...") can sit on any element, so start
    # tags stay wildcard; element-closed narrows to the plugins' static
    # claims via subscriptions() below.
    subscribes = {
        "start_document": True,
        "handle_start_tag": "*",
        "handle_text": True,
        "handle_element_closed": "*",
        "end_document": True,
    }

    def __init__(self, plugins: Optional[Sequence[ContentPlugin]] = None) -> None:
        self.plugins: list[ContentPlugin] = (
            list(plugins) if plugins is not None else default_plugins()
        )

    def subscriptions(self, spec=None, options=None):
        resolved = super().subscriptions(spec, options)
        claimed: set[str] = set()
        for plugin in self.plugins:
            if plugin.element_names is None:
                return resolved  # unknown claims: keep the wildcard
            claimed.update(name.lower() for name in plugin.element_names)
        if claimed:
            resolved["handle_element_closed"] = frozenset(claimed)
        else:
            resolved.pop("handle_element_closed", None)
        return resolved

    # -- capture state -----------------------------------------------------

    #: scratch entries: (plugin, element name, start line, buffered text)
    def _capturing(
        self, context: CheckContext
    ) -> list[tuple[ContentPlugin, str, int, list[str]]]:
        captures = context.scratch.get(self.name)
        if captures is None:
            captures = context.scratch[self.name] = []
        return captures

    def start_document(self, context: CheckContext) -> None:
        context.scratch[self.name] = []

    def handle_start_tag(
        self,
        context: CheckContext,
        tag: StartTag,
        elem: Optional[ElementDef],
    ) -> None:
        name = tag.lowered
        captures = self._capturing(context)
        for plugin in self.plugins:
            for attr in tag.attributes:
                if attr.has_value and plugin.claims_attribute(name, attr.lowered):
                    plugin.check_attribute_value(
                        context, attr.value, attr.line or tag.line
                    )
            if plugin.claims_element(name, tag) and not tag.self_closing:
                captures.append((plugin, name, tag.line, []))

    def handle_text(self, context: CheckContext, token: Text) -> None:
        for _plugin, _name, _line, parts in self._capturing(context):
            parts.append(token.text)

    def handle_element_closed(
        self,
        context: CheckContext,
        open_element: OpenElement,
        end_tag: Optional[EndTag],
        implicit: bool,
    ) -> None:
        captures = self._capturing(context)
        remaining: list[tuple[ContentPlugin, str, int, list[str]]] = []
        for plugin, name, line, parts in captures:
            if name == open_element.name:
                plugin.check_content(context, "".join(parts), line)
            else:
                remaining.append((plugin, name, line, parts))
        context.scratch[self.name] = remaining

    def end_document(self, context: CheckContext) -> None:
        # Elements never closed still get their content checked.
        for plugin, _name, line, parts in self._capturing(context):
            plugin.check_content(context, "".join(parts), line)
        context.scratch[self.name] = []


def default_plugins() -> list[ContentPlugin]:
    from repro.plugins.csslint import CSSPlugin
    from repro.plugins.scriptlint import ScriptPlugin

    return [CSSPlugin(), ScriptPlugin()]
