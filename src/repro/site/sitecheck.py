"""The -R whole-site checker.

Runs weblint over every HTML file under a root directory and adds the
site-level analyses the paper attaches to the ``-R`` switch:

- ``directory-index``: directories without an index file;
- ``orphan-page``: pages no other checked page links to;
- ``bad-link``: relative links whose target file does not exist.

External (``http:`` ...) links are left to the poacher robot by default
-- exactly the division of labour the paper describes between ``-R``
and the robot.  Pass a ``UserAgent`` (ideally one with a
:class:`~repro.www.client.RetryPolicy`) as ``agent=`` and the site
check HEAD-validates external links too, through the same resilient
fetch path the robot uses.
"""

from __future__ import annotations

import time
from array import array
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.config.options import Options
from repro.core.diagnostics import Diagnostic
from repro.core.linter import Weblint
from repro.core.service import LintRequest, LintService, PathSource, StringSource
from repro.site.links import Link, extract_anchor_names, extract_links
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.site.orphans import build_incoming_counts, find_orphans
from repro.site.rollup import PageSpill, SiteRollup
from repro.site.walker import find_html_files, has_index_file, iter_directories


@dataclass
class SiteReport:
    """Everything the site check found."""

    root: str
    pages: list[str] = field(default_factory=list)
    page_diagnostics: dict[str, list[Diagnostic]] = field(default_factory=dict)
    site_diagnostics: list[Diagnostic] = field(default_factory=list)
    link_graph: list[tuple[str, str]] = field(default_factory=list)
    #: Error strings for pages that could not be read; they do not abort
    #: the site check and are excluded from ``pages``.
    page_errors: list[str] = field(default_factory=list)

    def all_diagnostics(self) -> list[Diagnostic]:
        result: list[Diagnostic] = []
        for page in self.pages:
            result.extend(self.page_diagnostics.get(page, []))
        result.extend(self.site_diagnostics)
        return result

    def count(self, message_id: Optional[str] = None) -> int:
        diagnostics = self.all_diagnostics()
        if message_id is None:
            return len(diagnostics)
        return sum(1 for d in diagnostics if d.message_id == message_id)

    def pages_with_problems(self) -> list[str]:
        return [
            page
            for page in self.pages
            if self.page_diagnostics.get(page)
        ]

    def navigation(self, root: Optional[str] = None) -> "NavigationReport":
        """Navigational analysis over the site's link graph.

        ``root`` defaults to the first index page found (users enter a
        site at its index), falling back to the first page checked.
        """
        from repro.site.navigation import NavigationReport, analyse_navigation

        if root is None:
            root = next(
                (page for page in self.pages
                 if page.rsplit("/", 1)[-1].startswith("index.")),
                self.pages[0] if self.pages else "",
            )
        return analyse_navigation(self.pages, self.link_graph, root=root)


class SiteChecker:
    """Check a directory tree of HTML pages."""

    def __init__(
        self,
        weblint: Optional[Weblint] = None,
        options: Optional[Options] = None,
        service: Optional[LintService] = None,
        jobs: int = 1,
        agent=None,
    ) -> None:
        if service is None:
            if weblint is not None:
                service = weblint.service
            else:
                service = LintService(options=options)
        self.service = service
        self.weblint = weblint
        self.options = service.options
        self.jobs = jobs
        #: Optional UserAgent; when set, external links are validated.
        self.agent = agent

    # -- main entry point -------------------------------------------------------

    def check_directory(self, root: Union[str, Path]) -> SiteReport:
        root = Path(root)
        report = SiteReport(root=str(root))
        registry = get_registry()
        tracer = get_tracer()
        start = time.perf_counter()
        with tracer.span("site.check", root=str(root)):
            files = find_html_files(root)
            page_links: dict[str, list[Link]] = {}

            # One batch through the lint pipeline (parallel when jobs > 1).
            # keep_text shares the single read between linting and link
            # extraction; an unreadable page becomes a structured error
            # instead of aborting the whole site check.
            requests = [
                LintRequest(PathSource(path), keep_text=True) for path in files
            ]
            results = self.service.check_many(requests, jobs=self.jobs)
            for path, result in zip(files, results):
                if result.error is not None:
                    report.page_errors.append(result.error)
                    continue
                relative = _relative_name(path, root)
                report.pages.append(relative)
                report.page_diagnostics[relative] = result.diagnostics
                registry.inc("site.files.checked")
                page_links[relative] = extract_links(result.text or "")

            with tracer.span("site.analyses", pages=len(report.pages)):
                self._check_directory_indexes(root, report)
                self._check_local_links(root, report, page_links)
                self._check_external_links(report, page_links)
                self._check_orphans(root, report, page_links)
        registry.observe("site.check_ms", (time.perf_counter() - start) * 1000.0)
        return report

    def check_pages(
        self,
        pages,
        root: str = "stream",
        rollup: Optional[SiteRollup] = None,
        spill: Optional[PageSpill] = None,
    ) -> Union[SiteReport, SiteRollup]:
        """Streaming site check over an iterable of ``(name, text)`` pairs.

        The streamed counterpart of :meth:`check_directory`, for pages
        that arrive one at a time -- e.g. fed out of a crawl frontier
        as each fetch completes.  Each page is linted the moment it
        arrives; the site-level analyses that need the complete page
        set (``bad-link``, ``bad-fragment``, ``orphan-page``) resolve
        once the stream ends.  Link targets resolve against the page
        *names* (no filesystem), so the same report comes out whether
        the pages were walked from disk or streamed from a crawl.

        Two memory regimes:

        - Default: returns a fully materialised :class:`SiteReport`
          (every page's diagnostics and links held until the end).
        - ``rollup=``: the memory-bounded audit path.  Each page's
          diagnostics are tallied into the given
          :class:`~repro.site.rollup.SiteRollup` (and spilled to
          ``spill`` when given) the moment the page resolves; links are
          kept only until both endpoints are known, and the link graph
          is a compact integer adjacency.  Returns the rollup, which
          renders an identical summary to
          ``SiteRollup.from_report(<the SiteReport>)``.
        """
        if rollup is not None:
            return self._check_pages_rollup(pages, root, rollup, spill)
        report = SiteReport(root=str(root))
        registry = get_registry()
        tracer = get_tracer()
        start = time.perf_counter()
        page_links: dict[str, list[Link]] = {}
        page_anchors: dict[str, set[str]] = {}
        with tracer.span("site.check_stream", root=str(root)):
            for name, text in pages:
                result = self.service.check(StringSource(text, name=name))
                if result.error is not None:
                    report.page_errors.append(result.error)
                    continue
                report.pages.append(name)
                report.page_diagnostics[name] = result.diagnostics
                registry.inc("site.files.checked")
                page_links[name] = extract_links(text)
                page_anchors[name] = extract_anchor_names(text)
            report.pages.sort()
            with tracer.span("site.analyses", pages=len(report.pages)):
                self._check_streamed_links(report, page_links, page_anchors)
                self._check_streamed_orphans(report, page_links)
        registry.observe(
            "site.check_ms", (time.perf_counter() - start) * 1000.0
        )
        return report

    def _check_pages_rollup(
        self,
        pages,
        root: str,
        rollup: SiteRollup,
        spill: Optional[PageSpill],
    ) -> SiteRollup:
        """The memory-bounded streamed check (see :meth:`check_pages`)."""
        registry = get_registry()
        tracer = get_tracer()
        start = time.perf_counter()
        follow = self.options.follow_links
        state = _StreamState()
        with tracer.span("site.check_stream", root=str(root)):
            for name, text in pages:
                result = self.service.check(StringSource(text, name=name))
                if result.error is not None:
                    rollup.note_page_error()
                    if spill is not None:
                        spill.write_page(name, (), error=result.error)
                    continue
                registry.inc("site.files.checked")
                rollup.count_diagnostics(result.diagnostics)
                # Only pages with problems take a counter slot: on a
                # mostly-clean site the table stays near-empty.
                if result.diagnostics:
                    state.problem_counts[name] = len(result.diagnostics)
                if spill is not None:
                    spill.write_page(name, result.diagnostics)
                self._stream_page(
                    state,
                    name,
                    extract_links(text),
                    extract_anchor_names(text),
                    follow,
                )
            with tracer.span("site.analyses", pages=len(state.names)):
                self._finish_stream(state, rollup, spill, follow)
        registry.observe(
            "site.check_ms", (time.perf_counter() - start) * 1000.0
        )
        return rollup

    def _stream_page(
        self,
        state: "_StreamState",
        page: str,
        links: list[Link],
        anchors: set[str],
        follow: bool,
    ) -> None:
        """Fold one arrived page into the bounded cross-page state."""
        page_id = state.add_page(page, anchors)

        # Everything parked waiting for this page can now resolve: the
        # links are not broken (and are dropped), deferred fragments
        # check against the real anchor set, graph edges materialise.
        state.pending_links.pop(page, None)
        for source, line, url, fragment in state.pending_fragments.pop(
            page, ()
        ):
            if fragment not in anchors:
                state.find(self._make_site_diagnostic(
                    "bad-fragment",
                    filename=source,
                    line=line,
                    target=url.split("#", 1)[0] or "this page",
                    fragment=fragment,
                ))
        for source_id in state.pending_edges.pop(page, ()):
            state.add_edge(source_id, page_id)

        for link in links:
            if follow and not link.scheme:
                self._stream_link_check(state, page, link, anchors)
            # The graph channel (navigation + orphans) runs regardless
            # of follow_links, mirroring the buffered streamed check.
            if link.scheme or link.is_fragment_only:
                continue
            target_text = link.url.split("#", 1)[0].split("?", 1)[0]
            if not target_text:
                continue
            target = _resolve_streamed_target(page, target_text)
            target_id = state.known.get(target)
            if target_id is not None:
                state.add_edge(page_id, target_id)
            else:
                state.pending_edges.setdefault(target, []).append(page_id)

    def _stream_link_check(
        self,
        state: "_StreamState",
        page: str,
        link: Link,
        anchors: set[str],
    ) -> None:
        """bad-link / bad-fragment for one link, resolved or parked."""
        target_text, _, fragment = link.url.partition("#")
        if not target_text:
            # Same-page fragment: #section must exist here.
            if fragment and fragment not in anchors:
                state.find(self._make_site_diagnostic(
                    "bad-fragment",
                    filename=page,
                    line=link.line,
                    target="this page",
                    fragment=fragment,
                ))
            return
        target = _resolve_streamed_target(page, target_text)
        if target in state.known:
            if fragment and fragment not in state.anchors.get(target, ()):
                state.find(self._make_site_diagnostic(
                    "bad-fragment",
                    filename=page,
                    line=link.line,
                    target=link.url.split("#", 1)[0] or "this page",
                    fragment=fragment,
                ))
            return
        state.pending_links.setdefault(target, []).append(
            (page, link.line, link.url)
        )
        if fragment:
            state.pending_fragments.setdefault(target, []).append(
                (page, link.line, link.url, fragment)
            )

    def _finish_stream(
        self,
        state: "_StreamState",
        rollup: SiteRollup,
        spill: Optional[PageSpill],
        follow: bool,
    ) -> None:
        """End-of-stream analyses: broken links, orphans, navigation."""
        from repro.site.navigation import analyse_navigation

        # Links whose target never arrived are broken.  The buffered
        # check's elif means a missing target suppresses its fragment
        # check, so leftover pending fragments are simply dropped.
        if follow:
            for target in sorted(state.pending_links):
                for source, line, url in state.pending_links[target]:
                    state.find(self._make_site_diagnostic(
                        "bad-link",
                        filename=source,
                        line=line,
                        target=url,
                        status="page not found",
                    ))
        state.pending_links.clear()
        state.pending_fragments.clear()
        state.pending_edges.clear()

        pages_sorted = sorted(state.known)
        incoming = build_incoming_counts(state.edge_pairs())
        roots = [
            page
            for page in pages_sorted
            if page.rsplit("/", 1)[-1] in self.options.index_filenames
        ]
        for orphan in find_orphans(pages_sorted, incoming, roots=roots):
            state.find(self._make_site_diagnostic(
                "orphan-page", filename=orphan, page=orphan
            ))
        # The incoming-count table is orphan-analysis scratch; release
        # it before the navigation pass allocates its own O(pages)
        # structures, so the two never stack on the high-water mark.
        del incoming

        # Fold the analysis findings in deterministically: every one
        # attaches to the page it names, exactly like the buffered
        # check's attach_to.
        findings = sorted(state.findings, key=Diagnostic.sort_key)
        rollup.count_diagnostics(findings)
        for diagnostic in findings:
            state.problem_counts[diagnostic.filename] = (
                state.problem_counts.get(diagnostic.filename, 0) + 1
            )
        if spill is not None and findings:
            by_page: dict[str, list[Diagnostic]] = {}
            for diagnostic in findings:
                by_page.setdefault(diagnostic.filename, []).append(diagnostic)
            for page in sorted(by_page):
                spill.write_page(page, by_page[page], phase="site")
        for page in pages_sorted:
            rollup.note_page(page, state.problem_counts.get(page, 0))
        rollup.note_links(state.edges)
        if pages_sorted:
            nav_root = next(
                (page for page in pages_sorted
                 if page.rsplit("/", 1)[-1].startswith("index.")),
                pages_sorted[0],
            )
            navigation = analyse_navigation(
                pages_sorted, state.edge_pairs(), root=nav_root
            )
            rollup.navigation_lines = navigation.summary_lines()

    # -- site-level checks ----------------------------------------------------------

    def _make_site_diagnostic(
        self,
        message_id: str,
        *,
        filename: str,
        line: int = 0,
        **arguments: object,
    ) -> Optional[Diagnostic]:
        """Build one site-analysis diagnostic, or ``None`` if disabled."""
        if not self.options.is_enabled(message_id):
            return None
        diagnostic = Diagnostic.build(
            message_id, line=line, filename=filename, **arguments
        )
        get_registry().inc(f"site.diagnostics.{diagnostic.category.value}")
        return diagnostic

    def _emit(
        self,
        report: SiteReport,
        message_id: str,
        *,
        filename: str,
        line: int = 0,
        attach_to: Optional[str] = None,
        **arguments: object,
    ) -> None:
        diagnostic = self._make_site_diagnostic(
            message_id, filename=filename, line=line, **arguments
        )
        if diagnostic is None:
            return
        if attach_to is not None:
            report.page_diagnostics.setdefault(attach_to, []).append(diagnostic)
        else:
            report.site_diagnostics.append(diagnostic)

    def _check_directory_indexes(self, root: Path, report: SiteReport) -> None:
        expected = ", ".join(self.options.index_filenames)
        for directory in iter_directories(root):
            # Only directories that actually hold pages need an index.
            holds_pages = any(
                child.suffix.lower() in (".html", ".htm", ".shtml", ".xhtml")
                for child in directory.iterdir()
                if child.is_file()
            )
            if not holds_pages:
                continue
            if not has_index_file(directory, tuple(self.options.index_filenames)):
                self._emit(
                    report,
                    "directory-index",
                    filename=str(directory),
                    directory=_relative_name(directory, root) or ".",
                    expected=expected,
                )

    def _check_local_links(
        self,
        root: Path,
        report: SiteReport,
        page_links: dict[str, list[Link]],
    ) -> None:
        if not self.options.follow_links:
            return
        anchor_cache: dict[str, set[str]] = {}
        for page, links in page_links.items():
            page_path = root / page
            for link in links:
                if link.scheme:
                    continue  # external links are the robot's job
                target_text, _, fragment = link.url.partition("#")
                if not target_text:
                    # Same-page fragment: #section must exist here.
                    if fragment:
                        self._check_fragment(
                            report, page, link, page_path, fragment,
                            anchor_cache,
                        )
                    continue
                if target_text.startswith("/"):
                    target = root / target_text.lstrip("/")
                else:
                    target = page_path.parent / target_text
                try:
                    resolved = target.resolve()
                except OSError:  # pragma: no cover - pathological names
                    resolved = target
                if not resolved.exists():
                    self._emit(
                        report,
                        "bad-link",
                        filename=page,
                        line=link.line,
                        attach_to=page,
                        target=link.url,
                        status="file not found",
                    )
                elif fragment and resolved.is_file():
                    self._check_fragment(
                        report, page, link, resolved, fragment, anchor_cache
                    )

    def _check_external_links(
        self,
        report: SiteReport,
        page_links: dict[str, list[Link]],
    ) -> None:
        """HEAD-validate absolute ``http(s):`` links via ``self.agent``.

        Uses the robot's :class:`LinkChecker` (one cached HEAD per
        unique URL across the whole site), so a retry policy or circuit
        breaker configured on the agent protects the site check too.
        """
        if self.agent is None or not self.options.follow_links:
            return
        from repro.robot.linkcheck import LinkChecker

        checker = LinkChecker(self.agent)
        for page, links in sorted(page_links.items()):
            for link in links:
                if link.scheme not in ("http", "https") or not link.checkable:
                    continue
                status = checker.check(link.url, link.url)
                if status.broken:
                    self._emit(
                        report,
                        "bad-link",
                        filename=page,
                        line=link.line,
                        attach_to=page,
                        target=link.url,
                        status=status.describe(),
                    )
        get_registry().inc("site.external_links.checked", checker.checked_count)

    def _check_fragment(
        self,
        report: SiteReport,
        page: str,
        link: Link,
        target_path: Path,
        fragment: str,
        anchor_cache: dict[str, set[str]],
    ) -> None:
        """Does ``target_path`` define the anchor ``fragment``?"""
        key = str(target_path)
        if key not in anchor_cache:
            try:
                source = target_path.read_text(
                    encoding="utf-8", errors="replace"
                )
            except OSError:
                anchor_cache[key] = set()
            else:
                anchor_cache[key] = extract_anchor_names(source)
        if fragment not in anchor_cache[key]:
            self._emit(
                report,
                "bad-fragment",
                filename=page,
                line=link.line,
                attach_to=page,
                target=link.url.split("#", 1)[0] or "this page",
                fragment=fragment,
            )

    def _check_streamed_links(
        self,
        report: SiteReport,
        page_links: dict[str, list[Link]],
        page_anchors: dict[str, set[str]],
    ) -> None:
        """bad-link / bad-fragment against the streamed page set."""
        if not self.options.follow_links:
            return
        known = set(report.pages)
        for page in report.pages:
            for link in page_links.get(page, []):
                if link.scheme:
                    continue  # external links are the robot's job
                target_text, _, fragment = link.url.partition("#")
                if not target_text:
                    if fragment and fragment not in page_anchors.get(
                        page, set()
                    ):
                        self._emit(
                            report,
                            "bad-fragment",
                            filename=page,
                            line=link.line,
                            attach_to=page,
                            target="this page",
                            fragment=fragment,
                        )
                    continue
                target = _resolve_streamed_target(page, target_text)
                if target not in known:
                    self._emit(
                        report,
                        "bad-link",
                        filename=page,
                        line=link.line,
                        attach_to=page,
                        target=link.url,
                        status="page not found",
                    )
                elif fragment and fragment not in page_anchors.get(
                    target, set()
                ):
                    self._emit(
                        report,
                        "bad-fragment",
                        filename=page,
                        line=link.line,
                        attach_to=page,
                        target=link.url.split("#", 1)[0] or "this page",
                        fragment=fragment,
                    )

    def _check_streamed_orphans(
        self,
        report: SiteReport,
        page_links: dict[str, list[Link]],
    ) -> None:
        edges: list[tuple[str, str]] = []
        known = set(report.pages)
        for page in report.pages:
            for link in page_links.get(page, []):
                if link.scheme or link.is_fragment_only:
                    continue
                target_text = link.url.split("#", 1)[0].split("?", 1)[0]
                if not target_text:
                    continue
                target = _resolve_streamed_target(page, target_text)
                if target in known:
                    edges.append((page, target))
                    report.link_graph.append((page, target))
        incoming = build_incoming_counts(edges)
        roots = [
            page
            for page in report.pages
            if page.rsplit("/", 1)[-1] in self.options.index_filenames
        ]
        for orphan in find_orphans(report.pages, incoming, roots=roots):
            self._emit(
                report,
                "orphan-page",
                filename=orphan,
                attach_to=orphan,
                page=orphan,
            )

    def _check_orphans(
        self,
        root: Path,
        report: SiteReport,
        page_links: dict[str, list[Link]],
    ) -> None:
        edges: list[tuple[str, str]] = []
        known = set(report.pages)
        for page, links in page_links.items():
            page_path = root / page
            for link in links:
                if link.scheme or link.is_fragment_only:
                    continue
                target_text = link.url.split("#", 1)[0].split("?", 1)[0]
                if not target_text:
                    continue
                if target_text.startswith("/"):
                    candidate = (root / target_text.lstrip("/"))
                else:
                    candidate = page_path.parent / target_text
                if candidate.is_dir():
                    for index_name in self.options.index_filenames:
                        if (candidate / index_name).is_file():
                            candidate = candidate / index_name
                            break
                try:
                    relative = _relative_name(candidate.resolve(), root.resolve())
                except ValueError:
                    continue  # points outside the site
                if relative in known:
                    edges.append((page, relative))
                    report.link_graph.append((page, relative))

        incoming = build_incoming_counts(edges)
        roots = [
            _relative_name(root / name, root)
            for name in self.options.index_filenames
            if (root / name).is_file()
        ]
        for orphan in find_orphans(report.pages, incoming, roots=roots):
            self._emit(
                report,
                "orphan-page",
                filename=orphan,
                attach_to=orphan,
                page=orphan,
            )


class _StreamState:
    """Bounded cross-page state for the rollup-mode streamed check.

    The buffered streamed check holds every page's :class:`Link`
    objects until the end; at audit scale that list *is* the memory
    wall.  This state resolves each link the moment both endpoints are
    known and parks the rest in pending tables keyed by target, so
    steady-state memory is the page-name set, a compact integer link
    graph (for the navigation and orphan analyses) and the
    currently-unresolved links -- not the full link list.
    """

    def __init__(self) -> None:
        self.known: dict[str, int] = {}  # page name -> interned id
        self.names: list[str] = []
        #: The link graph as a flat (source id, target id) pair array:
        #: 8 bytes per edge instead of a Python list per page.
        self.edge_ids = array("L")
        self.edges = 0
        #: Anchor-name sets, kept only when non-empty (absent == empty).
        self.anchors: dict[str, set[str]] = {}
        #: target -> [(source, line, url)] for links whose target page
        #: has not arrived yet; leftovers at the end are broken links.
        self.pending_links: dict[str, list[tuple[str, int, str]]] = {}
        #: target -> [(source, line, url, fragment)] fragment checks
        #: deferred until the target's anchors are known.
        self.pending_fragments: dict[
            str, list[tuple[str, int, str, str]]
        ] = {}
        #: target -> [source ids] graph edges awaiting their endpoint.
        self.pending_edges: dict[str, list[int]] = {}
        self.problem_counts: dict[str, int] = {}
        #: Analysis-phase diagnostics (bounded by the problem count).
        self.findings: list[Diagnostic] = []

    def add_page(self, page: str, anchors: set[str]) -> int:
        page_id = self.known.get(page)
        if page_id is None:
            page_id = len(self.names)
            self.known[page] = page_id
            self.names.append(page)
        if anchors:
            self.anchors[page] = anchors
        return page_id

    def add_edge(self, source_id: int, target_id: int) -> None:
        self.edge_ids.append(source_id)
        self.edge_ids.append(target_id)
        self.edges += 1

    def find(self, diagnostic: Optional[Diagnostic]) -> None:
        if diagnostic is not None:
            self.findings.append(diagnostic)

    def edge_pairs(self):
        """The materialised edges as ``(source, target)`` name pairs."""
        ids = self.edge_ids
        for index in range(0, len(ids), 2):
            yield self.names[ids[index]], self.names[ids[index + 1]]


def _relative_name(path: Path, root: Path) -> str:
    return str(path.relative_to(root)).replace("\\", "/")


def _resolve_streamed_target(page: str, target: str) -> str:
    """Resolve ``target`` against page name ``page``, filesystem-free."""
    if target.startswith("/"):
        combined = target.lstrip("/")
    else:
        base = page.rsplit("/", 1)[0] if "/" in page else ""
        combined = f"{base}/{target}" if base else target
    parts: list[str] = []
    for piece in combined.split("/"):
        if piece in ("", "."):
            continue
        if piece == "..":
            if parts:
                parts.pop()
            continue
        parts.append(piece)
    return "/".join(parts)
