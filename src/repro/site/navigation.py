"""Navigational analysis of a site's link graph.

Paper section 3.5 notes that smarter robots "generate navigational
analysis of your site", and section 2 asks "How easy is your site to
navigate?  It is important to remember that users may jump to arbitrary
pages on your site".  This module answers those questions over the link
graph the site checker (or poacher) has already built:

- click depth of every page from the entry point (BFS);
- pages unreachable by browsing at all;
- dead ends (pages with no outgoing links -- the user must use Back);
- the most-linked pages (navigation hubs);
- depth distribution and the deepest pages.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Optional


@dataclass
class NavigationReport:
    """Everything the analysis computed."""

    root: str
    depths: dict[str, int] = field(default_factory=dict)
    unreachable: list[str] = field(default_factory=list)
    dead_ends: list[str] = field(default_factory=list)
    incoming: dict[str, int] = field(default_factory=dict)

    @property
    def max_depth(self) -> int:
        return max(self.depths.values(), default=0)

    @property
    def average_depth(self) -> float:
        if not self.depths:
            return 0.0
        return sum(self.depths.values()) / len(self.depths)

    def pages_at_depth(self, depth: int) -> list[str]:
        return sorted(
            page for page, d in self.depths.items() if d == depth
        )

    def depth_histogram(self) -> dict[int, int]:
        histogram: dict[int, int] = {}
        for depth in self.depths.values():
            histogram[depth] = histogram.get(depth, 0) + 1
        return dict(sorted(histogram.items()))

    def hubs(self, count: int = 5) -> list[tuple[str, int]]:
        """The most-linked pages, best first."""
        ranked = sorted(
            self.incoming.items(), key=lambda item: (-item[1], item[0])
        )
        return ranked[:count]

    def summary_lines(self) -> list[str]:
        lines = [
            f"navigation analysis from {self.root}:",
            f"  reachable pages: {len(self.depths)} "
            f"(max depth {self.max_depth}, "
            f"average {self.average_depth:.1f} clicks)",
        ]
        for depth, count in self.depth_histogram().items():
            lines.append(f"    depth {depth}: {count} page(s)")
        if self.unreachable:
            lines.append(
                f"  unreachable by browsing: {', '.join(self.unreachable)}"
            )
        if self.dead_ends:
            lines.append(f"  dead ends: {', '.join(self.dead_ends)}")
        hubs = [f"{page} ({count})" for page, count in self.hubs(3) if count]
        if hubs:
            lines.append(f"  most linked: {', '.join(hubs)}")
        return lines


def analyse_navigation(
    pages: Iterable[str],
    edges: Iterable[tuple[str, str]],
    root: Optional[str] = None,
) -> NavigationReport:
    """BFS the link graph from ``root`` (default: first page).

    ``edges`` are (source, target) pairs between page identifiers; pages
    not present in ``pages`` are ignored.
    """
    page_list = list(pages)
    page_set = set(page_list)
    adjacency: dict[str, list[str]] = {page: [] for page in page_list}
    incoming: dict[str, int] = {page: 0 for page in page_list}
    for source, target in edges:
        if source in page_set and target in page_set:
            adjacency[source].append(target)
            if source != target:
                incoming[target] += 1

    if root is None:
        root = page_list[0] if page_list else ""
    report = NavigationReport(root=root, incoming=incoming)
    if root not in page_set:
        report.unreachable = sorted(page_set)
        return report

    depths: dict[str, int] = {root: 0}
    frontier: deque[str] = deque([root])
    while frontier:
        page = frontier.popleft()
        for target in adjacency[page]:
            if target not in depths:
                depths[target] = depths[page] + 1
                frontier.append(target)
    report.depths = depths
    report.unreachable = sorted(page_set - set(depths))
    report.dead_ends = sorted(
        page
        for page in depths
        if not any(target != page for target in adjacency[page])
    )
    return report
