"""Whole-site checking -- the ``-R`` switch.

Paper section 4.5: "The -R switch instructs weblint to recurse in all
directories in the local filesystem, so that a set of pages or entire
site can be checked with one command.  The switch also enables additional
warnings, checking whether directories have index files, and reporting
orphan pages (which are not referred to by any other page checked)."

- :mod:`repro.site.links` -- extract hyperlinks and resource references
  from a token stream;
- :mod:`repro.site.walker` -- find the HTML pages under a directory;
- :mod:`repro.site.orphans` -- orphan computation over the link graph;
- :mod:`repro.site.sitecheck` -- :class:`SiteChecker` tying it together:
  per-page lint, directory index checks, orphan pages, and local link
  validation (``bad-link``).
"""

from repro.site.links import Link, extract_links
from repro.site.orphans import find_orphans
from repro.site.sitecheck import SiteChecker, SiteReport
from repro.site.walker import find_html_files, iter_directories

__all__ = [
    "Link",
    "extract_links",
    "find_html_files",
    "iter_directories",
    "find_orphans",
    "SiteChecker",
    "SiteReport",
]
