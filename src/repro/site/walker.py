"""Filesystem walking for the -R site check."""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from repro.core import constants


def find_html_files(root: Path | str) -> list[Path]:
    """All HTML files under ``root``, sorted for deterministic reports."""
    root = Path(root)
    if root.is_file():
        return [root]
    files = [
        path
        for path in root.rglob("*")
        if path.is_file() and path.suffix.lower() in constants.HTML_EXTENSIONS
    ]
    return sorted(files)


def iter_directories(root: Path | str) -> Iterator[Path]:
    """``root`` and every directory below it, sorted."""
    root = Path(root)
    if not root.is_dir():
        return
    yield root
    for path in sorted(p for p in root.rglob("*") if p.is_dir()):
        yield path


def has_index_file(directory: Path, index_filenames: tuple[str, ...]) -> bool:
    return any((directory / name).is_file() for name in index_filenames)
