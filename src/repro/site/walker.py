"""Filesystem walking for the -R site check.

Contract (shared by :func:`find_html_files` and :func:`iter_directories`,
and relied on by :class:`~repro.site.sitecheck.SiteChecker`):

- A *file* root is the degenerate one-page site: ``find_html_files``
  returns ``[root]`` and ``iter_directories`` yields nothing (a file has
  no directories to index-check).
- A missing root behaves like an empty site: both return/yield nothing
  rather than raising.
- Unreadable directories are *skipped*, never fatal: one permission
  error must not abort a whole-site check mid-walk.
- Results are sorted, so reports are deterministic across filesystems.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterator

from repro.core import constants
from repro.obs.metrics import get_registry


def _walk(root: Path) -> Iterator[tuple[Path, list[str], list[str]]]:
    """``os.walk`` with unreadable directories skipped, sorted entries."""
    for dirpath, dirnames, filenames in os.walk(root, onerror=lambda _error: None):
        dirnames.sort()
        yield Path(dirpath), dirnames, sorted(filenames)


def find_html_files(root: Path | str) -> list[Path]:
    """All HTML files under ``root``, sorted for deterministic reports.

    See the module docstring for the file/missing/unreadable contract.
    """
    root = Path(root)
    if root.is_file():
        return [root]
    files: list[Path] = []
    for directory, _subdirs, filenames in _walk(root):
        for filename in filenames:
            path = directory / filename
            if path.suffix.lower() in constants.HTML_EXTENSIONS:
                try:
                    if not path.is_file():  # broken symlinks and friends
                        continue
                except OSError:
                    continue
                files.append(path)
    files.sort()
    get_registry().inc("site.files.discovered", len(files))
    return files


def iter_directories(root: Path | str) -> Iterator[Path]:
    """``root`` and every directory below it, sorted.

    Yields nothing when ``root`` is a file or does not exist (see the
    module docstring); unreadable subtrees are skipped.
    """
    root = Path(root)
    if not root.is_dir():
        return
    yield root
    subdirectories = [
        directory / name
        for directory, names, _files in _walk(root)
        for name in names
    ]
    yield from sorted(subdirectories)


def has_index_file(directory: Path, index_filenames: tuple[str, ...]) -> bool:
    return any((directory / name).is_file() for name in index_filenames)
