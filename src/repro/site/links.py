"""Link extraction.

Pulls every hyperlink and embedded-resource reference out of an HTML
document, with source line numbers, using the same tokenizer the checker
uses (so mangled markup is handled identically).  Shared by the -R site
checker, the poacher robot and the gateway.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.html.tokenizer import tokenize
from repro.html.tokens import StartTag

#: element -> (attribute, kind); kind is "anchor" for navigation links and
#: "resource" for embedded content fetched automatically by browsers.
_LINK_ATTRIBUTES: dict[str, tuple[str, str]] = {
    "a": ("href", "anchor"),
    "area": ("href", "anchor"),
    "link": ("href", "resource"),
    "img": ("src", "resource"),
    "frame": ("src", "anchor"),
    "iframe": ("src", "anchor"),
    "script": ("src", "resource"),
    "embed": ("src", "resource"),
    "bgsound": ("src", "resource"),
    "input": ("src", "resource"),       # type=image
    "body": ("background", "resource"),
    "object": ("data", "resource"),
    "applet": ("code", "resource"),
}

#: schemes a local link checker cannot validate and should not report.
UNCHECKABLE_SCHEMES = frozenset(
    {"mailto", "javascript", "news", "ftp", "gopher", "telnet", "data"}
)


@dataclass(frozen=True)
class Link:
    """One outgoing reference from a page."""

    url: str
    line: int
    element: str   # the element it came from ("a", "img" ...)
    kind: str      # "anchor" | "resource"

    @property
    def is_fragment_only(self) -> bool:
        return self.url.startswith("#")

    @property
    def scheme(self) -> str:
        head, sep, _ = self.url.partition(":")
        if not sep or "/" in head or len(head) < 2:
            return ""
        return head.lower()

    @property
    def checkable(self) -> bool:
        """Can a link validator meaningfully test this reference?"""
        if self.is_fragment_only or not self.url.strip():
            return False
        return self.scheme not in UNCHECKABLE_SCHEMES


def extract_links(source: str) -> list[Link]:
    """All references in ``source``, in document order."""
    links: list[Link] = []
    for token in tokenize(source):
        if not isinstance(token, StartTag):
            continue
        mapping = _LINK_ATTRIBUTES.get(token.lowered)
        if mapping is None:
            continue
        attr_name, kind = mapping
        attr = token.get(attr_name)
        if attr is None or not attr.has_value or not attr.value.strip():
            continue
        links.append(
            Link(
                url=attr.value.strip(),
                line=token.line,
                element=token.lowered,
                kind=kind,
            )
        )
    return links


def extract_anchor_names(source: str) -> set[str]:
    """All fragment targets defined in the page (<A NAME> and ID values)."""
    names: set[str] = set()
    for token in tokenize(source):
        if not isinstance(token, StartTag):
            continue
        if token.lowered == "a":
            name_attr = token.get("name")
            if name_attr is not None and name_attr.value:
                names.add(name_attr.value)
        id_attr = token.get("id")
        if id_attr is not None and id_attr.value:
            names.add(id_attr.value)
    return names
