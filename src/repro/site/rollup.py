"""Bounded site rollups: the streaming replacement for ``SiteReport``.

Paper section 3.5's Spot-style site summary was computed from a report
object holding every page's diagnostics.  At audit scale that object
*is* the memory wall, so the summary is split in two:

- :class:`SiteRollup` -- everything the renderers need, in O(1) memory
  per page: counters per category and message id, page totals, a
  bounded top-N "worst pages" selection (the same bounded-heap idea as
  the crawl stats' slowest-N fetches), link-graph aggregates and the
  navigation summary lines.  Rollups are mergeable, so shards of a
  partitioned audit fold into one report, and serialisable with sorted
  keys so a merged report is byte-stable.
- :class:`PageSpill` -- the full per-page diagnostics, appended to
  ``pages.jsonl`` as each page resolves.  The rollup keeps reports
  bounded; the spill keeps them complete.  Anything that needs
  per-page detail (drill-downs, diffing two audits) reads the spill;
  everything render-side works from the rollup alone.

``repro.tools.merge_shards`` combines per-shard rollups and spills into
one canonical report directory.
"""

from __future__ import annotations

import json
from bisect import insort
from pathlib import Path
from typing import IO, Iterable, Optional, Union

from repro.core.diagnostics import Diagnostic
from repro.core.messages import Category

#: How many worst pages a rollup keeps (mirrors SLOWEST_FETCHES_KEPT).
WORST_PAGES_KEPT = 10

#: Site-level message ids surfaced in the summary counts.
SITE_MESSAGES = ("bad-link", "bad-fragment", "orphan-page", "directory-index")

ROLLUP_VERSION = 1
ROLLUP_FILENAME = "rollup.json"
PAGES_FILENAME = "pages.jsonl"


def diagnostic_record(diagnostic: Diagnostic) -> dict[str, object]:
    """The spill-file shape of one diagnostic (filename lives on the
    enclosing page record, so it is not repeated per item)."""
    return {
        "id": diagnostic.message_id,
        "category": diagnostic.category.value,
        "line": diagnostic.line,
        "column": diagnostic.column,
        "message": diagnostic.text,
    }


class _WorstPages:
    """Bounded top-N ``(count, page)`` selection, largest counts first.

    Equal counts rank by *ascending* page path, so the listing is
    stable and readable.  The ordering also makes shard merges exact:
    pages partition across shards and each shard keeps its own top-N,
    so every page in the global top-N survives its shard's selection.
    """

    def __init__(self, keep: int = WORST_PAGES_KEPT) -> None:
        self.keep = keep
        self._items: list[tuple[int, str]] = []  # (-count, page), best first

    def push(self, page: str, count: int) -> None:
        if count <= 0:
            return
        insort(self._items, (-count, page))
        if len(self._items) > self.keep:
            self._items.pop()

    def ranked(self) -> list[tuple[int, str]]:
        """``(count, page)`` pairs, worst page first."""
        return [(-negative, page) for negative, page in self._items]


class SiteRollup:
    """A bounded, mergeable aggregate of one site audit."""

    def __init__(self, root: str, keep_worst: int = WORST_PAGES_KEPT) -> None:
        self.root = str(root)
        self.keep_worst = keep_worst
        self.pages = 0
        self.pages_with_problems = 0
        self.page_errors = 0
        self.total_messages = 0
        self.category_counts: dict[str, int] = {c.value: 0 for c in Category}
        self.message_counts: dict[str, int] = {}
        self.link_edges = 0
        self._worst = _WorstPages(keep_worst)
        #: Whole-graph navigation summary; only a checker that saw the
        #: complete site sets it (a shard's partial view would mislead).
        self.navigation_lines: Optional[list[str]] = None

    # -- incremental feeding -----------------------------------------

    def count_diagnostics(self, diagnostics: Iterable[Diagnostic]) -> int:
        """Tally diagnostics into the counters; returns how many."""
        n = 0
        for diagnostic in diagnostics:
            n += 1
            category = diagnostic.category.value
            self.category_counts[category] = (
                self.category_counts.get(category, 0) + 1
            )
            self.message_counts[diagnostic.message_id] = (
                self.message_counts.get(diagnostic.message_id, 0) + 1
            )
        self.total_messages += n
        return n

    def note_page(self, page: str, problem_count: int) -> None:
        """Record one checked page and its final message count."""
        self.pages += 1
        if problem_count:
            self.pages_with_problems += 1
            self._worst.push(page, problem_count)

    def add_page(self, page: str, diagnostics: Iterable[Diagnostic]) -> None:
        """The one-shot feed: tally and attribute in a single call."""
        self.note_page(page, self.count_diagnostics(diagnostics))

    def note_page_error(self, count: int = 1) -> None:
        self.page_errors += count

    def note_links(self, count: int = 1) -> None:
        self.link_edges += count

    # -- views ---------------------------------------------------------

    def count(self, message_id: str) -> int:
        return self.message_counts.get(message_id, 0)

    def worst_pages(self) -> list[tuple[int, str]]:
        """``(count, page)`` for the kept worst pages, worst first."""
        return self._worst.ranked()

    def counts(self) -> dict[str, int]:
        """The summary table, in the classic ``_counts`` key order."""
        table = {
            "pages": self.pages,
            "pages with problems": self.pages_with_problems,
            "total messages": self.total_messages,
        }
        for category in Category:
            table[f"{category.value}s"] = self.category_counts.get(
                category.value, 0
            )
        for message_id in SITE_MESSAGES:
            table[message_id] = self.count(message_id)
        return table

    @classmethod
    def from_report(
        cls,
        report,
        keep_worst: int = WORST_PAGES_KEPT,
        navigation: bool = True,
    ) -> "SiteRollup":
        """Roll up a fully materialised ``SiteReport`` -- single pass."""
        rollup = cls(root=str(report.root), keep_worst=keep_worst)
        for page in report.pages:
            rollup.add_page(page, report.page_diagnostics.get(page, []))
        rollup.count_diagnostics(report.site_diagnostics)
        rollup.page_errors = len(report.page_errors)
        rollup.link_edges = len(report.link_graph)
        if navigation and report.pages:
            rollup.navigation_lines = report.navigation().summary_lines()
        return rollup

    # -- merging -------------------------------------------------------

    def merge(self, other: "SiteRollup") -> "SiteRollup":
        """Fold another shard's rollup into this one, in place."""
        self.pages += other.pages
        self.pages_with_problems += other.pages_with_problems
        self.page_errors += other.page_errors
        self.total_messages += other.total_messages
        for category, count in other.category_counts.items():
            self.category_counts[category] = (
                self.category_counts.get(category, 0) + count
            )
        for message_id, count in other.message_counts.items():
            self.message_counts[message_id] = (
                self.message_counts.get(message_id, 0) + count
            )
        self.link_edges += other.link_edges
        for count, page in other.worst_pages():
            self._worst.push(page, count)
        # Navigation is a whole-graph analysis: keep whichever side has
        # one, and drop both when they disagree (two partial views
        # cannot be combined).
        if self.navigation_lines is None:
            self.navigation_lines = other.navigation_lines
        elif (
            other.navigation_lines is not None
            and other.navigation_lines != self.navigation_lines
        ):
            self.navigation_lines = None
        return self

    # -- serialisation -------------------------------------------------

    def to_payload(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "version": ROLLUP_VERSION,
            "root": self.root,
            "keep_worst": self.keep_worst,
            "pages": self.pages,
            "pages_with_problems": self.pages_with_problems,
            "page_errors": self.page_errors,
            "total_messages": self.total_messages,
            "categories": dict(sorted(self.category_counts.items())),
            "messages": dict(sorted(self.message_counts.items())),
            "link_edges": self.link_edges,
            "worst_pages": [
                [count, page] for count, page in self.worst_pages()
            ],
        }
        if self.navigation_lines is not None:
            payload["navigation"] = list(self.navigation_lines)
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_payload(cls, payload: dict) -> "SiteRollup":
        rollup = cls(
            root=payload.get("root", ""),
            keep_worst=int(payload.get("keep_worst", WORST_PAGES_KEPT)),
        )
        rollup.pages = int(payload.get("pages", 0))
        rollup.pages_with_problems = int(payload.get("pages_with_problems", 0))
        rollup.page_errors = int(payload.get("page_errors", 0))
        rollup.total_messages = int(payload.get("total_messages", 0))
        for category, count in payload.get("categories", {}).items():
            rollup.category_counts[category] = int(count)
        for message_id, count in payload.get("messages", {}).items():
            rollup.message_counts[message_id] = int(count)
        rollup.link_edges = int(payload.get("link_edges", 0))
        for count, page in payload.get("worst_pages", []):
            rollup._worst.push(str(page), int(count))
        navigation = payload.get("navigation")
        if navigation is not None:
            rollup.navigation_lines = [str(line) for line in navigation]
        return rollup

    def save(self, path: Union[str, Path]) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SiteRollup":
        return cls.from_payload(
            json.loads(Path(path).read_text(encoding="utf-8"))
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SiteRollup):
            return NotImplemented
        return self.to_payload() == other.to_payload()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SiteRollup(root={self.root!r}, pages={self.pages}, "
            f"messages={self.total_messages})"
        )


class PageSpill:
    """Append-only ``pages.jsonl``: full per-page diagnostics on disk.

    One JSON line per resolved page, written in completion order (sort
    by the ``page`` key for a canonical view -- ``merge_shards`` does
    exactly that when it rewrites merged spills).  Records:

    - ``{"page", "phase", "count", "diagnostics"}`` for a checked page
      (``phase`` is ``"lint"`` for the per-document pass, ``"site"``
      for cross-page findings attached afterwards);
    - ``{"page", "error"}`` for a page that could not be read/fetched.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle: Optional[IO[str]] = None

    def _write(self, record: dict[str, object]) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("w", encoding="utf-8")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")

    def write_page(
        self,
        page: str,
        diagnostics: Iterable[Diagnostic],
        error: Optional[str] = None,
        phase: str = "lint",
    ) -> None:
        if error is not None:
            self._write({"page": page, "error": error})
            return
        items = [diagnostic_record(d) for d in diagnostics]
        self._write({
            "page": page,
            "phase": phase,
            "count": len(items),
            "diagnostics": items,
        })

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "PageSpill":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
