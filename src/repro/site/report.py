"""Rendering whole-site reports -- the Spot-style summary (section 3.5).

"Spot ... is run on the web site's host machine to analyse a web site for
problems.  Problems identified include HTML syntax errors, broken links,
missing index files, non-portable host references, and summary analyses
of your site."  This module renders a :class:`~repro.site.sitecheck.SiteReport`
(plus its navigation analysis) as exactly that kind of summary, in plain
text or as an HTML page that itself lints clean.
"""

from __future__ import annotations

from repro.core.messages import Category
from repro.gateway.htmlreport import escape, render_page, render_table
from repro.site.sitecheck import SiteReport

#: Site-level analyses broken out in the summary, in display order.
_SITE_MESSAGES = ("bad-link", "bad-fragment", "orphan-page", "directory-index")


def _counts(report: SiteReport) -> dict[str, int]:
    counts = {
        "pages": len(report.pages),
        "pages with problems": len(report.pages_with_problems()),
        "total messages": report.count(),
    }
    for category in Category:
        counts[f"{category.value}s"] = sum(
            1
            for diagnostic in report.all_diagnostics()
            if diagnostic.category is category
        )
    for message_id in _SITE_MESSAGES:
        counts[message_id] = report.count(message_id)
    return counts


def render_text_report(report: SiteReport, top_pages: int = 10) -> str:
    """A terminal-friendly site summary."""
    lines = [f"site report: {report.root}", "=" * 60]
    counts = _counts(report)
    width = max(len(key) for key in counts)
    for key, value in counts.items():
        lines.append(f"  {key.ljust(width)}  {value}")

    worst = sorted(
        (
            (len(report.page_diagnostics.get(page, [])), page)
            for page in report.pages
        ),
        reverse=True,
    )
    noisy = [(count, page) for count, page in worst if count]
    if noisy:
        lines.append("")
        lines.append(f"pages with the most messages (top {top_pages}):")
        for count, page in noisy[:top_pages]:
            lines.append(f"  {count:4}  {page}")

    if report.pages:
        navigation = report.navigation()
        lines.append("")
        lines.extend(navigation.summary_lines())
    return "\n".join(lines)


def render_html_report(report: SiteReport) -> str:
    """A complete HTML page summarising the site check."""
    counts = _counts(report)
    fragments = [
        f"<p>Site checked: <code>{escape(report.root)}</code></p>",
        "<h2>Summary</h2>",
        render_table(
            [(key, str(value)) for key, value in counts.items()],
            summary="site check summary",
        ),
    ]

    problem_pages = report.pages_with_problems()
    if problem_pages:
        fragments.append("<h2>Problems by page</h2>")
        for page in problem_pages:
            diagnostics = report.page_diagnostics[page]
            items = "\n".join(
                f'  <li class="weblint-{d.category.value}">'
                f"<b>line {d.line}</b>: {escape(d.text)}</li>"
                for d in diagnostics
            )
            fragments.append(
                f"<h3>{escape(page)}</h3>\n<ul>\n{items}\n</ul>"
            )
    if report.site_diagnostics:
        items = "\n".join(
            f"  <li>{escape(d.text)}</li>" for d in report.site_diagnostics
        )
        fragments.append(f"<h2>Site-level findings</h2>\n<ul>\n{items}\n</ul>")

    if report.pages:
        navigation = report.navigation()
        rows = [
            ("reachable pages", str(len(navigation.depths))),
            ("maximum click depth", str(navigation.max_depth)),
            ("average click depth", f"{navigation.average_depth:.1f}"),
            ("unreachable by browsing",
             ", ".join(navigation.unreachable) or "none"),
            ("dead ends", ", ".join(navigation.dead_ends) or "none"),
        ]
        fragments.append("<h2>Navigation</h2>")
        fragments.append(render_table(rows, summary="navigation analysis"))

    # Keep our own title under weblint's title-length limit.
    site_name = report.root.rstrip("/").rsplit("/", 1)[-1] or report.root
    title = f"Site report for {site_name}"
    if len(title) > 60:
        title = "Site report"
    return render_page(title, fragments)
