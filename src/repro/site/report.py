"""Rendering whole-site reports -- the Spot-style summary (section 3.5).

"Spot ... is run on the web site's host machine to analyse a web site for
problems.  Problems identified include HTML syntax errors, broken links,
missing index files, non-portable host references, and summary analyses
of your site."  This module renders that kind of summary, in plain text
or as an HTML page that itself lints clean, from either a fully
materialised :class:`~repro.site.sitecheck.SiteReport` or a bounded
:class:`~repro.site.rollup.SiteRollup` (the streaming audit path --
every number the summary shows lives in the rollup, so rendering never
needs the per-page diagnostics back in memory).
"""

from __future__ import annotations

from typing import Union

from repro.gateway.htmlreport import escape, render_page, render_table
from repro.site.rollup import SITE_MESSAGES, WORST_PAGES_KEPT, SiteRollup
from repro.site.sitecheck import SiteReport

#: Site-level analyses broken out in the summary, in display order.
_SITE_MESSAGES = SITE_MESSAGES


def _counts(report: SiteReport) -> dict[str, int]:
    """The summary table -- one pass over the diagnostics."""
    return SiteRollup.from_report(report, navigation=False).counts()


def _as_rollup(
    report: Union[SiteReport, SiteRollup], top_pages: int
) -> SiteRollup:
    if isinstance(report, SiteRollup):
        return report
    return SiteRollup.from_report(
        report, keep_worst=max(top_pages, WORST_PAGES_KEPT)
    )


def render_text_report(
    report: Union[SiteReport, SiteRollup], top_pages: int = 10
) -> str:
    """A terminal-friendly site summary."""
    rollup = _as_rollup(report, top_pages)
    lines = [f"site report: {rollup.root}", "=" * 60]
    counts = rollup.counts()
    width = max(len(key) for key in counts)
    for key, value in counts.items():
        lines.append(f"  {key.ljust(width)}  {value}")

    # Worst pages rank by message count; equal counts list in ascending
    # path order so the top-N block is stable and readable.
    noisy = rollup.worst_pages()[:top_pages]
    if noisy:
        lines.append("")
        lines.append(f"pages with the most messages (top {top_pages}):")
        for count, page in noisy:
            lines.append(f"  {count:4}  {page}")

    if rollup.navigation_lines:
        lines.append("")
        lines.extend(rollup.navigation_lines)
    return "\n".join(lines)


def _report_title(root: str) -> str:
    # Keep our own title under weblint's title-length limit.
    site_name = root.rstrip("/").rsplit("/", 1)[-1] or root
    title = f"Site report for {site_name}"
    if len(title) > 60:
        title = "Site report"
    return title


def render_html_report(report: Union[SiteReport, SiteRollup]) -> str:
    """A complete HTML page summarising the site check."""
    if isinstance(report, SiteRollup):
        return _render_html_rollup(report)
    counts = _counts(report)
    fragments = [
        f"<p>Site checked: <code>{escape(report.root)}</code></p>",
        "<h2>Summary</h2>",
        render_table(
            [(key, str(value)) for key, value in counts.items()],
            summary="site check summary",
        ),
    ]

    problem_pages = report.pages_with_problems()
    if problem_pages:
        fragments.append("<h2>Problems by page</h2>")
        for page in problem_pages:
            diagnostics = report.page_diagnostics[page]
            items = "\n".join(
                f'  <li class="weblint-{d.category.value}">'
                f"<b>line {d.line}</b>: {escape(d.text)}</li>"
                for d in diagnostics
            )
            fragments.append(
                f"<h3>{escape(page)}</h3>\n<ul>\n{items}\n</ul>"
            )
    if report.site_diagnostics:
        items = "\n".join(
            f"  <li>{escape(d.text)}</li>" for d in report.site_diagnostics
        )
        fragments.append(f"<h2>Site-level findings</h2>\n<ul>\n{items}\n</ul>")

    if report.pages:
        navigation = report.navigation()
        rows = [
            ("reachable pages", str(len(navigation.depths))),
            ("maximum click depth", str(navigation.max_depth)),
            ("average click depth", f"{navigation.average_depth:.1f}"),
            ("unreachable by browsing",
             ", ".join(navigation.unreachable) or "none"),
            ("dead ends", ", ".join(navigation.dead_ends) or "none"),
        ]
        fragments.append("<h2>Navigation</h2>")
        fragments.append(render_table(rows, summary="navigation analysis"))

    return render_page(_report_title(report.root), fragments)


def _render_html_rollup(rollup: SiteRollup) -> str:
    """The bounded-memory HTML summary.

    Per-page diagnostic listings live in the audit's ``pages.jsonl``
    spill, not in the rollup, so this page shows the summary, the
    worst-pages table and the navigation analysis.
    """
    fragments = [
        f"<p>Site checked: <code>{escape(rollup.root)}</code></p>",
        "<h2>Summary</h2>",
        render_table(
            [(key, str(value)) for key, value in rollup.counts().items()],
            summary="site check summary",
        ),
    ]
    worst = rollup.worst_pages()
    if worst:
        fragments.append("<h2>Pages with the most messages</h2>")
        fragments.append(render_table(
            [(page, str(count)) for count, page in worst],
            summary="worst pages",
        ))
    if rollup.navigation_lines:
        items = "\n".join(
            f"  <li>{escape(line)}</li>" for line in rollup.navigation_lines
        )
        fragments.append(f"<h2>Navigation</h2>\n<ul>\n{items}\n</ul>")
    return render_page(_report_title(rollup.root), fragments)
