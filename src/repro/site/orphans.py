"""Orphan-page computation.

A page is an *orphan* when no other checked page links to it (paper
section 4.5).  Index pages are conventionally entry points -- reached
from outside the site or by truncating URLs -- so the site root's index
is never reported as an orphan.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, TypeVar

Node = TypeVar("Node", bound=Hashable)


def find_orphans(
    pages: Iterable[Node],
    incoming: Mapping[Node, int],
    roots: Iterable[Node] = (),
) -> list[Node]:
    """Pages with zero incoming links, minus designated roots.

    ``incoming`` maps a page to its in-degree in the site link graph
    (missing keys count as zero).  ``roots`` are never orphans.
    """
    root_set = set(roots)
    return [
        page
        for page in pages
        if page not in root_set and incoming.get(page, 0) == 0
    ]


def build_incoming_counts(
    edges: Iterable[tuple[Node, Node]],
) -> dict[Node, int]:
    """In-degree per target, ignoring self-links (a page citing itself
    does not make it reachable)."""
    counts: dict[Node, int] = {}
    for source, target in edges:
        if source == target:
            continue
        counts[target] = counts.get(target, 0) + 1
    return counts
