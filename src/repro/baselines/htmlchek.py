"""htmlchek-style baseline: regex-per-line checking, no stack.

Paper section 3.3: "Htmlchek is a perl script (also available in awk)
which performs syntax checking similar to weblint."  The defining
implementation property this baseline reproduces is *statelessness across
structure*: tags are counted, not stacked, and lines are checked in
isolation.  Consequences (all measured in experiment E9):

- a single unclosed container yields one "count mismatch" message per
  affected element *kind* at end of file, with no line information for
  the culprit;
- overlapping elements are invisible (the counts still balance);
- an odd quote confuses every subsequent check on the same line.

Diagnostics carry ``htmlchek:``-prefixed ids so they are never confused
with weblint catalog messages.
"""

from __future__ import annotations

import re

from repro.core.diagnostics import Diagnostic
from repro.core.messages import Category
from repro.html.spec import HTMLSpec, get_spec

_TAG_RE = re.compile(r"<(/?)([A-Za-z][A-Za-z0-9]*)((?:[^>\"']|\"[^\"]*\"|'[^']*')*)>")
_IMG_RE = re.compile(r"<img\b([^>]*)>", re.IGNORECASE)
_UNQUOTED_RE = re.compile(r"\b([A-Za-z-]+)=([^\s\"'>][^\s>]*)")


def _diag(
    check: str, text: str, line: int, filename: str, category: Category = Category.ERROR
) -> Diagnostic:
    return Diagnostic(
        message_id=f"htmlchek:{check}",
        category=category,
        text=text,
        line=line,
        filename=filename,
    )


class HtmlchekChecker:
    """The stack-less checker."""

    def __init__(self, spec: HTMLSpec | None = None) -> None:
        self.spec = spec if spec is not None else get_spec("html40")

    def check_string(self, source: str, filename: str = "-") -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        open_counts: dict[str, int] = {}
        close_counts: dict[str, int] = {}

        for line_number, line in enumerate(source.splitlines(), start=1):
            diagnostics.extend(self._check_line(line, line_number, filename))
            for match in _TAG_RE.finditer(line):
                closing, name = match.group(1), match.group(2).lower()
                counts = close_counts if closing else open_counts
                counts[name] = counts.get(name, 0) + 1
                if not self.spec.is_known(name):
                    diagnostics.append(
                        _diag(
                            "unknown-tag",
                            f"unknown tag <{'/' if closing else ''}{name.upper()}>",
                            line_number,
                            filename,
                        )
                    )

        diagnostics.extend(
            self._count_mismatches(source, open_counts, close_counts, filename)
        )
        return diagnostics

    # -- per-line checks ------------------------------------------------------

    def _check_line(
        self, line: str, line_number: int, filename: str
    ) -> list[Diagnostic]:
        found: list[Diagnostic] = []
        if line.count('"') % 2 == 1:
            found.append(
                _diag(
                    "odd-quotes",
                    "odd number of quote characters on line",
                    line_number,
                    filename,
                    Category.WARNING,
                )
            )
        for match in _IMG_RE.finditer(line):
            attrs = match.group(1).lower()
            if "alt=" not in attrs and not attrs.rstrip().endswith("alt"):
                found.append(
                    _diag(
                        "img-alt",
                        "IMG without ALT attribute",
                        line_number,
                        filename,
                        Category.WARNING,
                    )
                )
        for tag_match in _TAG_RE.finditer(line):
            for attr_match in _UNQUOTED_RE.finditer(tag_match.group(3)):
                found.append(
                    _diag(
                        "unquoted-value",
                        f"unquoted attribute value "
                        f"{attr_match.group(1)}={attr_match.group(2)}",
                        line_number,
                        filename,
                        Category.WARNING,
                    )
                )
        return found

    # -- whole-document count check ------------------------------------------------

    def _count_mismatches(
        self,
        source: str,
        open_counts: dict[str, int],
        close_counts: dict[str, int],
        filename: str,
    ) -> list[Diagnostic]:
        last_line = source.count("\n") + 1
        found: list[Diagnostic] = []
        for name in sorted(set(open_counts) | set(close_counts)):
            elem = self.spec.element(name)
            if elem is not None and not elem.strict_container:
                continue
            opened = open_counts.get(name, 0)
            closed = close_counts.get(name, 0)
            if opened > closed:
                found.append(
                    _diag(
                        "count-mismatch",
                        f"{opened - closed} <{name.upper()}> tag(s) never closed",
                        last_line,
                        filename,
                    )
                )
            elif closed > opened:
                found.append(
                    _diag(
                        "count-mismatch",
                        f"{closed - opened} </{name.upper()}> tag(s) never opened",
                        last_line,
                        filename,
                    )
                )
        return found
