"""Strict, SGML-parser-style validator -- the SP/nsgmls stand-in.

Paper section 3.2: "Strict validators have the obvious advantage that you
are checking against the bible (the DTD).  On the down-side, the warning
and error messages are usually straight from the parser, and require a
grounding in SGML to understand."

This validator is driven by the same :class:`~repro.html.spec.HTMLSpec`
tables (or a spec generated from a DTD by :mod:`repro.html.dtdgen`) but
behaves like a parser, not a lint:

- *no recovery heuristics*: an end tag that does not match the innermost
  open element produces "end tag omitted" errors for every element popped
  on the way to a match, or an "ignored" error if there is no match --
  the classic SGML cascade;
- messages use parser jargon ("document type does not allow element X
  here"), reproducing the usability contrast the paper draws;
- checking stops being meaningful rather than adapting: the validator
  trusts the DTD, not the author.

Diagnostics carry ``sgml:``-prefixed ids.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.diagnostics import Diagnostic
from repro.core.messages import Category
from repro.html.spec import HTMLSpec, get_spec
from repro.html.tokenizer import tokenize
from repro.html.tokens import Declaration, EndTag, StartTag, Text


@dataclass
class _Open:
    name: str
    line: int


def _diag(check: str, text: str, line: int, filename: str) -> Diagnostic:
    return Diagnostic(
        message_id=f"sgml:{check}",
        category=Category.ERROR,
        text=text,
        line=line,
        filename=filename,
    )


class StrictValidator:
    """Validate one document strictly against a spec."""

    def __init__(self, spec: HTMLSpec | None = None) -> None:
        self.spec = spec if spec is not None else get_spec("html40")

    def check_string(self, source: str, filename: str = "-") -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        stack: list[_Open] = []
        seen_doctype = False
        last_line = 1

        for token in tokenize(source):
            last_line = token.line
            if isinstance(token, Declaration):
                if token.is_doctype:
                    seen_doctype = True
            elif isinstance(token, StartTag):
                if not seen_doctype:
                    diagnostics.append(
                        _diag(
                            "no-doctype",
                            "prolog error: no document type declaration; "
                            "parsing without validation is not possible",
                            token.line,
                            filename,
                        )
                    )
                    seen_doctype = True  # report once, like nsgmls -E
                self._start_tag(token, stack, diagnostics, filename)
            elif isinstance(token, EndTag):
                self._end_tag(token, stack, diagnostics, filename)
            elif isinstance(token, Text):
                self._text(token, stack, diagnostics, filename)

        for entry in reversed(stack):
            elem = self.spec.element(entry.name)
            if elem is not None and elem.optional_end:
                continue
            diagnostics.append(
                _diag(
                    "end-tag-omitted",
                    f'end tag for "{entry.name.upper()}" omitted, but its '
                    f"declaration does not permit this",
                    last_line,
                    filename,
                )
            )
        return diagnostics

    # -- token handlers ---------------------------------------------------------

    def _start_tag(
        self,
        tag: StartTag,
        stack: list[_Open],
        diagnostics: list[Diagnostic],
        filename: str,
    ) -> None:
        name = tag.lowered
        elem = self.spec.element(name)
        if elem is None:
            diagnostics.append(
                _diag(
                    "undefined-element",
                    f'element "{name.upper()}" undefined',
                    tag.line,
                    filename,
                )
            )
            return

        # Content model: implicit closes per the DTD, then context check.
        while stack and stack[-1].name in elem.closes:
            stack.pop()
        if elem.allowed_in is not None:
            parent = stack[-1].name if stack else None
            if parent is None or parent not in elem.allowed_in:
                diagnostics.append(
                    _diag(
                        "not-allowed-here",
                        f'document type does not allow element "{name.upper()}" '
                        f"here"
                        + (
                            f'; assuming missing "{sorted(elem.allowed_in)[0].upper()}" '
                            f"start-tag"
                            if elem.allowed_in
                            else ""
                        ),
                        tag.line,
                        filename,
                    )
                )
        for exclusion_holder in stack:
            holder = self.spec.element(exclusion_holder.name)
            if holder is not None and name in holder.excludes:
                diagnostics.append(
                    _diag(
                        "excluded-element",
                        f'element "{name.upper()}" not allowed within '
                        f'"{exclusion_holder.name.upper()}" (exclusion)',
                        tag.line,
                        filename,
                    )
                )
                break

        for attr in tag.attributes:
            definition = self.spec.attribute_def(name, attr.lowered)
            if definition is None:
                diagnostics.append(
                    _diag(
                        "undefined-attribute",
                        f'there is no attribute "{attr.name.upper()}"',
                        tag.line,
                        filename,
                    )
                )
            elif attr.has_value and not definition.value_ok(attr.value):
                diagnostics.append(
                    _diag(
                        "bad-attribute-value",
                        f'value "{attr.value}" of attribute '
                        f'"{attr.name.upper()}" cannot be parsed against its '
                        f"declared value",
                        tag.line,
                        filename,
                    )
                )
        for required in elem.required_attributes():
            if not tag.has_attribute(required):
                diagnostics.append(
                    _diag(
                        "required-attribute",
                        f'required attribute "{required.upper()}" not specified',
                        tag.line,
                        filename,
                    )
                )

        if not elem.empty and not tag.self_closing:
            stack.append(_Open(name=name, line=tag.line))

    def _end_tag(
        self,
        tag: EndTag,
        stack: list[_Open],
        diagnostics: list[Diagnostic],
        filename: str,
    ) -> None:
        name = tag.lowered
        if not any(entry.name == name for entry in stack):
            diagnostics.append(
                _diag(
                    "end-tag-ignored",
                    f'end tag for element "{name.upper()}" which is not open; '
                    f"ignored",
                    tag.line,
                    filename,
                )
            )
            return
        # Pop to the match; every strict container popped on the way is an
        # "omitted end tag" error.  No heuristics, no secondary stack.
        while stack:
            entry = stack.pop()
            if entry.name == name:
                break
            elem = self.spec.element(entry.name)
            if elem is None or elem.optional_end:
                continue
            diagnostics.append(
                _diag(
                    "end-tag-omitted",
                    f'end tag for "{entry.name.upper()}" omitted, but its '
                    f"declaration does not permit this; start tag was at "
                    f"line {entry.line}",
                    tag.line,
                    filename,
                )
            )

    def _text(
        self,
        token: Text,
        stack: list[_Open],
        diagnostics: list[Diagnostic],
        filename: str,
    ) -> None:
        if token.is_whitespace:
            return
        # Character data directly inside elements that only take structure
        # is an SGML error ("character data not allowed here").
        if stack and stack[-1].name in (
            "html", "head", "table", "tr", "ul", "ol", "dl", "select",
        ):
            diagnostics.append(
                _diag(
                    "pcdata-not-allowed",
                    f"character data is not allowed directly within "
                    f'"{stack[-1].name.upper()}"',
                    token.line,
                    filename,
                )
            )
