"""Baseline checkers -- the related work of paper section 3, rebuilt.

Used by the comparison experiments (E9, E13) and available as library
APIs in their own right:

- :mod:`repro.baselines.htmlchek` -- a stack-less, regex-per-line checker
  in the style of htmlchek (section 3.3): fast and simple, but with no
  recovery heuristics, so one mistake can cascade.
- :mod:`repro.baselines.strict` -- a strict, DTD-driven content-model
  validator standing in for SP/nsgmls (section 3.2): "the warning and
  error messages are usually straight from the parser, and require a
  grounding in SGML to understand."
- :mod:`repro.baselines.tidylike` -- an identify-and-fix tool in the
  style of HTML Tidy (sections 3.3/3.7), to contrast with weblint's
  identify-only philosophy.
"""

from repro.baselines.htmlchek import HtmlchekChecker
from repro.baselines.strict import StrictValidator
from repro.baselines.tidylike import FixResult, TidyLikeFixer

__all__ = ["HtmlchekChecker", "StrictValidator", "TidyLikeFixer", "FixResult"]
