"""Tidy-style fixer: identify common errors and repair them.

Paper section 3.3: "HTML Tidy ... identifies a number of common HTML
errors, and fixes them for you ... will generate warnings only for
problems which it doesn't know how to fix."  Section 3.7 records the
author's philosophy: weblint stays an identifier, like lint.  This module
exists so the repository can *demonstrate* that contrast (experiment
E13): run the fixer, re-lint, and watch the error count drop -- while
problems that need a human (unknown elements, content-free anchor text)
survive and are listed as unfixable.

Repairs performed:

- quote unquoted / single-quoted attribute values, repair odd quotes;
- insert missing end tags (at parent close or end of file);
- repair overlapping elements by closing in nesting order;
- rewrite mismatched heading closes (<H1>...</H2> becomes </H1>);
- add ``alt=""`` to IMG elements without ALT;
- replace obsolete elements by their successors (LISTING -> PRE);
- drop unmatched end tags and repeated attributes;
- normalise tag and attribute names to lower case.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.html.spec import HTMLSpec, get_spec
from repro.html.tokenizer import tokenize
from repro.html.tokens import (
    Comment,
    Declaration,
    EndTag,
    ProcessingInstruction,
    StartTag,
    Text,
)

_HEADINGS = frozenset({"h1", "h2", "h3", "h4", "h5", "h6"})


@dataclass(frozen=True)
class Fix:
    line: int
    description: str


@dataclass
class FixResult:
    html: str
    fixes: list[Fix] = field(default_factory=list)
    unfixable: list[Fix] = field(default_factory=list)

    def fix_count(self) -> int:
        return len(self.fixes)


class TidyLikeFixer:
    """Fix what can be fixed; report the rest."""

    def __init__(self, spec: HTMLSpec | None = None) -> None:
        self.spec = spec if spec is not None else get_spec("html40")

    def fix_string(self, source: str) -> FixResult:
        result = FixResult(html="")
        output: list[str] = []
        stack: list[str] = []  # open container element names
        last_line = 1

        for token in tokenize(source):
            last_line = token.line
            if isinstance(token, StartTag):
                output.append(self._fix_start_tag(token, stack, result))
            elif isinstance(token, EndTag):
                output.append(self._fix_end_tag(token, stack, result))
            elif isinstance(token, (Text, Comment, Declaration, ProcessingInstruction)):
                output.append(token.raw)

        while stack:
            name = stack.pop()
            elem = self.spec.element(name)
            if elem is not None and elem.optional_end:
                continue
            output.append(f"</{name}>")
            result.fixes.append(
                Fix(last_line, f"inserted missing </{name}> at end of file")
            )

        result.html = "".join(output)
        return result

    # -- start tags -------------------------------------------------------------

    def _fix_start_tag(
        self, tag: StartTag, stack: list[str], result: FixResult
    ) -> str:
        name = tag.lowered
        elem = self.spec.element(name)

        if elem is None:
            result.unfixable.append(
                Fix(tag.line, f"unknown element <{name}> left as-is")
            )
        elif elem.obsolete and elem.replacement:
            result.fixes.append(
                Fix(tag.line, f"replaced obsolete <{name}> with <{elem.replacement}>")
            )
            name = elem.replacement
            elem = self.spec.element(name)

        if name != tag.name:
            pass  # replacement above
        elif tag.name != tag.name.lower():
            result.fixes.append(
                Fix(tag.line, f"lower-cased tag <{tag.name}>")
            )

        # Implicit closes, mirroring the checker so nesting stays sane.
        prefix_closes: list[str] = []
        if elem is not None and elem.closes:
            while stack and stack[-1] in elem.closes:
                closed = stack.pop()
                closed_elem = self.spec.element(closed)
                if closed_elem is not None and closed_elem.optional_end:
                    prefix_closes.append(f"</{closed}>")
                    result.fixes.append(
                        Fix(tag.line, f"inserted omitted </{closed}>")
                    )

        attributes = self._fix_attributes(tag, elem, result)

        if name == "img" and tag.get("alt") is None:
            attributes.append('alt=""')
            result.fixes.append(Fix(tag.line, 'added alt="" to <img>'))

        if elem is None or elem.container:
            if not tag.self_closing:
                stack.append(name)
        rendered_attrs = (" " + " ".join(attributes)) if attributes else ""
        return "".join(prefix_closes) + f"<{name}{rendered_attrs}>"

    def _fix_attributes(
        self, tag: StartTag, elem, result: FixResult
    ) -> list[str]:
        rendered: list[str] = []
        seen: set[str] = set()
        for attr in tag.attributes:
            lowered = attr.lowered
            if lowered in seen:
                result.fixes.append(
                    Fix(tag.line, f"dropped repeated attribute {lowered}")
                )
                continue
            seen.add(lowered)
            if not attr.has_value:
                rendered.append(lowered)
                continue
            if attr.quote != '"':
                what = {
                    None: "quoted unquoted value",
                    "'": "replaced single-quote delimiters",
                }[attr.quote]
                result.fixes.append(Fix(tag.line, f"{what} for {lowered}"))
            value = attr.value.replace('"', "&quot;")
            rendered.append(f'{lowered}="{value}"')
        return rendered

    # -- end tags ------------------------------------------------------------------

    def _fix_end_tag(
        self, tag: EndTag, stack: list[str], result: FixResult
    ) -> str:
        name = tag.lowered

        # Mismatched heading close: rewrite to the open heading.
        if name in _HEADINGS and stack and stack[-1] in _HEADINGS and stack[-1] != name:
            open_heading = stack.pop()
            result.fixes.append(
                Fix(tag.line, f"rewrote </{name}> to </{open_heading}>")
            )
            return f"</{open_heading}>"

        if name not in stack:
            result.fixes.append(
                Fix(tag.line, f"discarded unmatched </{name}>")
            )
            return ""

        # Close skipped elements in proper nesting order (repairs overlap).
        closes: list[str] = []
        while stack:
            open_name = stack.pop()
            if open_name == name:
                break
            closes.append(f"</{open_name}>")
            result.fixes.append(
                Fix(
                    tag.line,
                    f"closed <{open_name}> before </{name}> to repair overlap",
                )
            )
        closes.append(f"</{name}>")
        if tag.name != tag.name.lower() and not closes[:-1]:
            result.fixes.append(Fix(tag.line, f"lower-cased tag </{tag.name}>"))
        return "".join(closes)
