"""Fault injection for the virtual web -- the hostile-internet model.

The paper's poacher crawled the real Canon site: servers that time out,
return transient 500s, throttle with 429s, drop connections or truncate
bodies mid-transfer.  A :class:`FaultInjector` attaches those behaviours
to a :class:`~repro.www.virtualweb.VirtualWeb` so the retry/backoff/
circuit-breaker machinery in :mod:`repro.www.client` and the crawl
frontier in :mod:`repro.robot.traversal` are exercised against the same
failure modes -- deterministically.

Two matching modes per rule:

- ``times=N``: the first N matching requests *per URL* fault, then the
  resource recovers (a transient outage).  ``times=None`` never
  recovers (a dead host).
- ``rate=0.2``: a seeded, per-``(url, attempt)`` deterministic 20% of
  requests fault.  The decision depends only on the URL, the attempt
  index and the seed -- never on global request ordering -- so a
  concurrent crawl sees exactly the faults a sequential one does.
  ``max_run`` bounds consecutive faults per URL, guaranteeing any
  retry budget > ``max_run`` eventually succeeds.

Fault kinds: ``"status"`` (an HTTP error response, optionally with
``Retry-After``), ``"connection"`` (raises :class:`ConnectionFault`
before any response exists) and ``"truncate"`` (the body is cut short
while ``Content-Length`` still advertises the full size).  Latency is
configured separately with :meth:`FaultInjector.set_latency` and
interacts with the client's per-request timeout.
"""

from __future__ import annotations

import random
import threading
import zlib
from dataclasses import dataclass, field
from typing import Optional


class TransportError(Exception):
    """The request produced no HTTP response at all (the wire failed)."""


class ConnectionFault(TransportError):
    """Connection refused / reset -- the host never answered."""


class TimeoutFault(TransportError):
    """The response did not arrive within the request's timeout."""


def _stable_hash(text: str) -> int:
    """A process-independent 32-bit hash (``hash()`` is salted)."""
    return zlib.crc32(text.encode("utf-8"))


@dataclass
class FaultRule:
    """One fault behaviour bound to a URL or a whole host.

    Exactly one of ``url`` / ``host`` should be set; a rule with neither
    matches every request.  ``times`` counts *per URL*, so a host-wide
    transient rule makes each page fail its first N fetches rather than
    the host's first N requests overall.
    """

    kind: str = "status"  # "status" | "connection" | "truncate"
    url: Optional[str] = None   # normalised absolute URL to match
    host: Optional[str] = None  # or: every URL on this host
    status: int = 503
    retry_after: Optional[float] = None  # seconds, sent with the error
    times: Optional[int] = None  # faults per URL; None = every request
    rate: Optional[float] = None  # seeded probability instead of times
    max_run: int = 3  # rate mode: max consecutive faults per URL
    truncate_to: int = 0  # "truncate": characters of body kept

    _seen: dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.kind not in ("status", "connection", "truncate"):
            raise ValueError(f"unknown fault kind: {self.kind!r}")
        if self.rate is not None and not (0.0 <= self.rate <= 1.0):
            raise ValueError(f"fault rate must be in [0, 1]: {self.rate!r}")

    def matches(self, url: str, host: str) -> bool:
        if self.url is not None:
            return url == self.url
        if self.host is not None:
            return host == self.host
        return True

    def _rate_faults(self, url: str, attempt: int, seed: int) -> bool:
        """Deterministic per-(url, attempt) draw, capped at ``max_run``."""
        def draw(index: int) -> bool:
            rng = random.Random(_stable_hash(f"{url}#{index}") ^ seed)
            return rng.random() < (self.rate or 0.0)

        if not draw(attempt):
            return False
        # Force a success after max_run consecutive faults so bounded
        # retry budgets always converge.
        if attempt >= self.max_run and all(
            draw(index) for index in range(attempt - self.max_run, attempt)
        ):
            return False
        return True

    def applies(self, url: str, seed: int) -> bool:
        """Consume one attempt for ``url``; True when this request faults."""
        attempt = self._seen.get(url, 0)
        self._seen[url] = attempt + 1
        if self.rate is not None:
            return self._rate_faults(url, attempt, seed)
        if self.times is None:
            return True
        return attempt < self.times


class FaultInjector:
    """The fault configuration a :class:`VirtualWeb` consults per request.

    Thread-safe: the crawl frontier fetches from worker threads, and the
    per-URL attempt counters must not race.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rules: list[FaultRule] = []
        self._latency: list[tuple[Optional[str], Optional[str], float]] = []
        #: Simulated bandwidth in bytes/second (None = infinite): every
        #: response also costs ``body bytes / bandwidth`` seconds, which
        #: is the cost a conditional fetch avoids when a 304 arrives.
        self.bandwidth_bytes_per_s: Optional[float] = None
        self._lock = threading.Lock()
        #: How many requests each rule actually faulted (inspectability).
        self.faults_injected = 0

    # -- configuration ------------------------------------------------------

    def add_rule(self, rule: FaultRule) -> FaultRule:
        self._rules.append(rule)
        return rule

    def add_fault(
        self,
        url: Optional[str] = None,
        host: Optional[str] = None,
        *,
        kind: str = "status",
        status: int = 503,
        retry_after: Optional[float] = None,
        times: Optional[int] = 1,
        rate: Optional[float] = None,
        max_run: int = 3,
        truncate_to: int = 0,
    ) -> FaultRule:
        """Install one fault rule (see :class:`FaultRule` for semantics)."""
        return self.add_rule(FaultRule(
            kind=kind, url=url, host=host, status=status,
            retry_after=retry_after, times=times, rate=rate,
            max_run=max_run, truncate_to=truncate_to,
        ))

    def kill_host(self, host: str) -> FaultRule:
        """Every request to ``host`` fails with a connection error, forever."""
        return self.add_fault(host=host, kind="connection", times=None)

    def set_latency(
        self,
        url: Optional[str] = None,
        host: Optional[str] = None,
        *,
        seconds: float,
    ) -> None:
        """Every matching response takes ``seconds`` to arrive."""
        self._latency.append((url, host, max(0.0, seconds)))

    def set_bandwidth(self, bytes_per_s: Optional[float]) -> None:
        """Make responses cost body-proportional transfer time (None = off)."""
        self.bandwidth_bytes_per_s = (
            None if not bytes_per_s or bytes_per_s <= 0 else float(bytes_per_s)
        )

    def clear(self) -> None:
        with self._lock:
            self._rules.clear()
            self._latency.clear()
            self.bandwidth_bytes_per_s = None

    # -- per-request decisions ---------------------------------------------

    def latency_for(self, url: str, host: str) -> float:
        delay = 0.0
        for rule_url, rule_host, seconds in self._latency:
            if rule_url is not None:
                if url == rule_url:
                    delay = max(delay, seconds)
            elif rule_host is None or host == rule_host:
                delay = max(delay, seconds)
        return delay

    def transfer_seconds(self, body_bytes: int) -> float:
        """Simulated transfer time for a response body of ``body_bytes``."""
        if self.bandwidth_bytes_per_s is None or body_bytes <= 0:
            return 0.0
        return body_bytes / self.bandwidth_bytes_per_s

    def fault_for(self, url: str, host: str) -> Optional[FaultRule]:
        """The first rule faulting this request, consuming its budget."""
        with self._lock:
            for rule in self._rules:
                if rule.matches(url, host) and rule.applies(url, self.seed):
                    self.faults_injected += 1
                    return rule
        return None
