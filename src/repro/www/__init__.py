"""In-memory web substrate -- the LWP substitution.

The paper's weblint uses Gisle Aas' LWP for "all retrieving of pages and
similar operations" (section 5.7): ``check_url``, the gateway's URL
fetching, and the poacher robot.  This environment has no network, so the
reproduction substitutes a complete in-process equivalent:

- :mod:`repro.www.url` -- URL parsing, normalisation and reference
  resolution (the subset of RFC 1808/3986 a link checker needs);
- :mod:`repro.www.message` -- request/response objects with status codes;
- :mod:`repro.www.virtualweb` -- an in-memory web: named hosts serving
  pages, redirects, slow pages and broken links, deterministic and
  inspectable;
- :mod:`repro.www.client` -- a ``UserAgent`` that performs GET/HEAD
  against a virtual web (or anything with a ``handle`` method), following
  redirects;
- :mod:`repro.www.robotstxt` -- robots.txt parsing for polite robots.

The substitution preserves the paper-relevant behaviour: fetching pages,
following redirects, observing 404s for the broken-link reports, and
obeying robots.txt -- all the code paths weblint, the gateway and poacher
exercise against the real web.
"""

from repro.www.client import UserAgent
from repro.www.message import Request, Response
from repro.www.robotstxt import RobotsTxt
from repro.www.url import URL, urljoin, urlparse
from repro.www.virtualweb import VirtualWeb

__all__ = [
    "URL",
    "urlparse",
    "urljoin",
    "Request",
    "Response",
    "VirtualWeb",
    "UserAgent",
    "RobotsTxt",
]
