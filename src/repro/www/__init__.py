"""In-memory web substrate -- the LWP substitution, faults included.

The paper's weblint uses Gisle Aas' LWP for "all retrieving of pages and
similar operations" (section 5.7): ``check_url``, the gateway's URL
fetching, and the poacher robot.  This environment has no network, so the
reproduction substitutes a complete in-process equivalent:

- :mod:`repro.www.url` -- URL parsing, normalisation and reference
  resolution (the subset of RFC 1808/3986 a link checker needs);
- :mod:`repro.www.message` -- request/response objects with status codes
  and a per-request timeout;
- :mod:`repro.www.virtualweb` -- an in-memory web: named hosts serving
  pages, redirects and broken links, deterministic and inspectable;
- :mod:`repro.www.faults` -- the hostile-internet model: per-URL and
  per-host fault rules (transient 5xx, connection errors, 429 +
  ``Retry-After``, truncated bodies) and simulated latency, either
  counted (``times=N``, then the resource recovers) or drawn from a
  seeded per-``(url, attempt)`` rate that is deterministic regardless
  of request interleaving;
- :mod:`repro.www.client` -- a ``UserAgent`` that performs GET/HEAD
  against a virtual web (or anything with a ``handle`` method),
  following redirects, and optionally survives that hostility: a
  :class:`~repro.www.client.RetryPolicy` (bounded exponential backoff
  with deterministic jitter, retrying only transport errors and
  5xx/429 -- never deterministic 4xx -- and honouring ``Retry-After``),
  a per-request timeout, and a per-host
  :class:`~repro.www.client.CircuitBreaker` that fails fast instead of
  hammering a dead host;
- :mod:`repro.www.httpcache` -- the client-side validator store behind
  conditional fetches: give a ``UserAgent`` an ``http_cache`` and it
  replays ``ETag`` / ``Last-Modified`` as ``If-None-Match`` /
  ``If-Modified-Since``, turning unchanged pages into bodyless ``304``
  responses served from the cache (``poacher --state-dir`` persists it
  between crawls);
- :mod:`repro.www.robotstxt` -- robots.txt parsing for polite robots.

Failure reporting draws one line precisely: an outcome with an HTTP
status -- even a persistent 500 after the retry budget -- is returned as
a :class:`~repro.www.message.Response`; only a request that never
produced a response raises :class:`~repro.www.client.FetchError`.  The
crawling layers keep the two classes apart all the way up their stats.

The substitution preserves the paper-relevant behaviour: fetching pages,
following redirects, observing 404s for the broken-link reports, and
obeying robots.txt -- plus the unreliable-network behaviour the paper's
robot met crawling Canon's site (section 5.3) and our retry machinery
is tested against.
"""

from repro.www.client import (
    CircuitBreaker,
    FetchError,
    HostUnavailableError,
    NoNetworkError,
    RetryPolicy,
    UserAgent,
)
from repro.www.faults import (
    ConnectionFault,
    FaultInjector,
    FaultRule,
    TimeoutFault,
    TransportError,
)
from repro.www.httpcache import CachedEntry, HttpCache
from repro.www.message import Request, Response
from repro.www.robotstxt import RobotsTxt
from repro.www.url import URL, urljoin, urlparse
from repro.www.virtualweb import VirtualWeb

__all__ = [
    "URL",
    "urlparse",
    "urljoin",
    "Request",
    "Response",
    "VirtualWeb",
    "UserAgent",
    "RetryPolicy",
    "CircuitBreaker",
    "FetchError",
    "NoNetworkError",
    "HostUnavailableError",
    "TransportError",
    "ConnectionFault",
    "TimeoutFault",
    "FaultInjector",
    "FaultRule",
    "HttpCache",
    "CachedEntry",
    "RobotsTxt",
]
