"""robots.txt parsing -- politeness for the poacher robot.

Paper section 2 asks "Which parts of your site should be disabled for
robot access?"; the poacher robot must honour the answer.  Implements the
original robots.txt convention (User-agent / Disallow) plus the widely
adopted Allow extension, with longest-match precedence.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class _Group:
    agents: list[str] = field(default_factory=list)
    rules: list[tuple[str, str]] = field(default_factory=list)  # (kind, prefix)

    def matches(self, agent: str) -> bool:
        agent = agent.lower()
        return any(
            pattern == "*" or pattern in agent for pattern in self.agents
        )


class RobotsTxt:
    """Parsed robots.txt rules."""

    def __init__(self, text: str = "") -> None:
        self._groups: list[_Group] = []
        self._parse(text)

    def _parse(self, text: str) -> None:
        group: _Group | None = None
        last_was_agent = False
        for raw_line in text.splitlines():
            line = raw_line.split("#", 1)[0].strip()
            if not line:
                continue
            if ":" not in line:
                continue
            keyword, _, value = line.partition(":")
            keyword = keyword.strip().lower()
            value = value.strip()
            if keyword == "user-agent":
                if group is None or not last_was_agent:
                    group = _Group()
                    self._groups.append(group)
                group.agents.append(value.lower())
                last_was_agent = True
            elif keyword in ("disallow", "allow"):
                last_was_agent = False
                if group is None:
                    continue  # rules before any User-agent are ignored
                group.rules.append((keyword, value))
            else:
                last_was_agent = False

    # -- queries -------------------------------------------------------------

    def allowed(self, path: str, agent: str = "*") -> bool:
        """May ``agent`` fetch ``path``?  Longest matching rule wins."""
        if not path.startswith("/"):
            path = "/" + path
        group = self._group_for(agent)
        if group is None:
            return True
        best_length = -1
        best_kind = "allow"
        for kind, prefix in group.rules:
            if prefix == "":
                # "Disallow:" (empty) means allow everything.
                if kind == "disallow" and best_length < 0:
                    best_kind = "allow"
                continue
            if path.startswith(prefix) and len(prefix) > best_length:
                best_length = len(prefix)
                best_kind = kind
        return best_kind == "allow"

    def _group_for(self, agent: str) -> _Group | None:
        specific = None
        wildcard = None
        for group in self._groups:
            if group.matches(agent) and "*" not in group.agents:
                if specific is None:
                    specific = group
            elif "*" in group.agents and wildcard is None:
                wildcard = group
        return specific if specific is not None else wildcard
