"""A small HTTP/1.0 server exposing a VirtualWeb (or the gateway) on TCP.

The paper's gateways run behind real web servers; "I regularly receive
requests for a standard gateway distribution, particularly for
installation behind firewalls, e.g. for intranet use" (section 4.6).
This module is that standard distribution's server half: a threaded
HTTP/1.0 server written on plain sockets, serving

- the resources of a :class:`~repro.www.virtualweb.VirtualWeb`,
- optionally the weblint gateway under a configurable path
  (``/weblint`` by default), so ``GET /weblint?url=...`` -- or a
  ``POST`` with an urlencoded body -- returns a report page,
- optionally a :class:`~repro.daemon.daemon.LintDaemon`: ``POST /lint``
  speaks the JSON batch protocol on pre-warmed workers, ``/healthz``
  reports liveness, and every daemon-backed route sits behind the
  daemon's admission gate (429 + ``Retry-After`` when saturated, 503
  while draining), and
- the process's metrics registry in the OpenMetrics text exposition
  under ``/metrics`` (configurable; ``metrics_path=None`` disables it),
  so a Prometheus-style scraper -- or ``curl`` -- can watch a running
  gateway.

It exists to exercise the full network code path end to end inside the
test-suite (real sockets, real request parsing) without any outside
connectivity.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Optional

from repro.www.message import Request, Response, reason_for
from repro.www.virtualweb import VirtualWeb

_MAX_REQUEST_BYTES = 1024 * 1024


class HTTPServer:
    """Threaded HTTP/1.0 server over a VirtualWeb.

    Use as a context manager::

        with HTTPServer(web) as server:
            raw_http_get(f"http://127.0.0.1:{server.port}/index.html")
    """

    def __init__(
        self,
        web: VirtualWeb,
        host: str = "127.0.0.1",
        port: int = 0,
        gateway=None,
        gateway_path: str = "/weblint",
        metrics_path: Optional[str] = "/metrics",
        daemon=None,
        lint_path: str = "/lint",
        health_path: str = "/healthz",
    ) -> None:
        self.web = web
        self.host = host
        self.gateway = gateway
        self.gateway_path = gateway_path
        self.metrics_path = metrics_path
        self.daemon = daemon
        self.lint_path = lint_path
        self.health_path = health_path
        self._socket = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._socket.bind((host, port))
        self._socket.listen(16)
        self.port = self._socket.getsockname()[1]
        self._running = False
        self._thread: Optional[threading.Thread] = None
        # Handler threads do the increment concurrently; the lock keeps
        # the count exact (it is asserted, and exported as a gauge).
        self._served_lock = threading.Lock()
        self._requests_served = 0

    @property
    def requests_served(self) -> int:
        with self._served_lock:
            return self._requests_served

    def _count_request(self) -> None:
        with self._served_lock:
            self._requests_served += 1
            served = self._requests_served
        from repro.obs.metrics import get_registry

        get_registry().set_gauge("www.server.requests_served", served)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "HTTPServer":
        self._running = True
        self._thread = threading.Thread(target=self._serve_loop, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._running = False
        try:
            # Unblock accept() with a throwaway connection.
            with socket.create_connection((self.host, self.port), timeout=1):
                pass
        except OSError:
            pass
        self._socket.close()
        if self._thread is not None:
            self._thread.join(timeout=2)

    def __enter__(self) -> "HTTPServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- the loop -------------------------------------------------------------

    def _serve_loop(self) -> None:
        while self._running:
            try:
                connection, _address = self._socket.accept()
            except OSError:
                return
            if not self._running:
                connection.close()
                return
            thread = threading.Thread(
                target=self._handle_connection, args=(connection,), daemon=True
            )
            thread.start()

    def _handle_connection(self, connection: socket.socket) -> None:
        try:
            connection.settimeout(5)
            raw = self._read_request(connection)
            if raw is None:
                return
            response_bytes = self._respond(raw)
            connection.sendall(response_bytes)
        except OSError:
            pass
        finally:
            try:
                connection.close()
            except OSError:
                pass

    @staticmethod
    def _read_request(connection: socket.socket) -> Optional[bytes]:
        """Read one request: the head, then Content-Length body bytes.

        The historical bug here stopped at the header boundary, so POST
        form submissions silently lost their body.  Now the declared
        body is read too, bounded by ``_MAX_REQUEST_BYTES`` overall so
        a hostile Content-Length cannot balloon memory.
        """
        data = b""
        while b"\r\n\r\n" not in data and b"\n\n" not in data:
            try:
                chunk = connection.recv(65536)
            except OSError:
                return None
            if not chunk:
                break
            data += chunk
            if len(data) > _MAX_REQUEST_BYTES:
                return data
        header_end = _header_end(data)
        if header_end is None:
            return data or None
        content_length = _declared_content_length(data[:header_end])
        want = min(header_end + content_length, _MAX_REQUEST_BYTES)
        while len(data) < want:
            try:
                chunk = connection.recv(65536)
            except OSError:
                break
            if not chunk:
                break
            data += chunk
        return data or None

    # -- request handling ----------------------------------------------------------

    def _respond(self, raw: bytes) -> bytes:
        try:
            method, target = self._parse_request_line(raw)
        except ValueError as exc:
            return _render(400, f"<h1>400 Bad Request</h1><p>{exc}</p>")
        self._count_request()

        headers, body = _split_head_body(raw)
        path, _, query = target.partition("?")
        if self.metrics_path is not None and path == self.metrics_path:
            from repro.obs.export import render_openmetrics

            return _render(
                200,
                render_openmetrics(),
                content_type="text/plain; version=0.0.4",
                include_body=method != "HEAD",
            )
        if self.daemon is not None and path == self.health_path:
            return self._respond_health(method)
        if self.daemon is not None and path == self.lint_path:
            return self._respond_lint(method, body)
        if self.gateway is not None and path == self.gateway_path:
            return self._respond_gateway(method, query, headers, body)

        try:
            request = Request(method=method, url=f"{self.base_url}{target}")
        except ValueError:
            return _render(405, "<h1>405 Method Not Allowed</h1>")
        response = self.web.handle(request)
        return _render_response(response, include_body=method != "HEAD")

    def _respond_gateway(
        self, method: str, query: str, headers: dict[str, str], body: bytes
    ) -> bytes:
        from repro.gateway.forms import parse_form, parse_query_string

        form = parse_query_string(query)
        if method == "POST" and body:
            content_type = headers.get("content-type", "")
            if (
                not content_type
                or "application/x-www-form-urlencoded" in content_type
            ):
                posted = parse_form(body.decode("utf-8", errors="replace"))
                for name, values in posted.fields.items():
                    for value in values:
                        form.add(name, value)
        if self.daemon is not None:
            from repro.daemon.daemon import DaemonSaturated

            try:
                with self.daemon.admitted():
                    gateway_response = self.gateway.handle(form)
            except DaemonSaturated as exc:
                return _render_saturated(exc)
        else:
            gateway_response = self.gateway.handle(form)
        return _render(
            gateway_response.status,
            gateway_response.body,
            content_type=gateway_response.content_type,
            include_body=method != "HEAD",
        )

    def _respond_lint(self, method: str, body: bytes) -> bytes:
        from repro.config.options import UnknownMessageError
        from repro.daemon.daemon import DaemonSaturated, options_from_dict
        from repro.daemon.protocol import (
            ProtocolError,
            decode_batch_request,
            encode_batch_response,
        )

        if method != "POST":
            return _render_json(405, {"error": "POST a JSON lint batch"})
        try:
            requests, raw_options = decode_batch_request(
                body.decode("utf-8", errors="replace")
            )
            options = (
                options_from_dict(self.daemon.options, raw_options)
                if raw_options
                else None
            )
        except (
            ProtocolError, UnknownMessageError, ValueError, KeyError
        ) as exc:
            return _render_json(400, {"error": str(exc)})
        try:
            with self.daemon.admitted():
                results = self.daemon.check_batch(requests, options=options)
        except DaemonSaturated as exc:
            return _render_saturated(exc, as_json=True)
        return _render(
            200, encode_batch_response(results), content_type="application/json"
        )

    def _respond_health(self, method: str) -> bytes:
        daemon = self.daemon
        return _render_json(
            200,
            {
                "status": "draining" if daemon.draining else "ok",
                "queue_depth": daemon.gate.depth,
                "queue_limit": daemon.gate.limit,
                "workers": daemon.jobs if daemon.pool is not None else 1,
            },
            include_body=method != "HEAD",
        )

    @staticmethod
    def _parse_request_line(raw: bytes) -> tuple[str, str]:
        try:
            first_line = raw.split(b"\r\n", 1)[0].split(b"\n", 1)[0]
            text = first_line.decode("latin-1")
        except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 total
            raise ValueError("undecodable request line") from exc
        parts = text.split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise ValueError(f"malformed request line: {text!r}")
        method, target, _version = parts
        if not target.startswith("/"):
            raise ValueError(f"origin-form target expected: {target!r}")
        return method.upper(), target


def _header_end(data: bytes) -> Optional[int]:
    """Offset just past the head/body separator, or None if not seen."""
    candidates = []
    for separator in (b"\r\n\r\n", b"\n\n"):
        index = data.find(separator)
        if index != -1:
            candidates.append(index + len(separator))
    return min(candidates) if candidates else None


def _declared_content_length(head: bytes) -> int:
    """The Content-Length a request head declares (0 when absent/bad)."""
    for line in head.replace(b"\r\n", b"\n").split(b"\n")[1:]:
        key, _, value = line.partition(b":")
        if key.strip().lower() == b"content-length":
            try:
                return max(0, int(value.strip()))
            except ValueError:
                return 0
    return 0


def _split_head_body(raw: bytes) -> tuple[dict[str, str], bytes]:
    """Lower-cased header dict plus the body bytes of one raw request."""
    header_end = _header_end(raw)
    if header_end is None:
        head, body = raw, b""
    else:
        head, body = raw[:header_end], raw[header_end:]
    headers: dict[str, str] = {}
    for line in head.replace(b"\r\n", b"\n").split(b"\n")[1:]:
        if not line.strip():
            continue
        key, sep, value = line.partition(b":")
        if not sep:
            continue
        headers[key.strip().lower().decode("latin-1")] = value.strip().decode(
            "latin-1", errors="replace"
        )
    content_length = _declared_content_length(head)
    return headers, body[:content_length] if content_length else body


def _render(
    status: int,
    body: str,
    content_type: str = "text/html",
    include_body: bool = True,
    extra_headers: Optional[dict[str, str]] = None,
) -> bytes:
    payload = body.encode("utf-8")
    lines = [
        f"HTTP/1.0 {status} {reason_for(status)}",
        f"Content-Type: {content_type}; charset=utf-8",
        f"Content-Length: {len(payload)}",
        "Server: weblint-repro/2.0",
    ]
    for key, value in (extra_headers or {}).items():
        lines.append(f"{key}: {value}")
    lines.append("Connection: close")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + (payload if include_body else b"")


def _render_json(
    status: int, payload: dict[str, object], include_body: bool = True
) -> bytes:
    return _render(
        status,
        json.dumps(payload),
        content_type="application/json",
        include_body=include_body,
    )


def _render_saturated(exc, as_json: bool = False) -> bytes:
    """The backpressure response: 429 when full, 503 while draining."""
    status = 503 if exc.draining else 429
    headers = {"Retry-After": str(exc.retry_after_s)}
    if as_json:
        return _render(
            status,
            json.dumps({"error": str(exc), "retry_after": exc.retry_after_s}),
            content_type="application/json",
            extra_headers=headers,
        )
    return _render(
        status,
        f"<h1>{status} {reason_for(status)}</h1><p>{exc}</p>",
        extra_headers=headers,
    )


def _render_response(response: Response, include_body: bool = True) -> bytes:
    payload = response.body.encode("utf-8")
    lines = [f"HTTP/1.0 {response.status} {response.reason}"]
    seen_keys = set()
    for key, value in response.headers.items():
        lines.append(f"{key}: {value}")
        seen_keys.add(key.lower())
    if "content-length" not in seen_keys:
        lines.append(f"Content-Length: {len(payload)}")
    lines.append("Connection: close")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + (payload if include_body else b"")


def _raw_request(
    method: str,
    url: str,
    body: Optional[bytes] = None,
    content_type: str = "application/json",
    timeout: float = 5.0,
) -> tuple[int, dict[str, str], str]:
    """One raw-socket HTTP/1.0 exchange; ``(status, headers, body)``.

    A malformed status line from the server raises a clean
    :class:`ValueError` (historically this crashed with an IndexError
    deep in the parsing).
    """
    from repro.www.url import urlparse

    parsed = urlparse(url)
    host = parsed.host or "127.0.0.1"
    port = parsed.effective_port() or 80
    target = parsed.path or "/"
    if parsed.query:
        target += "?" + parsed.query

    lines = [
        f"{method} {target} HTTP/1.0",
        f"Host: {host}",
        "User-Agent: repro-raw-client/1.0",
    ]
    if body is not None:
        lines.append(f"Content-Type: {content_type}")
        lines.append(f"Content-Length: {len(body)}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")

    with socket.create_connection((host, port), timeout=timeout) as connection:
        connection.sendall(head + (body or b""))
        data = b""
        while True:
            chunk = connection.recv(65536)
            if not chunk:
                break
            data += chunk

    head_bytes, _, payload = data.partition(b"\r\n\r\n")
    head_lines = head_bytes.decode("latin-1").split("\r\n")
    status_line = head_lines[0] if head_lines else ""
    parts = status_line.split()
    if len(parts) < 2 or not parts[1].isdigit():
        raise ValueError(f"malformed status line: {status_line!r}")
    status = int(parts[1])
    headers: dict[str, str] = {}
    for line in head_lines[1:]:
        key, _, value = line.partition(":")
        headers[key.strip().lower()] = value.strip()
    return status, headers, payload.decode("utf-8", errors="replace")


def http_get(url: str, timeout: float = 5.0) -> tuple[int, dict[str, str], str]:
    """A minimal raw-socket HTTP/1.0 GET, for tests and examples.

    Returns ``(status, headers, body)``.  Only ``http://host:port/path``
    URLs are supported -- this is deliberately the simplest client that
    can exercise :class:`HTTPServer` end to end.  Raises ``ValueError``
    when the server's status line is malformed.
    """
    return _raw_request("GET", url, timeout=timeout)


def http_post(
    url: str,
    body: str,
    content_type: str = "application/json",
    timeout: float = 5.0,
) -> tuple[int, dict[str, str], str]:
    """Raw-socket HTTP/1.0 POST -- the client half of ``POST /lint``."""
    return _raw_request(
        "POST",
        url,
        body=body.encode("utf-8"),
        content_type=content_type,
        timeout=timeout,
    )
