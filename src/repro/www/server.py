"""A small HTTP/1.0 server exposing a VirtualWeb (or the gateway) on TCP.

The paper's gateways run behind real web servers; "I regularly receive
requests for a standard gateway distribution, particularly for
installation behind firewalls, e.g. for intranet use" (section 4.6).
This module is that standard distribution's server half: a threaded
HTTP/1.0 server written on plain sockets, serving

- the resources of a :class:`~repro.www.virtualweb.VirtualWeb`,
- optionally the weblint gateway under a configurable path
  (``/weblint`` by default), so ``GET /weblint?url=...`` returns a
  report page, and
- the process's metrics registry in the OpenMetrics text exposition
  under ``/metrics`` (configurable; ``metrics_path=None`` disables it),
  so a Prometheus-style scraper -- or ``curl`` -- can watch a running
  gateway.

It exists to exercise the full network code path end to end inside the
test-suite (real sockets, real request parsing) without any outside
connectivity.
"""

from __future__ import annotations

import socket
import threading
from typing import Optional

from repro.www.message import Request, Response, reason_for
from repro.www.virtualweb import VirtualWeb

_MAX_REQUEST_BYTES = 64 * 1024


class HTTPServer:
    """Threaded HTTP/1.0 server over a VirtualWeb.

    Use as a context manager::

        with HTTPServer(web) as server:
            raw_http_get(f"http://127.0.0.1:{server.port}/index.html")
    """

    def __init__(
        self,
        web: VirtualWeb,
        host: str = "127.0.0.1",
        port: int = 0,
        gateway=None,
        gateway_path: str = "/weblint",
        metrics_path: Optional[str] = "/metrics",
    ) -> None:
        self.web = web
        self.host = host
        self.gateway = gateway
        self.gateway_path = gateway_path
        self.metrics_path = metrics_path
        self._socket = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._socket.bind((host, port))
        self._socket.listen(16)
        self.port = self._socket.getsockname()[1]
        self._running = False
        self._thread: Optional[threading.Thread] = None
        self.requests_served = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "HTTPServer":
        self._running = True
        self._thread = threading.Thread(target=self._serve_loop, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._running = False
        try:
            # Unblock accept() with a throwaway connection.
            with socket.create_connection((self.host, self.port), timeout=1):
                pass
        except OSError:
            pass
        self._socket.close()
        if self._thread is not None:
            self._thread.join(timeout=2)

    def __enter__(self) -> "HTTPServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- the loop -------------------------------------------------------------

    def _serve_loop(self) -> None:
        while self._running:
            try:
                connection, _address = self._socket.accept()
            except OSError:
                return
            if not self._running:
                connection.close()
                return
            thread = threading.Thread(
                target=self._handle_connection, args=(connection,), daemon=True
            )
            thread.start()

    def _handle_connection(self, connection: socket.socket) -> None:
        try:
            connection.settimeout(5)
            raw = self._read_request(connection)
            if raw is None:
                return
            response_bytes = self._respond(raw)
            connection.sendall(response_bytes)
        except OSError:
            pass
        finally:
            try:
                connection.close()
            except OSError:
                pass

    @staticmethod
    def _read_request(connection: socket.socket) -> Optional[bytes]:
        data = b""
        while b"\r\n\r\n" not in data and b"\n\n" not in data:
            try:
                chunk = connection.recv(4096)
            except OSError:
                return None
            if not chunk:
                break
            data += chunk
            if len(data) > _MAX_REQUEST_BYTES:
                break
        return data or None

    # -- request handling ----------------------------------------------------------

    def _respond(self, raw: bytes) -> bytes:
        try:
            method, target = self._parse_request_line(raw)
        except ValueError as exc:
            return _render(400, f"<h1>400 Bad Request</h1><p>{exc}</p>")
        self.requests_served += 1

        path, _, query = target.partition("?")
        if self.metrics_path is not None and path == self.metrics_path:
            from repro.obs.export import render_openmetrics

            return _render(
                200,
                render_openmetrics(),
                content_type="text/plain; version=0.0.4",
                include_body=method != "HEAD",
            )
        if self.gateway is not None and path == self.gateway_path:
            from repro.gateway.forms import parse_query_string

            gateway_response = self.gateway.handle(parse_query_string(query))
            return _render(
                gateway_response.status,
                gateway_response.body,
                content_type=gateway_response.content_type,
                include_body=method != "HEAD",
            )

        try:
            request = Request(method=method, url=f"{self.base_url}{target}")
        except ValueError:
            return _render(405, "<h1>405 Method Not Allowed</h1>")
        response = self.web.handle(request)
        return _render_response(response, include_body=method != "HEAD")

    @staticmethod
    def _parse_request_line(raw: bytes) -> tuple[str, str]:
        try:
            first_line = raw.split(b"\r\n", 1)[0].split(b"\n", 1)[0]
            text = first_line.decode("latin-1")
        except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 total
            raise ValueError("undecodable request line") from exc
        parts = text.split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise ValueError(f"malformed request line: {text!r}")
        method, target, _version = parts
        if not target.startswith("/"):
            raise ValueError(f"origin-form target expected: {target!r}")
        return method.upper(), target


def _render(
    status: int,
    body: str,
    content_type: str = "text/html",
    include_body: bool = True,
) -> bytes:
    payload = body.encode("utf-8")
    head = (
        f"HTTP/1.0 {status} {reason_for(status)}\r\n"
        f"Content-Type: {content_type}; charset=utf-8\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Server: weblint-repro/2.0\r\n"
        f"Connection: close\r\n"
        f"\r\n"
    ).encode("latin-1")
    return head + (payload if include_body else b"")


def _render_response(response: Response, include_body: bool = True) -> bytes:
    payload = response.body.encode("utf-8")
    lines = [f"HTTP/1.0 {response.status} {response.reason}"]
    seen_keys = set()
    for key, value in response.headers.items():
        lines.append(f"{key}: {value}")
        seen_keys.add(key.lower())
    if "content-length" not in seen_keys:
        lines.append(f"Content-Length: {len(payload)}")
    lines.append("Connection: close")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + (payload if include_body else b"")


def http_get(url: str, timeout: float = 5.0) -> tuple[int, dict[str, str], str]:
    """A minimal raw-socket HTTP/1.0 GET, for tests and examples.

    Returns ``(status, headers, body)``.  Only ``http://host:port/path``
    URLs are supported -- this is deliberately the simplest client that
    can exercise :class:`HTTPServer` end to end.
    """
    from repro.www.url import urlparse

    parsed = urlparse(url)
    host = parsed.host or "127.0.0.1"
    port = parsed.effective_port() or 80
    target = parsed.path or "/"
    if parsed.query:
        target += "?" + parsed.query

    with socket.create_connection((host, port), timeout=timeout) as connection:
        request = (
            f"GET {target} HTTP/1.0\r\n"
            f"Host: {host}\r\n"
            f"User-Agent: repro-raw-client/1.0\r\n"
            f"\r\n"
        )
        connection.sendall(request.encode("latin-1"))
        data = b""
        while True:
            chunk = connection.recv(4096)
            if not chunk:
                break
            data += chunk

    head, _, body = data.partition(b"\r\n\r\n")
    head_lines = head.decode("latin-1").split("\r\n")
    status = int(head_lines[0].split()[1])
    headers: dict[str, str] = {}
    for line in head_lines[1:]:
        key, _, value = line.partition(":")
        headers[key.strip().lower()] = value.strip()
    return status, headers, body.decode("utf-8", errors="replace")
