"""UserAgent -- the client half of the LWP substitution.

Performs GET/HEAD requests against a :class:`~repro.www.virtualweb.VirtualWeb`
(or anything else with a ``handle(Request) -> Response`` method), following
redirects with loop detection, and optionally caching responses -- the
facilities weblint's ``check_url``, the gateway and the poacher robot rely
on.

On top of the basic fetch path sits the resilience layer the crawling
front-ends need against an unreliable web:

- :class:`RetryPolicy`: bounded exponential backoff with deterministic
  jitter for *retryable* outcomes only -- transport errors (connection
  failures, timeouts, truncated bodies) and retryable statuses (5xx,
  429).  Deterministic 4xx responses are never retried.  A ``Retry-After``
  header on a 429/503 is honoured.  When the budget is exhausted on a
  persistent HTTP error the last response is returned (so callers report
  an HTTP failure, not a transport one); a persistent transport error
  raises :class:`FetchError`.
- :class:`CircuitBreaker`: per-host closed/open/half-open breaker.  After
  ``failure_threshold`` consecutive failures the host is short-circuited
  (:class:`HostUnavailableError`, no request issued) until
  ``reset_after_s`` has passed, when a single half-open probe decides
  whether to close the circuit again.
- Per-request timeout (``timeout_s``), enforced by the virtual web's
  latency simulation.

On top of both sits the incremental-recrawl layer: pass an
``http_cache`` (:class:`repro.www.httpcache.HttpCache`) and every GET
becomes *conditional* -- the stored ``ETag`` / ``Last-Modified``
validators are replayed as ``If-None-Match`` / ``If-Modified-Since``,
a ``304 Not Modified`` is turned back into the stored response without
transferring the body (``www.conditional.revalidated``), a changed page
comes back as a normal 200 and refreshes the store
(``www.conditional.modified``), and a 304 whose stored body has been
evicted falls back to one full unconditional GET
(``www.conditional.lost_body``).  See docs/caching.md.

All knobs are off by default: a bare ``UserAgent(web)`` behaves exactly
like the paper's simple LWP user agent.
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.obs.metrics import get_registry
from repro.www.faults import TransportError
from repro.www.message import Headers, Request, Response
from repro.www.url import urljoin, urlparse


class FetchError(Exception):
    """A URL could not be fetched at the transport level."""


class NoNetworkError(FetchError):
    """Raised when no web was supplied and a live fetch was attempted.

    Mirrors the paper's optional-LWP behaviour: "If you don't have LWP
    installed, you can still use weblint, but the check_url method won't
    be available."
    """


class HostUnavailableError(FetchError):
    """The per-host circuit breaker is open; no request was issued."""


#: Statuses worth retrying: transient server errors and throttling.
RETRYABLE_STATUSES = frozenset({429, 500, 502, 503, 504})


@dataclass(frozen=True)
class RetryPolicy:
    """How the agent retries one request.

    Backoff for attempt *n* (0-based) is ``backoff_base_s * 2**n``,
    capped at ``backoff_max_s``, stretched by up to ``jitter`` of itself.
    The jitter is deterministic -- derived from a stable hash of
    ``(url, attempt)`` -- so a crawl's timing is reproducible and
    independent of thread scheduling.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_max_s: float = 2.0
    jitter: float = 0.25
    retry_statuses: frozenset[int] = RETRYABLE_STATUSES
    honor_retry_after: bool = True

    def retryable_status(self, status: int) -> bool:
        return status in self.retry_statuses

    def backoff_s(
        self, url: str, attempt: int, retry_after: Optional[float] = None
    ) -> float:
        delay = min(self.backoff_base_s * (2 ** attempt), self.backoff_max_s)
        fraction = zlib.crc32(f"{url}#{attempt}".encode("utf-8")) / 0xFFFFFFFF
        delay *= 1.0 + self.jitter * fraction
        if retry_after is not None and self.honor_retry_after:
            delay = max(delay, retry_after)
        return delay


#: The do-nothing policy a bare UserAgent runs with.
NO_RETRY = RetryPolicy(max_retries=0)


class CircuitBreaker:
    """Per-host circuit breaker (closed -> open -> half-open -> ...).

    ``failure_threshold`` consecutive failures open the circuit for
    ``reset_after_s`` seconds; while open, :meth:`allow` is False and the
    agent fails fast without touching the host.  After the window one
    probe request is let through: success closes the circuit, failure
    re-opens it for another full window.  Thread-safe -- the concurrent
    crawl frontier shares one breaker across its workers.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_after_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.failure_threshold = max(1, failure_threshold)
        self.reset_after_s = reset_after_s
        self._clock = clock
        self._lock = threading.Lock()
        self._failures: dict[str, int] = {}
        self._state: dict[str, str] = {}
        self._opened_at: dict[str, float] = {}

    def state(self, host: str) -> str:
        with self._lock:
            return self._state.get(host, self.CLOSED)

    def allow(self, host: str) -> bool:
        """May a request to ``host`` be issued right now?"""
        with self._lock:
            state = self._state.get(host, self.CLOSED)
            if state == self.CLOSED:
                return True
            if state == self.OPEN:
                if self._clock() - self._opened_at[host] >= self.reset_after_s:
                    self._state[host] = self.HALF_OPEN
                    get_registry().inc("www.breaker.probes")
                    return True
                return False
            # Half-open: one probe is already in flight; hold the rest.
            return False

    def record_success(self, host: str) -> None:
        with self._lock:
            self._failures[host] = 0
            if self._state.get(host, self.CLOSED) != self.CLOSED:
                self._state[host] = self.CLOSED
                get_registry().inc("www.breaker.closed")

    def record_failure(self, host: str) -> None:
        with self._lock:
            state = self._state.get(host, self.CLOSED)
            failures = self._failures.get(host, 0) + 1
            self._failures[host] = failures
            if state == self.HALF_OPEN or failures >= self.failure_threshold:
                if state != self.OPEN:
                    get_registry().inc("www.breaker.opened")
                self._state[host] = self.OPEN
                self._opened_at[host] = self._clock()

    def open_hosts(self) -> list[str]:
        with self._lock:
            return sorted(
                host for host, state in self._state.items()
                if state == self.OPEN
            )


@dataclass
class _Outcome:
    """What one wire attempt produced."""

    response: Optional[Response] = None
    error: Optional[TransportError] = None

    @property
    def retry_after(self) -> Optional[float]:
        if self.response is None:
            return None
        value = self.response.headers.get("Retry-After")
        if value is None:
            return None
        try:
            return float(value)
        except ValueError:
            return None


class UserAgent:
    """A small, polite HTTP client for the virtual web."""

    def __init__(
        self,
        web=None,
        max_redirects: int = 5,
        agent_name: str = "weblint-repro/2.0",
        cache: bool = False,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        timeout_s: Optional[float] = None,
        http_cache=None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.web = web
        self.max_redirects = max_redirects
        self.agent_name = agent_name
        self.retry = retry if retry is not None else NO_RETRY
        self.breaker = breaker
        self.timeout_s = timeout_s
        #: Optional :class:`repro.www.httpcache.HttpCache`; when set,
        #: GETs are conditional and 304s revalidate the stored copy.
        self.http_cache = http_cache
        self._sleep = sleep
        self._cache: Optional[dict[tuple[str, str], Response]] = {} if cache else None
        self.requests_made = 0

    # -- public API ------------------------------------------------------------

    def get(self, url: str) -> Response:
        return self.request("GET", url)

    def head(self, url: str) -> Response:
        return self.request("HEAD", url)

    def request(self, method: str, url: str) -> Response:
        """Issue one request, following redirects."""
        if self.web is None:
            raise NoNetworkError(
                "this UserAgent has no web attached; pass a VirtualWeb "
                "(live network access is substituted in this reproduction)"
            )
        registry = get_registry()
        url = str(urlparse(url).normalised().without_fragment())
        cache_key = (method.upper(), url)
        if self._cache is not None:
            if cache_key in self._cache:
                registry.inc("www.cache.hits")
                return self._cache[cache_key]
            registry.inc("www.cache.misses")

        start = time.perf_counter()
        seen: list[str] = []
        current = url
        response = None
        wire_bytes = 0
        for _hop in range(self.max_redirects + 1):
            if current in seen:
                raise FetchError(f"redirect loop: {' -> '.join(seen + [current])}")
            seen.append(current)
            response, wire_bytes = self._issue_hop(method, current)
            if not response.is_redirect or response.location is None:
                break
            current = str(urljoin(current, response.location).without_fragment())
        else:
            raise FetchError(
                f"too many redirects (> {self.max_redirects}) fetching {url}"
            )

        assert response is not None
        final = Response(
            status=response.status,
            url=current,
            body=response.body,
            headers=response.headers,
            redirects=tuple(seen[:-1]),
        )
        registry.inc("www.requests")
        if len(seen) > 1:
            registry.inc("www.redirects", len(seen) - 1)
        # Revalidated 304s transferred no body: only wire bytes count.
        registry.inc("www.bytes_fetched", wire_bytes)
        registry.observe(
            "www.fetch.latency_ms", (time.perf_counter() - start) * 1000.0
        )
        # Never cache failures: with caching on, a cached 404/503 would
        # be re-served to every retry and every later crawl of the URL.
        if self._cache is not None and final.ok:
            self._cache[cache_key] = final
        return final

    # -- the conditional single-hop fetch ---------------------------------------

    def _issue_hop(self, method: str, url: str) -> tuple[Response, int]:
        """One redirect hop, conditionally when a validator is stored.

        Returns ``(response, wire_bytes)`` where ``wire_bytes`` is the
        body length actually transferred -- zero for a revalidated 304,
        whose body is resurrected from the :class:`HttpCache`.
        """
        registry = get_registry()
        entry = None
        if self.http_cache is not None and method == "GET":
            entry = self.http_cache.entry_for(url)
            if entry is not None and not entry.has_validators:
                entry = None
        response = self._issue(method, url, entry)
        if entry is not None:
            registry.inc("www.conditional.requests")
        if response.status == 304 and entry is not None:
            body = self.http_cache.body_for(entry)
            if body is None:
                # The index outlived the stored body: the validator
                # matched but there is nothing to serve.  Pay for one
                # full unconditional GET instead.
                registry.inc("www.conditional.lost_body")
                response = self._issue(method, url, None)
                if self.http_cache is not None and response.ok:
                    self.http_cache.store(url, response)
                return response, len(response.body)
            registry.inc("www.conditional.revalidated")
            headers = Headers(
                {
                    "Content-Type": entry.content_type,
                    "Content-Length": str(
                        len(body.encode("utf-8", errors="surrogatepass"))
                    ),
                }
            )
            if entry.etag is not None:
                headers.set("ETag", entry.etag)
            if entry.last_modified is not None:
                headers.set("Last-Modified", entry.last_modified)
            return Response(
                status=entry.status, url=url, body=body, headers=headers
            ), 0
        if self.http_cache is not None and method == "GET" and response.ok:
            if entry is not None:
                registry.inc("www.conditional.modified")
            self.http_cache.store(url, response)
        return response, len(response.body)

    # -- the resilient single-hop fetch ----------------------------------------

    def _issue(self, method: str, url: str, validators=None) -> Response:
        """One redirect hop: attempt + retries + breaker accounting.

        Returns the final response -- which may be a non-OK HTTP error
        once the retry budget is spent -- or raises :class:`FetchError`
        when no attempt produced a response at all.
        """
        registry = get_registry()
        host = urlparse(url).host
        policy = self.retry
        outcome = _Outcome()
        for attempt in range(policy.max_retries + 1):
            if self.breaker is not None and not self.breaker.allow(host):
                registry.inc("www.breaker.short_circuits")
                raise HostUnavailableError(
                    f"circuit open for host {host!r}; not fetching {url}"
                )
            if attempt:
                delay = policy.backoff_s(url, attempt - 1, outcome.retry_after)
                registry.inc("www.retry.attempts")
                registry.observe("www.retry.backoff_ms", delay * 1000.0)
                if outcome.retry_after is not None:
                    registry.inc("www.retry.retry_after_honored")
                self._sleep(delay)
            outcome = self._attempt(method, url, validators)
            if outcome.error is None and outcome.response is not None:
                response = outcome.response
                retryable = policy.retryable_status(response.status)
                if self.breaker is not None:
                    if retryable or response.status >= 500:
                        self.breaker.record_failure(host)
                    else:
                        self.breaker.record_success(host)
                if not retryable:
                    return response
            else:
                registry.inc("www.fetch.transport_errors")
                if self.breaker is not None:
                    self.breaker.record_failure(host)
        registry.inc("www.retry.giveups")
        if outcome.error is None and outcome.response is not None:
            # Budget spent on a persistent retryable status: hand the
            # HTTP error back so callers classify it as such.
            return outcome.response
        raise FetchError(
            f"could not fetch {url}: {outcome.error}"
        ) from outcome.error

    def _attempt(self, method: str, url: str, validators=None) -> _Outcome:
        """One wire attempt; truncated bodies count as transport errors."""
        request = Request(method=method, url=url, timeout_s=self.timeout_s)
        request.headers.set("User-Agent", self.agent_name)
        if validators is not None:
            if validators.etag is not None:
                request.headers.set("If-None-Match", validators.etag)
            if validators.last_modified is not None:
                request.headers.set("If-Modified-Since", validators.last_modified)
        self.requests_made += 1
        try:
            response = self.web.handle(request)
        except TransportError as error:
            return _Outcome(error=error)
        if method == "GET" and not response.is_redirect:
            declared = response.headers.get("Content-Length")
            if declared is not None and declared.isdigit():
                actual = len(response.body.encode("utf-8"))
                if actual < int(declared):
                    get_registry().inc("www.fetch.truncated")
                    return _Outcome(
                        response=response,
                        error=TransportError(
                            f"truncated body fetching {url}: got {actual} "
                            f"of {declared} bytes"
                        ),
                    )
        return _Outcome(response=response)

    # -- conveniences ---------------------------------------------------------------

    def exists(self, url: str) -> bool:
        """HEAD-based existence check, the broken-link robot primitive.

        Paper section 3.5: "At its simplest, this merely consists of
        sending a HEAD request, and reporting all URLs which result in a
        404 response code."
        """
        try:
            return self.head(url).ok
        except FetchError:
            return False
