"""UserAgent -- the client half of the LWP substitution.

Performs GET/HEAD requests against a :class:`~repro.www.virtualweb.VirtualWeb`
(or anything else with a ``handle(Request) -> Response`` method), following
redirects with loop detection, and optionally caching responses -- the
facilities weblint's ``check_url``, the gateway and the poacher robot rely
on.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.obs.metrics import get_registry
from repro.www.message import Request, Response
from repro.www.url import urljoin, urlparse


class FetchError(Exception):
    """A URL could not be fetched at the transport level."""


class NoNetworkError(FetchError):
    """Raised when no web was supplied and a live fetch was attempted.

    Mirrors the paper's optional-LWP behaviour: "If you don't have LWP
    installed, you can still use weblint, but the check_url method won't
    be available."
    """


class UserAgent:
    """A small, polite HTTP client for the virtual web."""

    def __init__(
        self,
        web=None,
        max_redirects: int = 5,
        agent_name: str = "weblint-repro/2.0",
        cache: bool = False,
    ) -> None:
        self.web = web
        self.max_redirects = max_redirects
        self.agent_name = agent_name
        self._cache: Optional[dict[tuple[str, str], Response]] = {} if cache else None
        self.requests_made = 0

    # -- public API ------------------------------------------------------------

    def get(self, url: str) -> Response:
        return self.request("GET", url)

    def head(self, url: str) -> Response:
        return self.request("HEAD", url)

    def request(self, method: str, url: str) -> Response:
        """Issue one request, following redirects."""
        if self.web is None:
            raise NoNetworkError(
                "this UserAgent has no web attached; pass a VirtualWeb "
                "(live network access is substituted in this reproduction)"
            )
        registry = get_registry()
        url = str(urlparse(url).normalised().without_fragment())
        cache_key = (method.upper(), url)
        if self._cache is not None and cache_key in self._cache:
            registry.inc("www.cache.hits")
            return self._cache[cache_key]

        start = time.perf_counter()
        seen: list[str] = []
        current = url
        response = None
        for _hop in range(self.max_redirects + 1):
            if current in seen:
                raise FetchError(f"redirect loop: {' -> '.join(seen + [current])}")
            seen.append(current)
            request = Request(method=method, url=current)
            request.headers.set("User-Agent", self.agent_name)
            self.requests_made += 1
            response = self.web.handle(request)
            if not response.is_redirect or response.location is None:
                break
            current = str(urljoin(current, response.location).without_fragment())
        else:
            raise FetchError(
                f"too many redirects (> {self.max_redirects}) fetching {url}"
            )

        assert response is not None
        final = Response(
            status=response.status,
            url=current,
            body=response.body,
            headers=response.headers,
            redirects=tuple(seen[:-1]),
        )
        registry.inc("www.requests")
        if len(seen) > 1:
            registry.inc("www.redirects", len(seen) - 1)
        registry.inc("www.bytes_fetched", len(final.body))
        registry.observe(
            "www.fetch.latency_ms", (time.perf_counter() - start) * 1000.0
        )
        if self._cache is not None:
            self._cache[cache_key] = final
        return final

    # -- conveniences ---------------------------------------------------------------

    def exists(self, url: str) -> bool:
        """HEAD-based existence check, the broken-link robot primitive.

        Paper section 3.5: "At its simplest, this merely consists of
        sending a HEAD request, and reporting all URLs which result in a
        404 response code."
        """
        try:
            return self.head(url).ok
        except FetchError:
            return False
