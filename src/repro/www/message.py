"""HTTP-style request/response messages for the virtual web.

A deliberately small model: method, URL, headers, body, status.  Status
codes and reason phrases follow HTTP/1.0/1.1 where the link checker and
robot care (2xx success, 3xx redirect with Location, 404, 5xx).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

REASON_PHRASES = {
    200: "OK",
    204: "No Content",
    301: "Moved Permanently",
    302: "Found",
    303: "See Other",
    304: "Not Modified",
    307: "Temporary Redirect",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    410: "Gone",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

REDIRECT_STATUSES = frozenset({301, 302, 303, 307})


def reason_for(status: int) -> str:
    return REASON_PHRASES.get(status, "Unknown")


class Headers:
    """Case-insensitive header multimap (last value wins on get)."""

    def __init__(self, initial: Optional[dict[str, str]] = None) -> None:
        self._items: list[tuple[str, str]] = []
        if initial:
            for key, value in initial.items():
                self.set(key, value)

    def set(self, key: str, value: str) -> None:
        self._items = [(k, v) for k, v in self._items if k.lower() != key.lower()]
        self._items.append((key, value))

    def add(self, key: str, value: str) -> None:
        self._items.append((key, value))

    def get(self, key: str, default: Optional[str] = None) -> Optional[str]:
        wanted = key.lower()
        for k, v in reversed(self._items):
            if k.lower() == wanted:
                return v
        return default

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def items(self) -> list[tuple[str, str]]:
        return list(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Headers({self._items!r})"


@dataclass
class Request:
    """One request to the (virtual) web.

    ``timeout_s`` is the client's per-request deadline; the virtual web
    honours it when simulating latency (a slower response becomes a
    :class:`~repro.www.faults.TimeoutFault`).
    """

    method: str
    url: str
    headers: Headers = field(default_factory=Headers)
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        self.method = self.method.upper()
        if self.method not in ("GET", "HEAD"):
            raise ValueError(f"unsupported method: {self.method}")


@dataclass
class Response:
    """One response.  ``url`` is the final URL after any redirects."""

    status: int
    url: str
    body: str = ""
    headers: Headers = field(default_factory=Headers)
    redirects: tuple[str, ...] = ()

    @property
    def reason(self) -> str:
        return reason_for(self.status)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def is_redirect(self) -> bool:
        return self.status in REDIRECT_STATUSES

    @property
    def content_type(self) -> str:
        value = self.headers.get("Content-Type", "")
        return value.split(";", 1)[0].strip().lower()

    @property
    def is_html(self) -> bool:
        return self.content_type in ("text/html", "application/xhtml+xml")

    @property
    def location(self) -> Optional[str]:
        return self.headers.get("Location")
