"""URL parsing and reference resolution.

A from-scratch implementation of the subset of RFC 1808/3986 that a link
checker needs: absolute URL parsing, relative reference resolution
against a base, dot-segment removal, and normalisation for comparing
"the same page" (default ports, empty paths, case of scheme/host).

Deliberately independent of :mod:`urllib.parse` so the behaviour is fully
specified by this repository (and property-tested in
``tests/test_www_url.py``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Optional

_SCHEME_RE = re.compile(r"^([A-Za-z][A-Za-z0-9+.-]*):")

DEFAULT_PORTS = {"http": 80, "https": 443, "ftp": 21}


class URLError(ValueError):
    """A URL could not be parsed."""


@dataclass(frozen=True)
class URL:
    """A parsed URL.

    ``port`` is None when absent; :meth:`effective_port` substitutes the
    scheme default.  ``path`` keeps its leading ``/`` for absolute paths.
    """

    scheme: str = ""
    host: str = ""
    port: Optional[int] = None
    path: str = ""
    query: str = ""
    fragment: str = ""

    # -- rendering ---------------------------------------------------------

    def __str__(self) -> str:
        parts: list[str] = []
        if self.scheme:
            parts.append(self.scheme + ":")
        if self.host or self.scheme in ("http", "https", "ftp", "file"):
            parts.append("//" + self.host)
            if self.port is not None:
                parts.append(f":{self.port}")
        parts.append(self.path)
        if self.query:
            parts.append("?" + self.query)
        if self.fragment:
            parts.append("#" + self.fragment)
        return "".join(parts)

    # -- predicates -----------------------------------------------------------

    @property
    def is_absolute(self) -> bool:
        return bool(self.scheme)

    @property
    def is_fragment_only(self) -> bool:
        return (
            not self.scheme
            and not self.host
            and not self.path
            and not self.query
            and bool(self.fragment)
        )

    def effective_port(self) -> Optional[int]:
        if self.port is not None:
            return self.port
        return DEFAULT_PORTS.get(self.scheme)

    # -- transforms --------------------------------------------------------------

    def without_fragment(self) -> "URL":
        if not self.fragment:
            return self
        return replace(self, fragment="")

    def normalised(self) -> "URL":
        """Canonical form for equality: lower scheme/host, default port
        dropped, empty path of an authority URL becomes '/'."""
        scheme = self.scheme.lower()
        host = self.host.lower()
        port = self.port
        if port is not None and port == DEFAULT_PORTS.get(scheme):
            port = None
        path = self.path
        if host and not path:
            path = "/"
        path = remove_dot_segments(path)
        return URL(
            scheme=scheme,
            host=host,
            port=port,
            path=path,
            query=self.query,
            fragment=self.fragment,
        )

    def same_host(self, other: "URL") -> bool:
        return (
            self.host.lower() == other.host.lower()
            and self.effective_port() == other.effective_port()
        )

    def directory(self) -> str:
        """The path up to and including the final '/'."""
        index = self.path.rfind("/")
        if index == -1:
            return ""
        return self.path[: index + 1]


def urlparse(text: str) -> URL:
    """Parse an absolute or relative URL reference."""
    text = text.strip()
    fragment = ""
    if "#" in text:
        text, fragment = text.split("#", 1)
    query = ""
    if "?" in text:
        text, query = text.split("?", 1)

    scheme = ""
    match = _SCHEME_RE.match(text)
    if match:
        scheme = match.group(1).lower()
        text = text[match.end():]

    host = ""
    port: Optional[int] = None
    if text.startswith("//"):
        authority, _, text = text[2:].partition("/")
        text = "/" + text if text or authority else text
        if text == "/" and not authority:
            text = ""
        if "@" in authority:
            authority = authority.rsplit("@", 1)[1]  # userinfo ignored
        if ":" in authority:
            host, _, port_text = authority.rpartition(":")
            if port_text:
                if not port_text.isdigit():
                    raise URLError(f"bad port in URL: {port_text!r}")
                port = int(port_text)
        else:
            host = authority
        # The partition above ate the '/' between authority and path.
        if text and not text.startswith("/"):
            text = "/" + text

    return URL(
        scheme=scheme,
        host=host,
        port=port,
        path=text,
        query=query,
        fragment=fragment,
    )


def remove_dot_segments(path: str) -> str:
    """RFC 3986 section 5.2.4 dot-segment removal."""
    if not path:
        return path
    absolute = path.startswith("/")
    output: list[str] = []
    for segment in path.split("/"):
        if segment == ".":
            continue
        if segment == "..":
            if output and output[-1] != "..":
                output.pop()
            elif not absolute:
                output.append("..")
            continue
        output.append(segment)
    # Preserve a trailing slash implied by a final '.' or '..'.
    if path.rstrip("/").endswith((".", "..")) or path.endswith("/"):
        if not output or output[-1] != "":
            output.append("")
    result = "/".join(segment for segment in output if segment or True)
    result = re.sub("//+", "/", result)
    if absolute and not result.startswith("/"):
        result = "/" + result
    return result


def urljoin(base: str | URL, reference: str | URL) -> URL:
    """Resolve ``reference`` against ``base`` (RFC 3986 section 5.2)."""
    base_url = base if isinstance(base, URL) else urlparse(base)
    ref = reference if isinstance(reference, URL) else urlparse(reference)

    if ref.scheme:
        return ref.normalised()
    scheme = base_url.scheme
    if ref.host:
        return replace(ref, scheme=scheme).normalised()
    host, port = base_url.host, base_url.port
    if not ref.path:
        path = base_url.path
        query = ref.query if ref.query else base_url.query
    else:
        query = ref.query
        if ref.path.startswith("/"):
            path = ref.path
        else:
            path = base_url.directory() + ref.path
            if not path.startswith("/") and host:
                path = "/" + path
    return URL(
        scheme=scheme,
        host=host,
        port=port,
        path=remove_dot_segments(path),
        query=query,
        fragment=ref.fragment,
    ).normalised()
