"""Validator store for conditional HTTP fetches.

HTTP has carried its own cache-coherency protocol since 1.0: a server
labels a response with ``ETag`` / ``Last-Modified`` validators, the
client replays them as ``If-None-Match`` / ``If-Modified-Since``, and an
unchanged resource comes back as a bodyless ``304 Not Modified``.
WebScript-style web-document processors win exactly by exploiting this
machinery, and it is what lets a second ``poacher`` crawl of a large,
mostly-unchanged site skip almost all of its byte transfer.

:class:`HttpCache` is that client-side store:

- per-URL metadata (validators, status, content type, body digest) in
  one index;
- bodies kept content-addressed (sha256), in memory and -- when a
  ``directory`` is given -- as one file per digest, so two URLs serving
  identical bytes share one stored body;
- ``save()`` / ``load()`` persist the index atomically as versioned
  JSON; a missing, corrupt or wrong-version index loads as an empty
  cache, never an error -- a crawl always proceeds, at worst cold.

The consumer is :class:`repro.www.client.UserAgent` (pass
``http_cache=``): it sends the stored validators with every GET, turns a
``304`` back into the stored response (counted in
``www.conditional.revalidated``), and falls back to a full unconditional
GET when a ``304`` arrives but the stored body has been evicted
(``www.conditional.lost_body``).  The ``poacher --state-dir`` switch
wires a persistent instance into a crawl.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.www.message import Response

#: Bump when the index layout changes; old state dirs reload as cold.
FORMAT_VERSION = 1


def body_digest(body: str) -> str:
    return hashlib.sha256(body.encode("utf-8", errors="surrogatepass")).hexdigest()


@dataclass
class CachedEntry:
    """What the store remembers about one URL."""

    url: str
    status: int
    content_type: str
    body_sha256: str
    etag: Optional[str] = None
    last_modified: Optional[str] = None

    @property
    def has_validators(self) -> bool:
        return self.etag is not None or self.last_modified is not None

    def to_dict(self) -> dict:
        return {
            "url": self.url,
            "status": self.status,
            "content_type": self.content_type,
            "body_sha256": self.body_sha256,
            "etag": self.etag,
            "last_modified": self.last_modified,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "CachedEntry":
        return cls(
            url=raw["url"],
            status=int(raw["status"]),
            content_type=raw.get("content_type", "text/html"),
            body_sha256=raw["body_sha256"],
            etag=raw.get("etag"),
            last_modified=raw.get("last_modified"),
        )


class HttpCache:
    """Per-URL validators plus a content-addressed body store.

    Memory-only by default; give it a ``directory`` and bodies persist
    as they are stored while ``save()`` writes the index -- call it once
    at the end of a crawl (``poacher --state-dir`` does).
    """

    def __init__(self, directory: Optional[Union[str, Path]] = None) -> None:
        self.directory = Path(directory) if directory is not None else None
        self._entries: dict[str, CachedEntry] = {}
        self._bodies: dict[str, str] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    # -- lookups -----------------------------------------------------------

    def entry_for(self, url: str) -> Optional[CachedEntry]:
        with self._lock:
            return self._entries.get(url)

    def body_for(self, entry: CachedEntry) -> Optional[str]:
        """The stored body for ``entry``, or ``None`` if it was evicted."""
        with self._lock:
            body = self._bodies.get(entry.body_sha256)
        if body is not None:
            return body
        if self.directory is None:
            return None
        try:
            body = self._body_path(entry.body_sha256).read_text(
                encoding="utf-8", errors="surrogatepass"
            )
        except OSError:
            return None
        if body_digest(body) != entry.body_sha256:
            # A torn or tampered body file must not masquerade as the
            # validated representation.
            return None
        with self._lock:
            self._bodies[entry.body_sha256] = body
        return body

    def body_by_digest(self, digest: str) -> Optional[str]:
        """The stored body for ``digest`` directly, bypassing the index.

        Bodies persist synchronously at :meth:`store` time while the
        index only persists on :meth:`save`, so a crawl killed before
        any save can still recover every completed page's bytes -- the
        frontier journal's resume path leans on exactly that.
        """
        with self._lock:
            body = self._bodies.get(digest)
        if body is not None:
            return body
        if self.directory is None:
            return None
        try:
            body = self._body_path(digest).read_text(
                encoding="utf-8", errors="surrogatepass"
            )
        except OSError:
            return None
        if body_digest(body) != digest:
            return None
        with self._lock:
            self._bodies[digest] = body
        return body

    # -- population --------------------------------------------------------

    def store(self, url: str, response: Response) -> None:
        """Remember ``response`` (an ok GET) and its validators for ``url``."""
        digest = body_digest(response.body)
        entry = CachedEntry(
            url=url,
            status=response.status,
            content_type=response.headers.get("Content-Type", "text/html"),
            body_sha256=digest,
            etag=response.headers.get("ETag"),
            last_modified=response.headers.get("Last-Modified"),
        )
        with self._lock:
            self._entries[url] = entry
            self._bodies[digest] = response.body
        if self.directory is not None:
            self._write_body(digest, response.body)

    def evict_body(self, url: str) -> None:
        """Drop the stored body for ``url`` (both tiers), keep validators.

        Models the real-world state the evicted-validator fallback
        exists for: an index that outlived its body files.
        """
        entry = self.entry_for(url)
        if entry is None:
            return
        with self._lock:
            self._bodies.pop(entry.body_sha256, None)
        if self.directory is not None:
            try:
                self._body_path(entry.body_sha256).unlink()
            except OSError:
                pass

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bodies.clear()

    # -- persistence -------------------------------------------------------

    def save(self) -> None:
        """Atomically write the index (bodies were persisted on store)."""
        if self.directory is None:
            return
        with self._lock:
            payload = json.dumps(
                {
                    "version": FORMAT_VERSION,
                    "entries": {
                        url: entry.to_dict()
                        for url, entry in sorted(self._entries.items())
                    },
                },
                indent=2,
                sort_keys=True,
            )
        with get_tracer().span("www.httpcache.save", entries=len(self)):
            self.directory.mkdir(parents=True, exist_ok=True)
            handle = tempfile.NamedTemporaryFile(
                "w",
                encoding="utf-8",
                dir=self.directory,
                prefix=".index.",
                suffix=".tmp",
                delete=False,
            )
            with handle:
                handle.write(payload)
            os.replace(handle.name, self._index_path())

    def load(self) -> int:
        """Read the index; corrupt or wrong-version state loads as empty.

        Returns the number of entries loaded.
        """
        if self.directory is None:
            return 0
        with get_tracer().span("www.httpcache.load"):
            try:
                data = json.loads(self._index_path().read_text(encoding="utf-8"))
            except (OSError, ValueError):
                return 0
            if (
                not isinstance(data, dict)
                or data.get("version") != FORMAT_VERSION
                or not isinstance(data.get("entries"), dict)
            ):
                get_registry().inc("www.httpcache.corrupt")
                return 0
            loaded: dict[str, CachedEntry] = {}
            for url, raw in data["entries"].items():
                try:
                    loaded[url] = CachedEntry.from_dict(raw)
                except (KeyError, TypeError, ValueError):
                    get_registry().inc("www.httpcache.corrupt")
            with self._lock:
                self._entries.update(loaded)
            return len(loaded)

    # -- paths -------------------------------------------------------------

    def _index_path(self) -> Path:
        assert self.directory is not None
        return self.directory / "index.json"

    def _body_path(self, digest: str) -> Path:
        assert self.directory is not None
        return self.directory / "bodies" / f"{digest}.body"

    def _write_body(self, digest: str, body: str) -> None:
        assert self.directory is not None
        path = self._body_path(digest)
        if path.exists():
            return  # content-addressed: same digest, same bytes
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            handle = tempfile.NamedTemporaryFile(
                "w",
                encoding="utf-8",
                errors="surrogatepass",
                dir=path.parent,
                prefix=f".{digest[:8]}.",
                suffix=".tmp",
                delete=False,
            )
            with handle:
                handle.write(body)
            os.replace(handle.name, path)
        except OSError:  # pragma: no cover - read-only state dir
            get_registry().inc("www.httpcache.write_errors")
