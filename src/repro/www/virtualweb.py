"""The virtual web: an in-memory, deterministic stand-in for the internet.

Hosts pages, redirects and failures under ``http://host/path`` URLs.
Everything weblint's networked front-ends do against the real web --
fetch a page, follow a redirect, hit a 404, read robots.txt -- they do
against this object instead, with full inspectability (request log,
per-URL hit counts).

Typical setup::

    web = VirtualWeb()
    web.add_page("http://example.com/", "<html>...</html>")
    web.add_redirect("http://example.com/old", "http://example.com/")
    web.add_broken("http://example.com/gone", status=410)

A whole site can be mounted from a directory tree or a mapping with
:meth:`VirtualWeb.add_site`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional, Union

from repro.www.message import Headers, Request, Response, reason_for
from repro.www.url import URL, urlparse


@dataclass
class _Resource:
    body: str = ""
    status: int = 200
    content_type: str = "text/html"
    location: Optional[str] = None
    extra_headers: dict[str, str] = field(default_factory=dict)


def _key(url: Union[str, URL]) -> tuple[str, Optional[int], str]:
    parsed = (url if isinstance(url, URL) else urlparse(url)).normalised()
    return (parsed.host, parsed.effective_port(), parsed.path or "/")


class VirtualWeb:
    """A dictionary of URLs behaving like servers."""

    def __init__(self) -> None:
        self._resources: dict[tuple[str, Optional[int], str], _Resource] = {}
        self.request_log: list[Request] = []
        self.hit_counts: dict[str, int] = {}

    # -- population ---------------------------------------------------------

    def add_page(
        self,
        url: str,
        body: str,
        content_type: str = "text/html",
        status: int = 200,
    ) -> None:
        """Serve ``body`` at ``url``."""
        self._resources[_key(url)] = _Resource(
            body=body, status=status, content_type=content_type
        )

    def add_redirect(self, url: str, target: str, permanent: bool = False) -> None:
        """Redirect ``url`` to ``target`` (302, or 301 when permanent)."""
        self._resources[_key(url)] = _Resource(
            status=301 if permanent else 302, location=target
        )

    def add_broken(self, url: str, status: int = 404) -> None:
        """Make ``url`` exist as an explicit failure (default 404)."""
        self._resources[_key(url)] = _Resource(status=status, body="")

    def add_robots_txt(self, host_url: str, text: str) -> None:
        """Install a robots.txt for the host of ``host_url``."""
        base = urlparse(host_url)
        robots_url = str(
            URL(scheme=base.scheme or "http", host=base.host, port=base.port,
                path="/robots.txt")
        )
        self.add_page(robots_url, text, content_type="text/plain")

    def add_site(
        self,
        base_url: str,
        pages: Union[Mapping[str, str], Path, str],
    ) -> list[str]:
        """Mount many pages under ``base_url``.

        ``pages`` is either a mapping of relative paths to bodies, or a
        directory whose ``*.html`` files are served with their relative
        paths.  Returns the list of absolute URLs added.
        """
        base = urlparse(base_url).normalised()
        prefix = base.path.rstrip("/")
        added: list[str] = []

        def _add(relative: str, body: str) -> None:
            relative = relative.lstrip("/")
            url = str(
                URL(scheme=base.scheme or "http", host=base.host,
                    port=base.port, path=f"{prefix}/{relative}")
            )
            self.add_page(url, body)
            added.append(url)

        if isinstance(pages, (str, Path)):
            root = Path(pages)
            for path in sorted(root.rglob("*")):
                if path.is_file():
                    _add(
                        str(path.relative_to(root)).replace("\\", "/"),
                        path.read_text(encoding="utf-8", errors="replace"),
                    )
        else:
            for relative, body in pages.items():
                _add(relative, body)
        return added

    def remove(self, url: str) -> None:
        self._resources.pop(_key(url), None)

    def urls(self) -> list[str]:
        """All absolute URLs currently served (sorted)."""
        result = []
        for host, port, path in self._resources:
            port_text = "" if port in (None, 80) else f":{port}"
            result.append(f"http://{host}{port_text}{path}")
        return sorted(result)

    # -- serving ---------------------------------------------------------------

    def handle(self, request: Request) -> Response:
        """Serve one request (no redirect following -- that is the client's
        job, so the redirect-handling code path is actually exercised)."""
        self.request_log.append(request)
        normalised = str(urlparse(request.url).normalised().without_fragment())
        self.hit_counts[normalised] = self.hit_counts.get(normalised, 0) + 1

        resource = self._resources.get(_key(request.url))
        if resource is None:
            return Response(
                status=404,
                url=request.url,
                body=_error_body(404),
                headers=Headers({"Content-Type": "text/html"}),
            )
        headers = Headers({"Content-Type": resource.content_type})
        for key, value in resource.extra_headers.items():
            headers.set(key, value)
        if resource.location is not None:
            headers.set("Location", resource.location)
        body = resource.body
        if request.method == "HEAD":
            body = ""
        elif resource.status >= 400 and not body:
            body = _error_body(resource.status)
        headers.set("Content-Length", str(len(resource.body)))
        return Response(
            status=resource.status,
            url=request.url,
            body=body,
            headers=headers,
        )


def _error_body(status: int) -> str:
    reason = reason_for(status)
    return (
        f"<html><head><title>{status} {reason}</title></head>"
        f"<body><h1>{status} {reason}</h1></body></html>"
    )
