"""The virtual web: an in-memory, deterministic stand-in for the internet.

Hosts pages, redirects and failures under ``http://host/path`` URLs.
Everything weblint's networked front-ends do against the real web --
fetch a page, follow a redirect, hit a 404, read robots.txt -- they do
against this object instead, with full inspectability (request log,
per-URL hit counts).

Typical setup::

    web = VirtualWeb()
    web.add_page("http://example.com/", "<html>...</html>")
    web.add_redirect("http://example.com/old", "http://example.com/")
    web.add_broken("http://example.com/gone", status=410)

A whole site can be mounted from a directory tree or a mapping with
:meth:`VirtualWeb.add_site`.

The web is perfectly reliable by default.  To model the internet the
paper's poacher actually crawled, attach faults (see
:mod:`repro.www.faults`)::

    web.add_fault(host="example.com", status=503, times=2)  # transient
    web.kill_host("dead.example")            # connection errors, forever
    web.set_latency(host="slow.example", seconds=0.2)  # slow pages

Latency interacts with the client's per-request timeout: a response
slower than ``Request.timeout_s`` raises :class:`TimeoutFault` after
sleeping only the timeout, which the resilient ``UserAgent`` treats as
a retryable transport failure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Optional, Union

from repro.www.faults import (
    ConnectionFault,
    FaultInjector,
    FaultRule,
    TimeoutFault,
)
from repro.www.message import Headers, Request, Response, reason_for
from repro.www.url import URL, urlparse


@dataclass
class _Resource:
    body: str = ""
    status: int = 200
    content_type: str = "text/html"
    location: Optional[str] = None
    extra_headers: dict[str, str] = field(default_factory=dict)
    #: Strong validator derived from the body; changes when the body does.
    etag: Optional[str] = None
    #: Optional HTTP-date validator, compared verbatim (no date parsing).
    last_modified: Optional[str] = None


def _etag_for(body: str) -> str:
    import hashlib

    digest = hashlib.sha256(body.encode("utf-8", errors="surrogatepass"))
    return f'"{digest.hexdigest()[:16]}"'


def _key(url: Union[str, URL]) -> tuple[str, Optional[int], str]:
    parsed = (url if isinstance(url, URL) else urlparse(url)).normalised()
    return (parsed.host, parsed.effective_port(), parsed.path or "/")


class VirtualWeb:
    """A dictionary of URLs behaving like servers."""

    def __init__(
        self,
        faults: Optional[FaultInjector] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._resources: dict[tuple[str, Optional[int], str], _Resource] = {}
        self.request_log: list[Request] = []
        self.hit_counts: dict[str, int] = {}
        self.faults = faults if faults is not None else FaultInjector()
        self._sleep = sleep

    # -- fault-injection conveniences (delegating to the injector) ----------

    def add_fault(self, url: Optional[str] = None, **kwargs) -> FaultRule:
        return self.faults.add_fault(url, **kwargs)

    def kill_host(self, host: str) -> FaultRule:
        return self.faults.kill_host(host)

    def set_latency(self, url: Optional[str] = None, **kwargs) -> None:
        self.faults.set_latency(url, **kwargs)

    def set_bandwidth(self, bytes_per_s: Optional[float]) -> None:
        """Simulate transfer time proportional to body size (None = off)."""
        self.faults.set_bandwidth(bytes_per_s)

    # -- population ---------------------------------------------------------

    def add_page(
        self,
        url: str,
        body: str,
        content_type: str = "text/html",
        status: int = 200,
        last_modified: Optional[str] = None,
    ) -> None:
        """Serve ``body`` at ``url``.

        Successful pages always carry an ``ETag`` derived from the body
        (so replacing a page with different content changes the
        validator, and re-adding identical content does not) and honour
        ``If-None-Match`` with a ``304 Not Modified``.  Pass
        ``last_modified`` to also serve a ``Last-Modified`` header and
        honour ``If-Modified-Since`` (compared verbatim).
        """
        self._resources[_key(url)] = _Resource(
            body=body,
            status=status,
            content_type=content_type,
            etag=_etag_for(body) if status == 200 else None,
            last_modified=last_modified,
        )

    def add_redirect(self, url: str, target: str, permanent: bool = False) -> None:
        """Redirect ``url`` to ``target`` (302, or 301 when permanent)."""
        self._resources[_key(url)] = _Resource(
            status=301 if permanent else 302, location=target
        )

    def add_broken(self, url: str, status: int = 404) -> None:
        """Make ``url`` exist as an explicit failure (default 404)."""
        self._resources[_key(url)] = _Resource(status=status, body="")

    def add_robots_txt(self, host_url: str, text: str) -> None:
        """Install a robots.txt for the host of ``host_url``."""
        base = urlparse(host_url)
        robots_url = str(
            URL(scheme=base.scheme or "http", host=base.host, port=base.port,
                path="/robots.txt")
        )
        self.add_page(robots_url, text, content_type="text/plain")

    def add_site(
        self,
        base_url: str,
        pages: Union[Mapping[str, str], Path, str],
    ) -> list[str]:
        """Mount many pages under ``base_url``.

        ``pages`` is either a mapping of relative paths to bodies, or a
        directory whose ``*.html`` files are served with their relative
        paths.  Returns the list of absolute URLs added.
        """
        base = urlparse(base_url).normalised()
        prefix = base.path.rstrip("/")
        added: list[str] = []

        def _add(relative: str, body: str) -> None:
            relative = relative.lstrip("/")
            url = str(
                URL(scheme=base.scheme or "http", host=base.host,
                    port=base.port, path=f"{prefix}/{relative}")
            )
            self.add_page(url, body)
            added.append(url)

        if isinstance(pages, (str, Path)):
            root = Path(pages)
            for path in sorted(root.rglob("*")):
                if path.is_file():
                    _add(
                        str(path.relative_to(root)).replace("\\", "/"),
                        path.read_text(encoding="utf-8", errors="replace"),
                    )
        else:
            for relative, body in pages.items():
                _add(relative, body)
        return added

    def remove(self, url: str) -> None:
        self._resources.pop(_key(url), None)

    def urls(self) -> list[str]:
        """All absolute URLs currently served (sorted)."""
        result = []
        for host, port, path in self._resources:
            port_text = "" if port in (None, 80) else f":{port}"
            result.append(f"http://{host}{port_text}{path}")
        return sorted(result)

    # -- serving ---------------------------------------------------------------

    def handle(self, request: Request) -> Response:
        """Serve one request (no redirect following -- that is the client's
        job, so the redirect-handling code path is actually exercised).

        Consults the fault injector first: simulated latency (bounded by
        the request's timeout), connection errors, injected error
        statuses and truncated bodies all happen here, exactly where a
        real server would produce them.
        """
        self.request_log.append(request)
        parsed = urlparse(request.url).normalised()
        normalised = str(parsed.without_fragment())
        self.hit_counts[normalised] = self.hit_counts.get(normalised, 0) + 1

        self._simulate_latency(request, normalised, parsed.host)
        fault = self.faults.fault_for(normalised, parsed.host)
        if fault is not None and fault.kind == "connection":
            raise ConnectionFault(f"connection failed: {request.url}")
        if fault is not None and fault.kind == "status":
            return self._respond(
                request,
                status=fault.status,
                body=_error_body(fault.status),
                headers=self._fault_headers(fault),
            )

        resource = self._resources.get(_key(request.url))
        if resource is None:
            return self._respond(
                request,
                status=404,
                body=_error_body(404),
                headers=Headers({"Content-Type": "text/html"}),
            )
        headers = Headers({"Content-Type": resource.content_type})
        for key, value in resource.extra_headers.items():
            headers.set(key, value)
        if resource.location is not None:
            headers.set("Location", resource.location)
        if resource.etag is not None:
            headers.set("ETag", resource.etag)
        if resource.last_modified is not None:
            headers.set("Last-Modified", resource.last_modified)
        if self._not_modified(request, resource):
            return self._respond(request, status=304, body="", headers=headers)
        body = resource.body
        if resource.status >= 400 and not body:
            body = _error_body(resource.status)
        truncate_to = (
            fault.truncate_to
            if fault is not None and fault.kind == "truncate"
            else None
        )
        return self._respond(
            request,
            status=resource.status,
            body=body,
            headers=headers,
            truncate_to=truncate_to,
        )

    @staticmethod
    def _not_modified(request: Request, resource: _Resource) -> bool:
        """Does a stored validator match the request's conditional headers?

        ``If-None-Match`` wins over ``If-Modified-Since`` when both are
        present, per HTTP.  Only successful, non-redirect resources are
        eligible -- errors and redirects never validate.
        """
        if resource.status != 200 or resource.location is not None:
            return False
        if_none_match = request.headers.get("If-None-Match")
        if if_none_match is not None:
            return resource.etag is not None and (
                if_none_match == "*" or if_none_match == resource.etag
            )
        if_modified_since = request.headers.get("If-Modified-Since")
        if if_modified_since is not None and resource.last_modified is not None:
            return if_modified_since == resource.last_modified
        return False

    def _respond(
        self,
        request: Request,
        *,
        status: int,
        body: str,
        headers: Headers,
        truncate_to: Optional[int] = None,
    ) -> Response:
        """Finish a response: correct Content-Length, HEAD and truncation.

        ``Content-Length`` always advertises the UTF-8 byte length of
        the *full* GET body -- also for HEAD requests (which carry no
        body, per HTTP) and for truncated responses (that mismatch is
        how the client detects the truncation).  A 304 carries no body
        by definition, so it advertises zero.
        """
        headers.set("Content-Length", str(len(body.encode("utf-8"))))
        if request.method == "HEAD" or status == 304:
            body = ""
        elif truncate_to is not None:
            body = body[:truncate_to]
        self._simulate_transfer(request, body)
        return Response(
            status=status, url=request.url, body=body, headers=headers
        )

    def _simulate_transfer(self, request: Request, body: str) -> None:
        """Body-proportional latency: the bandwidth half of the model.

        ``set_bandwidth(bytes_per_s)`` makes every response cost
        ``len(body) / bytes_per_s`` seconds on top of any fixed latency
        -- which is exactly the cost a conditional fetch avoids when the
        server answers 304 (empty body, ~zero transfer).
        """
        delay = self.faults.transfer_seconds(len(body.encode("utf-8")))
        if not delay:
            return
        timeout = request.timeout_s
        if timeout is not None and delay > timeout:
            self._sleep(timeout)
            raise TimeoutFault(
                f"transfer timed out after {timeout:g}s fetching "
                f"{request.url} (body needed {delay:g}s)"
            )
        self._sleep(delay)

    def _simulate_latency(self, request: Request, url: str, host: str) -> None:
        delay = self.faults.latency_for(url, host)
        if not delay:
            return
        timeout = request.timeout_s
        if timeout is not None and delay > timeout:
            self._sleep(timeout)
            raise TimeoutFault(
                f"timed out after {timeout:g}s fetching {request.url} "
                f"(server took {delay:g}s)"
            )
        self._sleep(delay)

    @staticmethod
    def _fault_headers(fault: FaultRule) -> Headers:
        headers = Headers({"Content-Type": "text/html"})
        if fault.retry_after is not None:
            headers.set("Retry-After", f"{fault.retry_after:g}")
        return headers


def _error_body(status: int) -> str:
    reason = reason_for(status)
    return (
        f"<html><head><title>{status} {reason}</title></head>"
        f"<body><h1>{status} {reason}</h1></body></html>"
    )
