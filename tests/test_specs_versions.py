"""Version-difference tests: HTML 3.2, 4.0 strict, Netscape, Microsoft."""

from __future__ import annotations

import pytest

from repro.html.spec import get_spec


@pytest.fixture(scope="module")
def html32():
    return get_spec("html32")


@pytest.fixture(scope="module")
def strict():
    return get_spec("html40-strict")


@pytest.fixture(scope="module")
def netscape():
    return get_spec("netscape")


@pytest.fixture(scope="module")
def microsoft():
    return get_spec("microsoft")


class TestHTML32:
    @pytest.mark.parametrize(
        "element",
        ["span", "abbr", "button", "iframe", "tbody", "colgroup", "q", "label"],
    )
    def test_40_elements_absent(self, html32, element):
        assert not html32.is_known(element)

    @pytest.mark.parametrize(
        "element", ["p", "table", "img", "font", "center", "applet"]
    )
    def test_core_elements_present(self, html32, element):
        assert html32.is_known(element)

    def test_no_global_attributes(self, html32):
        assert not html32.attribute_allowed("p", "class")
        assert not html32.attribute_allowed("p", "onclick")

    def test_img_alt_not_required(self, html32):
        assert "alt" not in html32.element("img").required_attributes()

    def test_textarea_dims_still_required(self, html32):
        assert set(html32.element("textarea").required_attributes()) == {
            "rows",
            "cols",
        }

    def test_center_not_deprecated_in_32(self, html32):
        assert not html32.element("center").deprecated

    def test_smaller_entity_set(self, html32):
        assert "euro" not in html32.entities
        assert "copy" in html32.entities

    def test_tr_directly_in_table(self, html32):
        assert html32.element("tr").allowed_in == frozenset({"table"})

    def test_input_type_survived_strip(self, html32):
        assert html32.attribute_allowed("input", "type")
        assert html32.attribute_allowed("ol", "type")


class TestStrict:
    @pytest.mark.parametrize(
        "element", ["center", "font", "applet", "iframe", "frameset", "u"]
    )
    def test_deprecated_elements_absent(self, strict, element):
        assert not strict.is_known(element)

    def test_deprecated_attributes_absent(self, strict):
        assert not strict.attribute_allowed("body", "bgcolor")
        assert not strict.attribute_allowed("img", "align")

    def test_core_attributes_survive(self, strict):
        assert strict.attribute_allowed("img", "src")
        assert strict.attribute_allowed("p", "class")


class TestNetscape:
    @pytest.mark.parametrize(
        "element", ["blink", "layer", "multicol", "spacer", "embed", "keygen"]
    )
    def test_navigator_elements(self, netscape, element):
        assert netscape.is_known(element)

    def test_superset_of_html40(self, netscape):
        html40 = get_spec("html40")
        assert set(html40.elements) <= set(netscape.elements)

    def test_navigator_attributes(self, netscape):
        assert netscape.attribute_allowed("img", "lowsrc")
        assert netscape.attribute_allowed("body", "marginwidth")

    def test_blink_maps_to_em(self, netscape):
        assert netscape.physical_markup["blink"] == "em"

    def test_multicol_requires_cols(self, netscape):
        assert "cols" in netscape.element("multicol").required_attributes()


class TestMicrosoft:
    @pytest.mark.parametrize(
        "element", ["marquee", "bgsound", "comment", "xml", "nobr"]
    )
    def test_ie_elements(self, microsoft, element):
        assert microsoft.is_known(element)

    def test_ie_attributes(self, microsoft):
        assert microsoft.attribute_allowed("table", "bordercolor")
        assert microsoft.attribute_allowed("body", "leftmargin")
        assert microsoft.attribute_allowed("img", "dynsrc")

    def test_bgsound_requires_src(self, microsoft):
        assert "src" in microsoft.element("bgsound").required_attributes()

    def test_marquee_value_patterns(self, microsoft):
        assert microsoft.attribute_value_ok("marquee", "direction", "left")
        assert not microsoft.attribute_value_ok("marquee", "direction", "sideways")
        assert microsoft.attribute_value_ok("marquee", "loop", "infinite")


class TestVendorDisjointness:
    def test_layer_not_in_microsoft(self, microsoft):
        assert not microsoft.is_known("layer")

    def test_marquee_not_in_netscape(self, netscape):
        assert not netscape.is_known("marquee")

    def test_nobr_in_both(self, netscape, microsoft):
        assert netscape.is_known("nobr") and microsoft.is_known("nobr")


class TestHTML20:
    @pytest.fixture(scope="class")
    def html20(self):
        return get_spec("html20")

    @pytest.mark.parametrize(
        "element", ["table", "td", "font", "center", "applet", "style", "map"]
    )
    def test_post_20_elements_absent(self, html20, element):
        assert not html20.is_known(element)

    @pytest.mark.parametrize(
        "element", ["p", "pre", "img", "form", "isindex", "xmp", "listing"]
    )
    def test_20_elements_present(self, html20, element):
        assert html20.is_known(element)

    def test_xmp_deprecated_not_obsolete(self, html20):
        elem = html20.element("xmp")
        assert elem.deprecated and not elem.obsolete

    def test_body_colors_unknown_in_20(self, html20):
        assert not html20.attribute_allowed("body", "bgcolor")

    def test_kept_attributes(self, html20):
        assert html20.attribute_allowed("ul", "compact")
        assert html20.attribute_allowed("img", "align")
        assert html20.attribute_allowed("input", "type")

    def test_checker_flags_tables_under_20(self):
        from repro import Options, Weblint

        options = Options.with_defaults()
        options.spec_name = "html20"
        diags = Weblint(options=options).check_string(
            '<!DOCTYPE HTML PUBLIC "x//EN"><html><head><title>t</title>'
            "</head><body><table><tr><td>x</td></tr></table></body></html>"
        )
        unknown = [d for d in diags if d.message_id == "unknown-element"]
        assert len(unknown) == 3  # table, tr, td
