"""Tests for the plugin framework, CSS lint and script sanity plugins."""

from __future__ import annotations

import pytest

from repro import Options, Weblint
from repro.core.context import CheckContext
from repro.html.spec import get_spec
from repro.plugins import CSSPlugin, PluginRule, ScriptPlugin
from repro.plugins.csslint import (
    parse_declarations,
    parse_stylesheet,
    suggest_property,
)
from repro.plugins.scriptlint import scan_script
from tests.conftest import ids, make_document


class TestParseDeclarations:
    def test_simple(self):
        decls, problems = parse_declarations("color: red; margin: 0")
        assert [(d.property, d.value) for d in decls] == [
            ("color", "red"), ("margin", "0"),
        ]
        assert problems == []

    def test_missing_colon(self):
        _decls, problems = parse_declarations("color red")
        assert problems and 'no ":"' in problems[0][1]

    def test_missing_value(self):
        _decls, problems = parse_declarations("color:")
        assert problems and "no value" in problems[0][1]

    def test_important(self):
        decls, problems = parse_declarations("color: red !important")
        assert decls[0].important and decls[0].value == "red"
        assert problems == []

    def test_bad_important(self):
        _decls, problems = parse_declarations("color: red !importnat")
        assert problems and "!important" in problems[0][1]

    def test_comments_stripped(self):
        decls, problems = parse_declarations("/* note */ color: red")
        assert len(decls) == 1 and problems == []

    def test_line_numbers(self):
        decls, _problems = parse_declarations(
            "color: red;\nmargin: 0", start_line=10
        )
        assert [d.line for d in decls] == [10, 11]

    def test_empty_input(self):
        assert parse_declarations("") == ([], [])


class TestParseStylesheet:
    def test_rule_set(self):
        decls, problems = parse_stylesheet("body { color: red; }")
        assert decls[0].property == "color"
        assert problems == []

    def test_multiple_rules_with_lines(self):
        decls, _problems = parse_stylesheet(
            "h1 { color: red }\np { margin: 0 }", start_line=5
        )
        assert [d.line for d in decls] == [5, 6]

    def test_unmatched_close_brace(self):
        _decls, problems = parse_stylesheet("}")
        assert problems and "unmatched" in problems[0][1]

    def test_unclosed_block(self):
        _decls, problems = parse_stylesheet("body { color: red")
        assert any("unclosed" in text for _line, text in problems)

    def test_at_rules_skipped(self):
        decls, problems = parse_stylesheet(
            '@import "x.css";\n@media print { body { font-size: 10pt } }\n'
            "p { color: red }"
        )
        assert [d.property for d in decls] == ["color"]
        assert problems == []

    def test_comment_with_braces(self):
        decls, problems = parse_stylesheet(
            "/* { not a block } */ p { color: red }"
        )
        assert len(decls) == 1 and problems == []


class TestSuggestions:
    @pytest.mark.parametrize(
        "typo,expected",
        [("colour", "color"), ("font-wieght", "font-weight"),
         ("margn", "margin")],
    )
    def test_suggestions(self, typo, expected):
        assert suggest_property(typo) == expected

    def test_no_suggestion(self):
        assert suggest_property("zzzzzzzz") is None


class TestScanScript:
    def test_balanced_ok(self):
        assert scan_script("function f(a) { return [a]; }") == []

    def test_unmatched_close(self):
        problems = scan_script("f());")
        assert any("unmatched ')'" in text for _l, text in problems)

    def test_never_closed(self):
        problems = scan_script("function f() {")
        assert any("never closed" in text for _l, text in problems)

    def test_brackets_in_strings_ignored(self):
        assert scan_script("var s = '}}}((('") == []

    def test_brackets_in_comments_ignored(self):
        assert scan_script("// }}}\n/* ((( */") == []

    def test_unterminated_string(self):
        problems = scan_script('var s = "abc')
        assert any("unterminated string" in text for _l, text in problems)

    def test_unterminated_block_comment(self):
        problems = scan_script("/* forever")
        assert any("comment" in text for _l, text in problems)

    def test_line_numbers(self):
        problems = scan_script("var a = 1;\nf());\n")
        assert problems[0][0] == 2

    def test_escaped_quote_in_string(self):
        assert scan_script("var s = 'it\\'s fine';") == []


class TestPluginsInChecker:
    def test_style_element_checked(self, weblint):
        source = make_document(
            "<p>x</p>",
            head_extra='<style type="text/css">\nbody { colour: red }\n</style>\n',
        )
        diags = weblint.check_string(source)
        assert "css-unknown-property" in ids(diags)

    def test_style_attribute_checked(self, weblint):
        diags = weblint.check_string(
            make_document('<p style="color: neon">x</p>')
        )
        assert "css-unknown-color" in ids(diags)

    def test_valid_css_quiet(self, weblint):
        source = make_document(
            '<p style="color: #ff0000; margin-top: 1em">x</p>'
        )
        assert not ids(weblint.check_string(source)) & {
            "css-syntax", "css-unknown-property", "css-unknown-color",
        }

    def test_script_checked(self, weblint):
        source = make_document(
            "<p>x</p>",
            head_extra='<script type="text/javascript">\nf());\n</script>\n',
        )
        assert "script-syntax" in ids(weblint.check_string(source))

    def test_external_script_not_checked(self, weblint):
        source = make_document(
            "<p>x</p>",
            head_extra='<script type="text/javascript" src="x.js"></script>\n',
        )
        assert "script-syntax" not in ids(weblint.check_string(source))

    def test_non_css_style_element_not_checked(self, weblint):
        source = make_document(
            "<p>x</p>",
            head_extra='<style type="text/x-other">colour: odd</style>\n',
        )
        assert "css-unknown-property" not in ids(weblint.check_string(source))

    def test_plugin_messages_configurable(self):
        options = Options.with_defaults()
        options.disable("css-unknown-property")
        source = make_document('<p style="colour: red">x</p>')
        diags = Weblint(options=options).check_string(source)
        assert "css-unknown-property" not in ids(diags)

    def test_line_numbers_offset_into_document(self, weblint):
        source = make_document(
            "<p>x</p>",
            head_extra='<style type="text/css">\nbody { colour: red }\n</style>\n',
        )
        diag = next(
            d for d in weblint.check_string(source)
            if d.message_id == "css-unknown-property"
        )
        assert source.splitlines()[diag.line - 1].strip() == "body { colour: red }"

    def test_custom_plugin(self):
        from repro.core.rules import default_rules
        from repro.plugins.base import ContentPlugin

        class NoTabsPlugin(ContentPlugin):
            name = "no-tabs"

            def claims_element(self, element_name, tag):
                return element_name == "pre"

            def check_content(self, context, content, start_line):
                if "\t" in content:
                    context.emit(
                        "css-syntax",  # demo: ride an existing message id
                        line=start_line,
                        problem="tab character in PRE content",
                    )

        rules = default_rules() + [PluginRule([NoTabsPlugin()])]
        weblint = Weblint(rules=rules)
        diags = weblint.check_string(
            make_document("<pre>a\tb</pre>")
        )
        assert any("tab character" in d.text for d in diags)

    def test_unclosed_style_still_checked(self, weblint):
        source = (
            '<!DOCTYPE HTML PUBLIC "x//EN">\n<html><head><title>t</title>'
            '<style type="text/css">body { colour: red }'
        )
        assert "css-unknown-property" in ids(weblint.check_string(source))
