"""Tests for the anchor, image, heading, comment, text, table, form and
style rules."""

from __future__ import annotations

import pytest

from repro import Options, Weblint
from repro.core.rules.anchors import normalise_anchor_text
from tests.conftest import ids, make_document


@pytest.fixture
def check(weblint):
    def _check(body, **kwargs):
        return weblint.check_string(make_document(body, **kwargs))
    return _check


@pytest.fixture
def check_all(weblint_all):
    def _check(body, **kwargs):
        return weblint_all.check_string(make_document(body, **kwargs))
    return _check


class TestAnchors:
    def test_here_anchor_off_by_default(self, check):
        diags = check('<p>Click <a href="x">here</a>.</p>')
        assert "here-anchor" not in ids(diags)

    @pytest.mark.parametrize(
        "text", ["here", "click here", "HERE", " Click  Here! ", "this link"]
    )
    def test_here_anchor_detects(self, check_all, text):
        diags = check_all(f'<p><a href="x">{text}</a></p>')
        assert "here-anchor" in ids(diags)

    def test_meaningful_text_ok(self, check_all):
        diags = check_all('<p><a href="x">the 1998 annual report</a></p>')
        assert "here-anchor" not in ids(diags)

    def test_custom_here_words(self):
        options = Options.with_defaults()
        options.enable("here-anchor")
        options.extra_here_words.add("start now")
        diags = Weblint(options=options).check_string(
            make_document('<p><a href="x">Start Now</a></p>')
        )
        assert "here-anchor" in ids(diags)

    def test_nested_markup_text_still_seen(self, check_all):
        # <a><b>here</b></a>: the anchor text is still "here".
        diags = check_all('<p><a href="x"><b>here</b></a></p>')
        assert "here-anchor" in ids(diags)

    def test_mailto_hidden_address(self, check):
        diags = check('<p><a href="mailto:a@b.com">mail me</a></p>')
        assert "mailto-link" in ids(diags)

    def test_mailto_visible_address(self, check):
        diags = check('<p><a href="mailto:a@b.com">a@b.com</a></p>')
        assert "mailto-link" not in ids(diags)

    def test_heading_in_anchor(self, check):
        diags = check('<a href="x"><h2>section</h2></a>')
        assert "heading-in-anchor" in ids(diags)

    def test_anchor_in_heading_fine(self, check):
        diags = check('<h2><a href="x">section</a></h2>')
        assert "heading-in-anchor" not in ids(diags)

    def test_container_whitespace(self, check_all):
        diags = check_all('<p><a href="x"> padded </a></p>')
        ws = [d for d in diags if d.message_id == "container-whitespace"]
        assert len(ws) == 2  # leading and trailing

    def test_normalise_anchor_text(self):
        assert normalise_anchor_text("  Click   Here!  ") == "click here"
        assert normalise_anchor_text("here.") == "here"


class TestImages:
    def test_alt_and_size_independent(self, check):
        diags = check('<p><img src="x.gif"></p>')
        assert {"img-alt", "img-size"} <= ids(diags)

    def test_full_img_clean(self, check):
        diags = check('<p><img src="x.gif" alt="pic" width="1" height="2"></p>')
        assert not ids(diags) & {"img-alt", "img-size"}

    def test_width_only_still_flagged(self, check):
        diags = check('<p><img src="x.gif" alt="p" width="1"></p>')
        assert "img-size" in ids(diags)

    def test_input_image_needs_alt(self, check):
        diags = check(
            '<form action="a"><p><input type="image" src="b.gif"></p></form>'
        )
        assert "img-alt" in ids(diags)

    def test_text_input_no_alt_needed(self, check):
        diags = check(
            '<form action="a"><p><label>x<input type="text" name="n"></label></p></form>'
        )
        assert "img-alt" not in ids(diags)


class TestHeadings:
    def test_skip_down_flagged(self, check):
        diags = check("<h1>a</h1><p>x</p><h3>b</h3>")
        assert "heading-order" in ids(diags)

    def test_step_down_fine(self, check):
        diags = check("<h1>a</h1><h2>b</h2><h3>c</h3>")
        assert "heading-order" not in ids(diags)

    def test_jump_up_fine(self, check):
        diags = check("<h1>a</h1><h2>b</h2><h3>c</h3><h1>d</h1>")
        assert "heading-order" not in ids(diags)

    def test_message_names_levels(self, check):
        diags = check("<h1>a</h1><h4>b</h4>")
        msg = next(d for d in diags if d.message_id == "heading-order")
        assert "H4" in msg.text.upper() and "H1" in msg.text.upper()


class TestComments:
    def test_markup_in_comment(self, check):
        assert "markup-in-comment" in ids(check("<p>x</p><!-- <b>y</b> -->"))

    def test_plain_comment_fine(self, check):
        assert "markup-in-comment" not in ids(check("<p>x</p><!-- note -->"))

    def test_nested_comment(self, check):
        assert "nested-comment" in ids(check("<p>x</p><!-- a <!-- b -->"))

    def test_unclosed_comment(self, check):
        diags = check("<p>x</p><!-- runs forever")
        assert "unclosed-comment" in ids(diags)

    def test_unclosed_comment_no_cascade(self, check):
        diags = check("<p>x</p><!-- <b>hidden</b> never closed")
        assert "markup-in-comment" not in ids(diags)


class TestText:
    def test_bare_gt(self, check):
        assert "literal-metacharacter" in ids(check("<p>5 > 3</p>"))

    def test_bare_lt(self, check):
        assert "literal-metacharacter" in ids(check("<p>5 <3</p>"))

    def test_escaped_fine(self, check):
        diags = check("<p>5 &gt; 3 &lt; 7</p>")
        assert "literal-metacharacter" not in ids(diags)

    def test_gt_in_script_fine(self, check):
        diags = check('<script type="text/javascript">if (a > b) x();</script>')
        assert "literal-metacharacter" not in ids(diags)

    def test_unknown_entity(self, check):
        assert "unknown-entity" in ids(check("<p>&zorp;</p>"))

    def test_entity_known_per_spec(self):
        options = Options.with_defaults()
        options.spec_name = "html32"
        diags = Weblint(options=options).check_string(
            make_document("<p>&euro;</p>")
        )
        assert "unknown-entity" in ids(diags)

    def test_numeric_entity_fine(self, check):
        assert "unknown-entity" not in ids(check("<p>&#169;</p>"))

    def test_unterminated_entity_pedantic(self, check_all):
        assert "unterminated-entity" in ids(check_all("<p>&copy 1998</p>"))

    def test_one_metachar_message_per_line(self, check):
        diags = check("<p>a > b > c</p>")
        metas = [d for d in diags if d.message_id == "literal-metacharacter"]
        assert len(metas) == 1


class TestTablesAndForms:
    def test_table_summary_off_by_default(self, check):
        diags = check("<table border=\"1\"><tr><td>x</td></tr></table>")
        assert "table-summary" not in ids(diags)

    def test_table_summary_enabled(self, check_all):
        diags = check_all('<table border="1"><tr><td>x</td></tr></table>')
        assert "table-summary" in ids(diags)

    def test_table_with_summary_fine(self, check_all):
        diags = check_all(
            '<table border="1" summary="data"><tr><td>x</td></tr></table>'
        )
        assert "table-summary" not in ids(diags)

    def test_form_label_enabled(self, check_all):
        diags = check_all(
            '<form action="a"><p><input type="text" name="n"></p></form>'
        )
        assert "form-label" in ids(diags)

    def test_label_wrapped_control_fine(self, check_all):
        diags = check_all(
            '<form action="a"><p><label>Name '
            '<input type="text" name="n"></label></p></form>'
        )
        assert "form-label" not in ids(diags)

    def test_hidden_input_exempt(self, check_all):
        diags = check_all(
            '<form action="a"><p><input type="hidden" name="n" value="v">'
            "<label>x<input type='text' name='m'></label></p></form>"
        )
        labels = [d for d in diags if d.message_id == "form-label"]
        assert not labels


class TestStyle:
    def test_physical_font_when_enabled(self, check_all):
        diags = check_all("<p><b>x</b></p>")
        msg = next(d for d in diags if d.message_id == "physical-font")
        assert "STRONG" in msg.text

    def test_logical_markup_never_flagged(self, check_all):
        diags = check_all("<p><strong>x</strong></p>")
        assert "physical-font" not in ids(diags)

    def test_deprecated_element_default_on(self, check):
        diags = check("<p><font size=\"2\">x</font></p>")
        assert "deprecated-element" in ids(diags)

    def test_deprecated_replacement_named(self, check):
        diags = check("<listing>x</listing>")
        msg = next(d for d in diags if d.message_id == "deprecated-element")
        assert "PRE" in msg.text

    def test_case_style_lower(self):
        options = Options.with_defaults()
        options.enable("lower-case")
        diags = Weblint(options=options).check_string(
            make_document("<P>x</P>")
        )
        lower = [d for d in diags if d.message_id == "lower-case"]
        assert len(lower) == 2  # both the start and end tag

    def test_case_style_upper(self):
        options = Options.with_defaults()
        options.enable("upper-case")
        diags = Weblint(options=options).check_string(
            make_document("<p>x</p>")
        )
        assert "upper-case" in ids(diags)

    def test_body_colors_partial(self):
        options = Options.with_defaults()
        options.enable("body-colors")
        source = make_document("<p>x</p>").replace(
            "<body>", '<body bgcolor="#ffffff" text="#000000">'
        )
        diags = Weblint(options=options).check_string(source)
        msg = next(d for d in diags if d.message_id == "body-colors")
        assert "LINK" in msg.text and "BGCOLOR" in msg.text

    def test_body_colors_complete_fine(self):
        options = Options.with_defaults()
        options.enable("body-colors")
        source = make_document("<p>x</p>").replace(
            "<body>",
            '<body bgcolor="#ffffff" text="#000000" link="#0000ff" '
            'vlink="#880088" alink="#ff0000">',
        )
        diags = Weblint(options=options).check_string(source)
        assert "body-colors" not in ids(diags)


class TestDocumentRule:
    def test_require_doctype(self, weblint):
        diags = weblint.check_string("<html><head><title>t</title></head>"
                                     "<body><p>x</p></body></html>")
        assert "require-doctype" in ids(diags)

    def test_doctype_present_fine(self, weblint):
        assert "require-doctype" not in ids(
            weblint.check_string(make_document("<p>x</p>"))
        )

    def test_html_outer_missing_start(self, weblint):
        source = (
            '<!DOCTYPE HTML PUBLIC "x//EN">\n<head><title>t</title></head>'
            "<body><p>x</p></body>"
        )
        assert "html-outer" in ids(weblint.check_string(source))

    def test_html_outer_missing_end(self, weblint):
        source = (
            '<!DOCTYPE HTML PUBLIC "x//EN">\n<html><head><title>t</title>'
            "</head><body><p>x</p></body>"
        )
        assert "html-outer" in ids(weblint.check_string(source))

    def test_require_title(self, weblint):
        source = (
            '<!DOCTYPE HTML PUBLIC "x//EN">\n<html><head></head>'
            "<body><p>x</p></body></html>"
        )
        assert "require-title" in ids(weblint.check_string(source))

    def test_title_length(self, weblint):
        diags = weblint.check_string(
            make_document("<p>x</p>", title="t" * 100)
        )
        msg = next(d for d in diags if d.message_id == "title-length")
        assert "100" in msg.text

    def test_title_length_configurable(self):
        options = Options.with_defaults()
        options.max_title_length = 200
        diags = Weblint(options=options).check_string(
            make_document("<p>x</p>", title="t" * 100)
        )
        assert "title-length" not in ids(diags)

    def test_meta_description_pedantic(self, check_all, weblint_all):
        source = make_document("<p>x</p>")
        assert "meta-description" in ids(weblint_all.check_string(source))

    def test_meta_description_satisfied(self, weblint_all):
        source = make_document(
            "<p>x</p>",
            head_extra='<meta name="description" content="about">\n',
        )
        assert "meta-description" not in ids(weblint_all.check_string(source))

    def test_link_rev_made_satisfied(self, weblint_all):
        source = make_document(
            "<p>x</p>",
            head_extra='<link rev="made" href="mailto:a@b.c">\n',
        )
        assert "link-rev-made" not in ids(weblint_all.check_string(source))

    def test_frameset_without_noframes(self, weblint):
        source = (
            '<!DOCTYPE HTML PUBLIC "x//EN">\n<html><head><title>t</title>'
            '</head><frameset rows="50%,50%"><frame src="a.html">'
            "<frame src=\"b.html\"></frameset></html>"
        )
        assert "frame-noframes" in ids(weblint.check_string(source))

    def test_frameset_with_noframes_fine(self, weblint):
        source = (
            '<!DOCTYPE HTML PUBLIC "x//EN">\n<html><head><title>t</title>'
            '</head><frameset rows="50%,50%"><frame src="a.html">'
            "<noframes><body><p>no frames here</p></body></noframes>"
            "</frameset></html>"
        )
        assert "frame-noframes" not in ids(weblint.check_string(source))

    def test_empty_document_no_messages(self, weblint):
        assert weblint.check_string("") == []
