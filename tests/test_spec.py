"""Unit tests for the HTMLSpec tables and registry."""

from __future__ import annotations

import pytest

from repro.html.spec import (
    AttributeDef,
    ElementDef,
    HTMLSpec,
    _edit_distance,
    available_specs,
    get_spec,
)


@pytest.fixture(scope="module")
def html40():
    return get_spec("html40")


class TestRegistry:
    def test_builtin_specs_available(self):
        names = available_specs()
        for expected in ("html40", "html32", "netscape", "microsoft",
                         "html40-strict"):
            assert expected in names

    def test_get_spec_case_insensitive(self):
        assert get_spec("HTML40").name == "html40"

    def test_unknown_spec_raises(self):
        with pytest.raises(KeyError, match="unknown HTML spec"):
            get_spec("html99")

    def test_specs_cached(self):
        assert get_spec("html40") is get_spec("html40")


class TestElementQueries:
    def test_known_element(self, html40):
        assert html40.is_known("p")
        assert html40.is_known("P")

    def test_unknown_element(self, html40):
        assert not html40.is_known("zorp")

    def test_empty_elements(self, html40):
        for name in ("br", "img", "hr", "input", "meta", "link"):
            assert html40.is_empty(name), name
            assert not html40.end_tag_legal(name), name

    def test_strict_containers(self, html40):
        for name in ("a", "title", "em", "table", "textarea"):
            assert html40.end_tag_required(name), name

    def test_optional_end(self, html40):
        for name in ("p", "li", "td", "tr", "option"):
            elem = html40.element(name)
            assert elem.optional_end, name
            assert not html40.end_tag_required(name)
            assert html40.end_tag_legal(name)

    def test_once_per_document(self, html40):
        for name in ("html", "head", "body", "title"):
            assert html40.element(name).once_per_document, name

    def test_context_tables(self, html40):
        assert "tr" in html40.element("td").allowed_in
        assert html40.element("li").allowed_in >= {"ul", "ol"}
        assert html40.element("p").allowed_in is None

    def test_excludes(self, html40):
        assert "a" in html40.element("a").excludes
        assert "form" in html40.element("form").excludes
        assert "img" in html40.element("pre").excludes

    def test_implicit_closes(self, html40):
        assert "li" in html40.element("li").closes
        assert "p" in html40.element("h1").closes
        assert {"td", "th"} <= html40.element("tr").closes

    def test_deprecated_elements(self, html40):
        for name in ("center", "font", "listing", "applet"):
            assert html40.element(name).deprecated, name
        assert html40.element("listing").replacement == "pre"


class TestAttributeQueries:
    def test_element_attribute(self, html40):
        assert html40.attribute_allowed("img", "src")
        assert html40.attribute_allowed("IMG", "SRC")

    def test_global_attribute_fallback(self, html40):
        assert html40.attribute_allowed("p", "class")
        assert html40.attribute_allowed("td", "onclick")

    def test_unknown_attribute(self, html40):
        assert not html40.attribute_allowed("p", "zorp")

    def test_required_attributes(self, html40):
        required = set(html40.element("textarea").required_attributes())
        assert required == {"rows", "cols"}
        assert "src" in html40.element("img").required_attributes()
        assert "alt" in html40.element("img").required_attributes()

    def test_color_pattern(self, html40):
        assert html40.attribute_value_ok("body", "bgcolor", "#ffffff")
        assert html40.attribute_value_ok("body", "bgcolor", "navy")
        assert not html40.attribute_value_ok("body", "bgcolor", "fffff")
        assert not html40.attribute_value_ok("body", "bgcolor", "#ff")

    def test_number_pattern(self, html40):
        assert html40.attribute_value_ok("td", "colspan", "3")
        assert not html40.attribute_value_ok("td", "colspan", "three")

    def test_length_pattern(self, html40):
        assert html40.attribute_value_ok("img", "width", "50")
        assert html40.attribute_value_ok("img", "width", "50%")
        assert not html40.attribute_value_ok("img", "width", "wide")

    def test_enumerated_pattern_case_insensitive(self, html40):
        assert html40.attribute_value_ok("form", "method", "POST")
        assert not html40.attribute_value_ok("form", "method", "push")

    def test_cdata_accepts_anything(self, html40):
        assert html40.attribute_value_ok("a", "href", "any:thing/at all?x=1")

    def test_unknown_attribute_value_ok(self, html40):
        # Unknown attributes are someone else's message.
        assert html40.attribute_value_ok("p", "zorp", "!!!")


class TestSuggestions:
    @pytest.mark.parametrize(
        "typo,expected",
        [
            ("blockqoute", "blockquote"),
            ("tabel", "table"),
            ("centre", "center"),
            ("stong", "strong"),
        ],
    )
    def test_typo_suggestions(self, html40, typo, expected):
        assert html40.suggest_element(typo) == expected

    def test_no_suggestion_for_garbage(self, html40):
        assert html40.suggest_element("qqqqqqqxyz") is None

    def test_exact_match_distance_zero(self):
        assert _edit_distance("abc", "abc", 3) == 0

    def test_transposition_counts_one(self):
        assert _edit_distance("albe", "able", 3) == 1

    def test_cutoff_respected(self):
        assert _edit_distance("aaaa", "zzzz", 2) == 3  # cutoff + 1


class TestDoctype:
    def test_doctype_matches(self, html40):
        assert html40.doctype_matches(
            'DOCTYPE HTML PUBLIC "-//W3C//DTD HTML 4.0//EN"'
        )

    def test_doctype_requires_keyword(self, html40):
        assert not html40.doctype_matches("DOCTYPE GARBAGE")


class TestSpecConstruction:
    def test_custom_spec(self):
        spec = HTMLSpec(
            name="mini",
            version="mini 1.0",
            elements={
                "x": ElementDef(
                    name="x",
                    attributes={"n": AttributeDef(name="n", pattern="[0-9]+")},
                )
            },
        )
        assert spec.is_known("x")
        assert spec.attribute_value_ok("x", "n", "42")
        assert not spec.attribute_value_ok("x", "n", "x")

    def test_attribute_def_anchored(self):
        attr = AttributeDef(name="n", pattern="[0-9]+")
        assert not attr.value_ok("9 lives")
        assert attr.value_ok(" 9 ")  # surrounding whitespace stripped
