"""Edge cases across the stack: nasty inputs, reuse, immutability."""

from __future__ import annotations

import pytest

from repro import Options, Weblint
from repro.html.spec import get_spec
from repro.html.tokenizer import tokenize
from repro.html.tokens import StartTag, Text
from repro.site.sitecheck import SiteChecker
from repro.www.virtualweb import VirtualWeb
from repro.www.message import Request
from tests.conftest import ids, make_document


class TestTokenizerEdges:
    def test_only_whitespace(self):
        (token,) = tokenize("   \n\t  ")
        assert token.is_whitespace

    def test_tag_at_very_end(self):
        tokens = tokenize("text<p>")
        assert isinstance(tokens[-1], StartTag)

    def test_lt_at_eof(self):
        tokens = tokenize("text <")
        assert tokens[-1].text == "<"

    def test_crlf_line_endings(self):
        tokens = tokenize("<p>\r\n<b>")
        assert tokens[-1].line == 2

    def test_many_attributes(self):
        attrs = " ".join(f'a{i}="{i}"' for i in range(60))
        (tag,) = tokenize(f"<p {attrs}>")
        assert len(tag.attributes) == 60

    def test_attribute_name_only_equals(self):
        (tag,) = tokenize("<p a=>")
        attr = tag.get("a")
        assert attr.has_value and attr.value == ""

    def test_junk_in_tag_skipped(self):
        (tag,) = tokenize("<p ~~ class='x'>")
        assert tag.get("class") is not None

    def test_comment_immediately_at_eof(self):
        (token,) = tokenize("<!---->")
        assert token.text == ""

    def test_doctype_with_internal_subset_chars(self):
        tokens = tokenize('<!DOCTYPE HTML PUBLIC "-//W3C//DTD HTML 4.0//EN">')
        assert tokens[0].is_doctype

    def test_very_long_line_positions(self):
        source = "x" * 5000 + "<p>"
        tokens = tokenize(source)
        assert tokens[1].column == 5001

    def test_nul_bytes_survive(self):
        tokens = tokenize("a\x00b<p>c\x00d</p>")
        assert any(isinstance(t, StartTag) for t in tokens)


class TestEngineEdges:
    def test_reuse_same_weblint_many_documents(self, weblint):
        first = weblint.check_string(make_document("<p><b>u</p>"))
        second = weblint.check_string(make_document("<p>clean</p>"))
        third = weblint.check_string(make_document("<p><b>u</p>"))
        assert ids(second) == set()
        assert [(d.line, d.message_id) for d in first] == [
            (d.line, d.message_id) for d in third
        ]

    def test_spec_not_mutated_by_checking(self, weblint):
        spec = get_spec("html40")
        before = len(spec.elements)
        weblint.check_string(make_document("<zorp>x</zorp>"))
        assert len(get_spec("html40").elements) == before

    def test_document_of_only_comments(self, weblint):
        assert weblint.check_string("<!-- a --><!-- b -->") == []

    def test_document_of_only_doctype(self, weblint):
        assert weblint.check_string("<!DOCTYPE HTML PUBLIC 'x'>") == []

    def test_deeply_nested_document(self, weblint):
        depth = 200
        body = "<div>" * depth + "<p>deep</p>" + "</div>" * depth
        diags = weblint.check_string(make_document(body))
        assert diags == []

    def test_pathological_unclosed_pile(self, weblint):
        body = "<b>" * 100 + "text"
        diags = weblint.check_string(make_document(body))
        unclosed = [d for d in diags if d.message_id == "unclosed-element"]
        assert len(unclosed) == 100

    def test_interleaved_overlaps(self, weblint):
        body = "<p><b><i><em>x</b></i></em></p>"
        diags = weblint.check_string(make_document(body))
        assert "illegal-closing" not in ids(diags)

    def test_end_tag_case_insensitive_matching(self, weblint):
        diags = weblint.check_string(make_document("<P><B>x</b></p>"))
        assert "unclosed-element" not in ids(diags)

    def test_doctype_after_content_does_not_count(self, weblint):
        source = "<html><head><!DOCTYPE HTML PUBLIC 'x'><title>t</title></head><body><p>x</p></body></html>"
        assert "require-doctype" in ids(weblint.check_string(source))

    def test_multiple_body_content_after_close(self, weblint):
        source = make_document("<p>x</p>") + "<p>trailing</p>"
        diags = weblint.check_string(source)
        assert "html-outer" in ids(diags)

    def test_form_in_table_cell_allowed(self, weblint):
        body = (
            '<table summary="s"><tr><td>'
            '<form action="a"><p><input type="submit"></p></form>'
            "</td></tr></table>"
        )
        assert weblint.check_string(make_document(body)) == []

    def test_unknown_element_inside_known(self, weblint):
        diags = weblint.check_string(
            make_document("<p><wibble>x</wibble> normal</p>")
        )
        unknown = [d for d in diags if d.message_id == "unknown-element"]
        assert len(unknown) == 1
        assert "unclosed-element" not in ids(diags)


class TestOptionsEdges:
    def test_stop_after_zero(self):
        options = Options.with_defaults()
        options.stop_after = 0
        weblint = Weblint(options=options)
        assert weblint.check_string("<h1>x</h2>") == []

    def test_spec_object_shared_between_weblints(self):
        a = Weblint()
        b = Weblint()
        assert a.spec is b.spec  # registry cache

    def test_options_not_shared_between_weblints(self):
        a = Weblint()
        b = Weblint()
        a.options.disable("all")
        assert b.options.enabled


class TestSiteEdges:
    def test_empty_directory(self, tmp_path):
        report = SiteChecker().check_directory(tmp_path)
        assert report.pages == []
        assert report.count() == 0

    def test_single_page_site(self, tmp_path):
        (tmp_path / "index.html").write_text(make_document("<p>x</p>"))
        report = SiteChecker().check_directory(tmp_path)
        assert report.count("orphan-page") == 0  # the index is the root

    def test_unreadable_extension_skipped(self, tmp_path):
        (tmp_path / "index.html").write_text(make_document("<p>x</p>"))
        (tmp_path / "style.css").write_text("body { }")
        report = SiteChecker().check_directory(tmp_path)
        assert report.pages == ["index.html"]

    def test_link_with_query_string(self, tmp_path):
        (tmp_path / "index.html").write_text(
            make_document('<p><a href="page.html?x=1">a page</a></p>')
        )
        (tmp_path / "page.html").write_text(make_document("<p>y</p>"))
        report = SiteChecker().check_directory(tmp_path)
        # ?query is stripped when resolving pages for orphan analysis...
        assert report.count("orphan-page") == 0


class TestVirtualWebEdges:
    def test_distinct_ports_are_distinct_resources(self):
        web = VirtualWeb()
        web.add_page("http://h:8080/x", "eight")
        web.add_page("http://h:9090/x", "nine")
        assert web.handle(Request("GET", "http://h:8080/x")).body == "eight"
        assert web.handle(Request("GET", "http://h:9090/x")).body == "nine"

    def test_default_port_equivalence(self):
        web = VirtualWeb()
        web.add_page("http://h:80/x", "body")
        assert web.handle(Request("GET", "http://h/x")).status == 200

    def test_path_dot_segments_normalised(self):
        web = VirtualWeb()
        web.add_page("http://h/a/b.html", "body")
        assert web.handle(Request("GET", "http://h/a/../a/b.html")).status == 200
